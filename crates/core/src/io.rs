//! JSON import/export of instances and schedules (feature `serde`).
//!
//! Deserialization re-validates through the normal constructors, so a
//! hand-edited or corrupted file can never produce an invalid in-memory
//! instance. The format is a direct, versioned mirror of the model:
//!
//! ```json
//! { "version": 1, "kind": "uniform",
//!   "speeds": [2, 1], "setups": [3, 5],
//!   "jobs": [{ "class": 0, "size": 4 }] }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::InstanceError;
use crate::instance::{Job, UniformInstance, UnrelatedInstance};
use crate::schedule::Schedule;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct JobData {
    class: usize,
    size: u64,
}

/// Serializable mirror of [`UniformInstance`].
#[derive(Debug, Serialize, Deserialize)]
pub struct UniformInstanceData {
    version: u32,
    kind: String,
    speeds: Vec<u64>,
    setups: Vec<u64>,
    jobs: Vec<JobData>,
}

/// Serializable mirror of [`UnrelatedInstance`].
#[derive(Debug, Serialize, Deserialize)]
pub struct UnrelatedInstanceData {
    version: u32,
    kind: String,
    m: usize,
    job_class: Vec<usize>,
    /// `u64::MAX` encodes `∞`, matching the in-memory sentinel.
    ptimes: Vec<Vec<u64>>,
    setups: Vec<Vec<u64>>,
}

/// Errors of the I/O layer.
#[derive(Debug)]
pub enum IoError {
    /// The JSON was syntactically invalid or of the wrong shape.
    Json(serde_json::Error),
    /// The decoded data failed instance validation.
    Invalid(InstanceError),
    /// Unknown `version` or `kind` field.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid(e) => write!(f, "invalid instance: {e}"),
            IoError::Format(s) => write!(f, "format error: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serializes a uniform instance to pretty JSON.
pub fn uniform_to_json(inst: &UniformInstance) -> String {
    let data = UniformInstanceData {
        version: FORMAT_VERSION,
        kind: "uniform".into(),
        speeds: inst.speeds().to_vec(),
        setups: inst.setups().to_vec(),
        jobs: inst.jobs().iter().map(|j| JobData { class: j.class, size: j.size }).collect(),
    };
    serde_json::to_string_pretty(&data).expect("plain data serializes")
}

/// Parses and validates a uniform instance from JSON.
pub fn uniform_from_json(text: &str) -> Result<UniformInstance, IoError> {
    let data: UniformInstanceData = serde_json::from_str(text).map_err(IoError::Json)?;
    if data.version != FORMAT_VERSION {
        return Err(IoError::Format(format!("unsupported version {}", data.version)));
    }
    if data.kind != "uniform" {
        return Err(IoError::Format(format!("expected kind 'uniform', got '{}'", data.kind)));
    }
    UniformInstance::new(
        data.speeds,
        data.setups,
        data.jobs.into_iter().map(|j| Job::new(j.class, j.size)).collect(),
    )
    .map_err(IoError::Invalid)
}

/// Serializes an unrelated instance to pretty JSON.
pub fn unrelated_to_json(inst: &UnrelatedInstance) -> String {
    let data = UnrelatedInstanceData {
        version: FORMAT_VERSION,
        kind: "unrelated".into(),
        m: inst.m(),
        job_class: (0..inst.n()).map(|j| inst.class_of(j)).collect(),
        ptimes: (0..inst.n())
            .map(|j| (0..inst.m()).map(|i| inst.ptime(i, j)).collect())
            .collect(),
        setups: (0..inst.num_classes())
            .map(|k| (0..inst.m()).map(|i| inst.setup(i, k)).collect())
            .collect(),
    };
    serde_json::to_string_pretty(&data).expect("plain data serializes")
}

/// Parses and validates an unrelated instance from JSON.
pub fn unrelated_from_json(text: &str) -> Result<UnrelatedInstance, IoError> {
    let data: UnrelatedInstanceData = serde_json::from_str(text).map_err(IoError::Json)?;
    if data.version != FORMAT_VERSION {
        return Err(IoError::Format(format!("unsupported version {}", data.version)));
    }
    if data.kind != "unrelated" {
        return Err(IoError::Format(format!(
            "expected kind 'unrelated', got '{}'",
            data.kind
        )));
    }
    UnrelatedInstance::new(data.m, data.job_class, data.ptimes, data.setups)
        .map_err(IoError::Invalid)
}

/// Serializes a schedule (assignment vector) to JSON.
pub fn schedule_to_json(sched: &Schedule) -> String {
    serde_json::to_string(&sched.assignment().to_vec()).expect("plain data serializes")
}

/// Parses a schedule from JSON. Validation against an instance happens at
/// evaluation time ([`crate::schedule::uniform_loads`] etc.).
pub fn schedule_from_json(text: &str) -> Result<Schedule, IoError> {
    let v: Vec<usize> = serde_json::from_str(text).map_err(IoError::Json)?;
    Ok(Schedule::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::INF;

    #[test]
    fn uniform_roundtrip() {
        let inst = UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6)],
        )
        .unwrap();
        let json = uniform_to_json(&inst);
        let back = uniform_from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn unrelated_roundtrip_with_infinities() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![3, INF], vec![INF, 4]],
            vec![vec![1, 1], vec![2, 2]],
        )
        .unwrap();
        let json = unrelated_to_json(&inst);
        let back = unrelated_from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn corrupted_data_is_rejected_not_trusted() {
        // Speed 0 fails validation even though the JSON parses.
        let bad = r#"{"version":1,"kind":"uniform","speeds":[0],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(bad), Err(IoError::Invalid(_))));
        // Wrong kind.
        let wrong = r#"{"version":1,"kind":"unrelated","speeds":[1],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(wrong), Err(IoError::Format(_))));
        // Future version.
        let future = r#"{"version":9,"kind":"uniform","speeds":[1],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(future), Err(IoError::Format(_))));
        // Garbage.
        assert!(matches!(uniform_from_json("{nope"), Err(IoError::Json(_))));
    }

    #[test]
    fn schedule_roundtrip() {
        let s = Schedule::new(vec![0, 2, 1]);
        let json = schedule_to_json(&s);
        assert_eq!(schedule_from_json(&json).unwrap(), s);
    }
}
