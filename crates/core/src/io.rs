//! JSON import/export of instances and schedules (feature `serde`).
//!
//! Deserialization re-validates through the normal constructors, so a
//! hand-edited or corrupted file can never produce an invalid in-memory
//! instance. The format is a direct, versioned mirror of the model:
//!
//! ```json
//! { "version": 1, "kind": "uniform",
//!   "speeds": [2, 1], "setups": [3, 5],
//!   "jobs": [{ "class": 0, "size": 4 }] }
//! ```
//!
//! The build environment has no crates.io access, so this module ships its
//! own small JSON reader/writer (see [`json`]) instead of depending on
//! `serde`/`serde_json`. The on-disk format is unchanged.

use crate::error::InstanceError;
use crate::instance::{Job, UniformInstance, UnrelatedInstance};
use crate::schedule::Schedule;

use self::json::JsonValue;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors of the I/O layer.
#[derive(Debug)]
pub enum IoError {
    /// The JSON was syntactically invalid or of the wrong shape.
    Json(String),
    /// The decoded data failed instance validation.
    Invalid(InstanceError),
    /// Unknown `version` or `kind` field.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid(e) => write!(f, "invalid instance: {e}"),
            IoError::Format(s) => write!(f, "format error: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

pub mod json {
    //! Minimal JSON value model, parser and writer — just enough for the
    //! instance/schedule format: objects, arrays, `u64` numbers (including
    //! `u64::MAX`, the `∞` sentinel) and strings.

    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An unsigned integer (the only number shape this format uses).
        Uint(u64),
        /// A (non-integer or negative) number, kept for error reporting.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object (sorted keys; key order is irrelevant to this format).
        Object(BTreeMap<String, JsonValue>),
    }

    /// Maximum nesting depth accepted by [`parse`] (matches serde_json's
    /// default); deeper input is a parse error, not a stack overflow.
    const MAX_DEPTH: u32 = 128;

    /// Parses `text` into a [`JsonValue`].
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        depth: u32,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<JsonValue, String> {
            match self.peek() {
                None => Err("unexpected end of input".to_string()),
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(JsonValue::Str(self.string()?)),
                Some(b't') => self.literal("true", JsonValue::Bool(true)),
                Some(b'f') => self.literal("false", JsonValue::Bool(false)),
                Some(b'n') => self.literal("null", JsonValue::Null),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                Some(c) => {
                    Err(format!("unexpected character {:?} at byte {}", c as char, self.pos))
                }
            }
        }

        fn enter(&mut self) -> Result<(), String> {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
            }
            Ok(())
        }

        fn object(&mut self) -> Result<JsonValue, String> {
            self.enter()?;
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<JsonValue, String> {
            self.enter()?;
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(s);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'u') => {
                                if self.pos + 4 >= self.bytes.len() {
                                    return Err("truncated \\u escape".to_string());
                                }
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                self.pos += 4;
                            }
                            _ => return Err("bad escape".to_string()),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 code point.
                        let rest = &self.bytes[self.pos..];
                        let text = std::str::from_utf8(rest)
                            .map_err(|_| "invalid utf-8 in string".to_string())?;
                        let c = text.chars().next().unwrap();
                        s.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<JsonValue, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
            if !is_float && !text.starts_with('-') {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(JsonValue::Uint(u));
                }
            }
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("invalid number at byte {start}"))
        }
    }

    /// Serializes a `u64` array on one line: `[1, 2, 3]`.
    pub fn write_u64_array(out: &mut String, xs: &[u64]) {
        out.push('[');
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{x}");
        }
        out.push(']');
    }

    /// Serializes a `usize` array on one line.
    pub fn write_usize_array(out: &mut String, xs: &[usize]) {
        out.push('[');
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{x}");
        }
        out.push(']');
    }
}

/// Extraction helpers shared by the `*_from_json` parsers.
mod extract {
    use super::json::JsonValue;
    use super::IoError;

    pub fn object(
        v: &JsonValue,
    ) -> Result<&std::collections::BTreeMap<String, JsonValue>, IoError> {
        match v {
            JsonValue::Object(map) => Ok(map),
            _ => Err(IoError::Json("expected a JSON object".to_string())),
        }
    }

    pub fn field<'a>(
        map: &'a std::collections::BTreeMap<String, JsonValue>,
        name: &str,
    ) -> Result<&'a JsonValue, IoError> {
        map.get(name).ok_or_else(|| IoError::Json(format!("missing field '{name}'")))
    }

    pub fn uint(v: &JsonValue, what: &str) -> Result<u64, IoError> {
        match v {
            JsonValue::Uint(u) => Ok(*u),
            _ => Err(IoError::Json(format!("field '{what}' must be an unsigned integer"))),
        }
    }

    pub fn string(v: &JsonValue, what: &str) -> Result<String, IoError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            _ => Err(IoError::Json(format!("field '{what}' must be a string"))),
        }
    }

    pub fn array<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [JsonValue], IoError> {
        match v {
            JsonValue::Array(items) => Ok(items),
            _ => Err(IoError::Json(format!("field '{what}' must be an array"))),
        }
    }

    pub fn u64_vec(v: &JsonValue, what: &str) -> Result<Vec<u64>, IoError> {
        array(v, what)?.iter().map(|x| uint(x, what)).collect()
    }

    pub fn usize_vec(v: &JsonValue, what: &str) -> Result<Vec<usize>, IoError> {
        u64_vec(v, what)?
            .into_iter()
            .map(|u| {
                usize::try_from(u)
                    .map_err(|_| IoError::Json(format!("field '{what}' entry out of range")))
            })
            .collect()
    }

    pub fn u64_matrix(v: &JsonValue, what: &str) -> Result<Vec<Vec<u64>>, IoError> {
        array(v, what)?.iter().map(|row| u64_vec(row, what)).collect()
    }
}

fn check_header(
    map: &std::collections::BTreeMap<String, JsonValue>,
    expected_kind: &str,
) -> Result<(), IoError> {
    let version = extract::uint(extract::field(map, "version")?, "version")?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let kind = extract::string(extract::field(map, "kind")?, "kind")?;
    if kind != expected_kind {
        return Err(IoError::Format(format!("expected kind '{expected_kind}', got '{kind}'")));
    }
    Ok(())
}

/// Shared field-by-field writer behind the pretty and NDJSON encodings —
/// one copy of the schema per instance kind, so a field change cannot
/// silently diverge between the two formats.
fn uniform_json(inst: &UniformInstance, pretty: bool) -> String {
    use std::fmt::Write as _;
    let (open, sep, pad) = if pretty { ("{\n  ", ",\n  ", " ") } else { ("{", ", ", "") };
    let mut out = String::new();
    let _ = write!(out, "{open}\"version\": {FORMAT_VERSION}{sep}\"kind\": \"uniform\"{sep}");
    out.push_str("\"speeds\": ");
    json::write_u64_array(&mut out, inst.speeds());
    out.push_str(sep);
    out.push_str("\"setups\": ");
    json::write_u64_array(&mut out, inst.setups());
    out.push_str(sep);
    out.push_str("\"jobs\": [");
    for (j, job) in inst.jobs().iter().enumerate() {
        if j > 0 {
            out.push(',');
            if !pretty {
                out.push(' ');
            }
        }
        if pretty {
            out.push_str("\n    ");
        }
        let _ = write!(out, "{{{pad}\"class\": {}, \"size\": {}{pad}}}", job.class, job.size);
    }
    if pretty && inst.n() > 0 {
        out.push_str("\n  ");
    }
    out.push_str(if pretty { "]\n}" } else { "]}" });
    out
}

/// Serializes a uniform instance to pretty JSON.
pub fn uniform_to_json(inst: &UniformInstance) -> String {
    uniform_json(inst, true)
}

/// Serializes a uniform instance to one compact JSON line (same schema as
/// [`uniform_to_json`], no newlines) — the NDJSON building block.
pub fn uniform_to_json_line(inst: &UniformInstance) -> String {
    uniform_json(inst, false)
}

/// Parses and validates a uniform instance from JSON.
pub fn uniform_from_json(text: &str) -> Result<UniformInstance, IoError> {
    let value = json::parse(text).map_err(IoError::Json)?;
    uniform_from_value(&value)
}

/// Parses and validates a uniform instance from an already-parsed
/// [`JsonValue`] (e.g. a sub-object of a larger request envelope).
pub fn uniform_from_value(value: &JsonValue) -> Result<UniformInstance, IoError> {
    let map = extract::object(value)?;
    check_header(map, "uniform")?;
    let speeds = extract::u64_vec(extract::field(map, "speeds")?, "speeds")?;
    let setups = extract::u64_vec(extract::field(map, "setups")?, "setups")?;
    let jobs = extract::array(extract::field(map, "jobs")?, "jobs")?
        .iter()
        .map(|j| {
            let obj = extract::object(j)?;
            let class = extract::uint(extract::field(obj, "class")?, "class")?;
            let size = extract::uint(extract::field(obj, "size")?, "size")?;
            let class = usize::try_from(class)
                .map_err(|_| IoError::Json("job class out of range".to_string()))?;
            Ok(Job::new(class, size))
        })
        .collect::<Result<Vec<Job>, IoError>>()?;
    UniformInstance::new(speeds, setups, jobs).map_err(IoError::Invalid)
}

/// Shared writer behind the unrelated-payload encodings (see
/// [`uniform_json`]). `kind` is `"unrelated"` or `"splittable"` — the
/// splittable model of Section 3.3 shares the unrelated instance data and
/// differs only in its solution space, so the two kinds share one schema.
fn unrelated_json(inst: &UnrelatedInstance, kind: &str, pretty: bool) -> String {
    use std::fmt::Write as _;
    let (open, sep) = if pretty { ("{\n  ", ",\n  ") } else { ("{", ", ") };
    let mut out = String::new();
    let _ = write!(out, "{open}\"version\": {FORMAT_VERSION}{sep}\"kind\": \"{kind}\"{sep}");
    let _ = write!(out, "\"m\": {}{sep}", inst.m());
    out.push_str("\"job_class\": ");
    json::write_usize_array(&mut out, inst.job_classes());
    out.push_str(sep);
    let matrix = |out: &mut String, name: &str, rows: &[&[u64]]| {
        let _ = write!(out, "\"{name}\": [");
        for (r, row) in rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
                if !pretty {
                    out.push(' ');
                }
            }
            if pretty {
                out.push_str("\n    ");
            }
            json::write_u64_array(out, row);
        }
        if pretty && !rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
    };
    let ptimes: Vec<&[u64]> = (0..inst.n()).map(|j| inst.ptimes_row(j)).collect();
    matrix(&mut out, "ptimes", &ptimes);
    out.push_str(sep);
    let setups: Vec<&[u64]> = (0..inst.num_classes()).map(|k| inst.setups_row(k)).collect();
    matrix(&mut out, "setups", &setups);
    out.push_str(if pretty { "\n}" } else { "}" });
    out
}

/// Serializes an unrelated instance to pretty JSON.
pub fn unrelated_to_json(inst: &UnrelatedInstance) -> String {
    unrelated_json(inst, "unrelated", true)
}

/// Serializes an unrelated instance to one compact JSON line (same schema
/// as [`unrelated_to_json`], no newlines) — the NDJSON building block.
pub fn unrelated_to_json_line(inst: &UnrelatedInstance) -> String {
    unrelated_json(inst, "unrelated", false)
}

/// Serializes an instance of the **splittable** model (Section 3.3's
/// substrate: same data as an unrelated instance, class workloads may be
/// split) to pretty JSON under `"kind": "splittable"`.
pub fn splittable_to_json(inst: &UnrelatedInstance) -> String {
    unrelated_json(inst, "splittable", true)
}

/// Serializes a splittable-model instance to one compact JSON line.
pub fn splittable_to_json_line(inst: &UnrelatedInstance) -> String {
    unrelated_json(inst, "splittable", false)
}

/// Parses and validates an unrelated instance from JSON.
pub fn unrelated_from_json(text: &str) -> Result<UnrelatedInstance, IoError> {
    let value = json::parse(text).map_err(IoError::Json)?;
    unrelated_from_value(&value)
}

/// Parses and validates a splittable-model instance from JSON.
pub fn splittable_from_json(text: &str) -> Result<UnrelatedInstance, IoError> {
    let value = json::parse(text).map_err(IoError::Json)?;
    splittable_from_value(&value)
}

fn unrelated_payload_from_value(
    value: &JsonValue,
    kind: &str,
) -> Result<UnrelatedInstance, IoError> {
    let map = extract::object(value)?;
    check_header(map, kind)?;
    let m = extract::uint(extract::field(map, "m")?, "m")?;
    let m = usize::try_from(m).map_err(|_| IoError::Json("m out of range".to_string()))?;
    let job_class = extract::usize_vec(extract::field(map, "job_class")?, "job_class")?;
    let ptimes = extract::u64_matrix(extract::field(map, "ptimes")?, "ptimes")?;
    let setups = extract::u64_matrix(extract::field(map, "setups")?, "setups")?;
    UnrelatedInstance::new(m, job_class, ptimes, setups).map_err(IoError::Invalid)
}

/// Parses and validates an unrelated instance from an already-parsed
/// [`JsonValue`].
pub fn unrelated_from_value(value: &JsonValue) -> Result<UnrelatedInstance, IoError> {
    unrelated_payload_from_value(value, "unrelated")
}

/// Parses and validates a splittable-model instance (`"kind":
/// "splittable"`, unrelated payload schema) from an already-parsed
/// [`JsonValue`].
pub fn splittable_from_value(value: &JsonValue) -> Result<UnrelatedInstance, IoError> {
    unrelated_payload_from_value(value, "splittable")
}

/// Serializes a schedule (assignment vector) to JSON.
pub fn schedule_to_json(sched: &Schedule) -> String {
    let mut out = String::new();
    json::write_usize_array(&mut out, sched.assignment());
    out
}

/// Parses a schedule from JSON. Validation against an instance happens at
/// evaluation time ([`crate::schedule::uniform_loads`] etc.).
pub fn schedule_from_json(text: &str) -> Result<Schedule, IoError> {
    let value = json::parse(text).map_err(IoError::Json)?;
    schedule_from_value(&value)
}

/// Parses a schedule from an already-parsed [`JsonValue`].
pub fn schedule_from_value(value: &JsonValue) -> Result<Schedule, IoError> {
    let v = extract::usize_vec(value, "schedule")?;
    Ok(Schedule::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::INF;

    #[test]
    fn uniform_roundtrip() {
        let inst =
            UniformInstance::new(vec![2, 1], vec![3, 5], vec![Job::new(0, 4), Job::new(1, 6)])
                .unwrap();
        let json = uniform_to_json(&inst);
        let back = uniform_from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn unrelated_roundtrip_with_infinities() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![3, INF], vec![INF, 4]],
            vec![vec![1, 1], vec![2, 2]],
        )
        .unwrap();
        let json = unrelated_to_json(&inst);
        let back = unrelated_from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn corrupted_data_is_rejected_not_trusted() {
        // Speed 0 fails validation even though the JSON parses.
        let bad = r#"{"version":1,"kind":"uniform","speeds":[0],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(bad), Err(IoError::Invalid(_))));
        // Wrong kind.
        let wrong = r#"{"version":1,"kind":"unrelated","speeds":[1],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(wrong), Err(IoError::Format(_))));
        // Future version.
        let future = r#"{"version":9,"kind":"uniform","speeds":[1],"setups":[],"jobs":[]}"#;
        assert!(matches!(uniform_from_json(future), Err(IoError::Format(_))));
        // Garbage.
        assert!(matches!(uniform_from_json("{nope"), Err(IoError::Json(_))));
    }

    #[test]
    fn json_line_is_single_line_and_parses_back() {
        let u = UniformInstance::new(vec![2, 1], vec![3, 5], vec![Job::new(0, 4), Job::new(1, 6)])
            .unwrap();
        let line = uniform_to_json_line(&u);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(uniform_from_json(&line).unwrap(), u);
        let r = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![3, INF], vec![INF, 4]],
            vec![vec![1, 1], vec![2, 2]],
        )
        .unwrap();
        let line = unrelated_to_json_line(&r);
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(unrelated_from_json(&line).unwrap(), r);
    }

    #[test]
    fn splittable_kind_roundtrips_and_is_not_confused_with_unrelated() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![3, 5], vec![2, 4]],
            vec![vec![1, 1], vec![2, 2]],
        )
        .unwrap();
        let json = splittable_to_json(&inst);
        assert!(json.contains("\"kind\": \"splittable\""), "{json}");
        assert_eq!(splittable_from_json(&json).unwrap(), inst);
        // The kinds are distinct on the wire even though the payload is
        // shared: each parser rejects the other's tag.
        assert!(matches!(unrelated_from_json(&json), Err(IoError::Format(_))));
        assert!(matches!(splittable_from_json(&unrelated_to_json(&inst)), Err(IoError::Format(_))));
        let line = splittable_to_json_line(&inst);
        assert!(!line.contains('\n'));
        assert_eq!(splittable_from_json(&line).unwrap(), inst);
    }

    #[test]
    fn schedule_roundtrip() {
        let s = Schedule::new(vec![0, 2, 1]);
        let json = schedule_to_json(&s);
        assert_eq!(schedule_from_json(&json).unwrap(), s);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        assert!(matches!(uniform_from_json(&deep), Err(IoError::Json(_))));
        // At the limit boundary: 127 wrappers around a number still parse.
        let ok = format!("{}7{}", "[".repeat(127), "]".repeat(127));
        assert!(json::parse(&ok).is_ok());
    }

    #[test]
    fn inf_survives_the_text_format() {
        // u64::MAX is the ∞ sentinel; it must parse back exactly.
        let text = format!("[{}]", u64::MAX);
        let v = json::parse(&text).unwrap();
        assert_eq!(v, json::JsonValue::Array(vec![json::JsonValue::Uint(u64::MAX)]));
    }
}
