//! Combinatorial lower bounds on the optimal makespan.
//!
//! These bootstrap the dual-approximation binary searches (Section 1.1.1 of
//! the paper) and serve as denominators when reporting empirical
//! approximation ratios: `|A| / LB ≥ |A| / |Opt|`, so a measured ratio below
//! an algorithm's guarantee *proves* the guarantee held on that instance.

use crate::instance::{is_finite, UniformInstance, UnrelatedInstance, INF};
use crate::ratio::Ratio;

/// Lower bound for uniform instances: the maximum of
///
/// 1. the *area bound* `(Σ_j p_j + Σ_{k nonempty} s_k) / Σ_i v_i` — every
///    schedule processes all job sizes plus at least one setup per nonempty
///    class, and total speed bounds throughput, and
/// 2. the *single-job bound* `max_j (p_j + s_{k_j}) / v_max` — the machine
///    running job `j` pays its size plus one setup of its class.
pub fn uniform_lower_bound(inst: &UniformInstance) -> Ratio {
    let area = Ratio::new(inst.total_work_with_min_setups().max(1), inst.total_speed());
    let vmax = inst.max_speed();
    let single = (0..inst.n())
        .map(|j| {
            let job = inst.job(j);
            Ratio::new(job.size + inst.setup(job.class), vmax)
        })
        .max()
        .unwrap_or(Ratio::ZERO);
    if inst.n() == 0 {
        return Ratio::ZERO;
    }
    area.max(single)
}

/// Trivial upper bound for uniform instances: run everything on a fastest
/// machine. Used as the right endpoint of binary searches.
pub fn uniform_upper_bound(inst: &UniformInstance) -> Ratio {
    if inst.n() == 0 {
        return Ratio::ZERO;
    }
    Ratio::new(inst.total_work_with_min_setups(), inst.max_speed())
}

/// Lower bound for unrelated instances: `max_j min_i (p_ij + s_{i,k_j})`.
/// The machine that runs `j` has load at least `p_ij + s_{i,k_j}`.
pub fn unrelated_lower_bound(inst: &UnrelatedInstance) -> u64 {
    (0..inst.n())
        .map(|j| (0..inst.m()).map(|i| inst.cost(i, j)).min().unwrap_or(INF))
        .max()
        .unwrap_or(0)
}

/// Trivial upper bound for unrelated instances: assign every job greedily to
/// its cheapest machine and evaluate. Always finite for valid instances.
pub fn unrelated_upper_bound(inst: &UnrelatedInstance) -> u64 {
    use crate::schedule::{unrelated_makespan, Schedule};
    let assignment: Vec<usize> = (0..inst.n())
        .map(|j| {
            (0..inst.m())
                .min_by_key(|&i| inst.cost(i, j))
                .expect("instance has at least one machine")
        })
        .collect();
    unrelated_makespan(inst, &Schedule::new(assignment))
        .expect("cheapest-machine assignment uses only finite entries")
}

/// Area-style lower bound for unrelated instances with a *makespan guess* —
/// used to reject hopeless guesses before solving an LP: if even assigning
/// every job to its cheapest machine w.r.t. `T`-feasibility exceeds total
/// capacity `m·T`, no schedule of makespan `T` exists. Conservative (never
/// rejects a feasible `T`).
pub fn unrelated_area_reject(inst: &UnrelatedInstance, t: u64) -> bool {
    let mut total: u128 = 0;
    for j in 0..inst.n() {
        let best = (0..inst.m())
            .filter(|&i| {
                let p = inst.ptime(i, j);
                is_finite(p) && p <= t && is_finite(inst.setup(i, inst.class_of(j)))
            })
            .map(|i| inst.ptime(i, j))
            .min();
        match best {
            Some(p) => total += p as u128,
            None => return true, // some job cannot run anywhere within T
        }
    }
    total > inst.m() as u128 * t as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;
    use crate::schedule::{uniform_makespan, Schedule};

    #[test]
    fn uniform_bounds_sandwich_a_real_schedule() {
        let inst = UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap();
        let lb = uniform_lower_bound(&inst);
        let ub = uniform_upper_bound(&inst);
        assert!(lb <= ub);
        // Any schedule's makespan must be within [lb, ..]; the all-on-fastest
        // schedule must be within [lb, ub].
        let s = Schedule::new(vec![0, 0, 0]);
        let ms = uniform_makespan(&inst, &s).unwrap();
        assert!(lb <= ms);
        assert!(ms <= ub);
    }

    #[test]
    fn uniform_single_job_bound_dominates_when_one_giant_job() {
        let inst = UniformInstance::new(vec![1, 1, 1, 1], vec![2], vec![Job::new(0, 100)]).unwrap();
        // area bound: 102/4; single-job: 102/1.
        assert_eq!(uniform_lower_bound(&inst), Ratio::new(102, 1));
    }

    #[test]
    fn empty_instances() {
        let inst = UniformInstance::new(vec![1], vec![], vec![]).unwrap();
        assert_eq!(uniform_lower_bound(&inst), Ratio::ZERO);
        assert_eq!(uniform_upper_bound(&inst), Ratio::ZERO);
    }

    #[test]
    fn unrelated_bounds() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![10, 2], vec![1, INF]],
            vec![vec![5, 1], vec![2, 9]],
        )
        .unwrap();
        // job 0: min(10+5, 2+1)=3 ; job 1: min(1+2, INF)=3 → LB = 3.
        assert_eq!(unrelated_lower_bound(&inst), 3);
        let ub = unrelated_upper_bound(&inst);
        assert!(ub >= 3);
    }

    #[test]
    fn area_reject_is_conservative() {
        let inst =
            UnrelatedInstance::new(2, vec![0, 0], vec![vec![4, 4], vec![4, 4]], vec![vec![0, 0]])
                .unwrap();
        // T = 4: each job takes 4 somewhere, total 8 = m*T → not rejected.
        assert!(!unrelated_area_reject(&inst, 4));
        // T = 3: no machine can fit any job (p=4 > 3) → rejected.
        assert!(unrelated_area_reject(&inst, 3));
    }
}
