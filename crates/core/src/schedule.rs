//! Schedules and their exact evaluation.
//!
//! A schedule is the mapping `σ : J → M` of Section 1.1. The load of machine
//! `i` is `Σ_{j∈σ⁻¹(i)} p_ij + Σ_{k: class k present on i} s_ik` — jobs of a
//! class are processed in one batch per machine, so each machine pays each
//! present class's setup exactly once.

use crate::error::ScheduleError;
use crate::instance::{is_finite, JobId, MachineId, UniformInstance, UnrelatedInstance, INF};
use crate::ratio::Ratio;

/// An assignment of every job to one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    assignment: Vec<MachineId>,
}

impl Schedule {
    /// Wraps a raw assignment vector (`assignment[j]` = machine of job `j`).
    pub fn new(assignment: Vec<MachineId>) -> Schedule {
        Schedule { assignment }
    }

    #[inline]
    /// Number of jobs covered by the schedule.
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    #[inline]
    /// Machine `σ(j)` of job `j`.
    pub fn machine_of(&self, j: JobId) -> MachineId {
        self.assignment[j]
    }

    #[inline]
    /// The raw assignment vector.
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    #[inline]
    /// Reassigns job `j` to machine `i`.
    pub fn set(&mut self, j: JobId, i: MachineId) {
        self.assignment[j] = i;
    }

    /// Jobs assigned to machine `i`, in job-id order.
    pub fn jobs_on(&self, i: MachineId) -> Vec<JobId> {
        (0..self.n()).filter(|&j| self.assignment[j] == i).collect()
    }

    /// Groups jobs by machine: `result[i]` lists the jobs on machine `i`.
    pub fn by_machine(&self, m: usize) -> Vec<Vec<JobId>> {
        let mut res = vec![Vec::new(); m];
        for (j, &i) in self.assignment.iter().enumerate() {
            res[i].push(j);
        }
        res
    }

    /// Basic shape validation shared by both environments.
    fn validate_shape(&self, n: usize, m: usize) -> Result<(), ScheduleError> {
        if self.n() != n {
            return Err(ScheduleError::WrongLength { expected: n, got: self.n() });
        }
        for (j, &i) in self.assignment.iter().enumerate() {
            if i >= m {
                return Err(ScheduleError::MachineOutOfRange { job: j, machine: i, m });
            }
        }
        Ok(())
    }
}

/// Per-machine *work* (size units) of a schedule on a uniform instance:
/// `work_i = Σ_{j on i} p_j + Σ_{classes on i} s_k`. Divide by `v_i` for time.
pub fn uniform_loads(inst: &UniformInstance, sched: &Schedule) -> Result<Vec<u64>, ScheduleError> {
    sched.validate_shape(inst.n(), inst.m())?;
    let mut work = vec![0u64; inst.m()];
    let mut seen = SeenScratch::new(inst.m(), inst.num_classes(), inst.n());
    for j in 0..inst.n() {
        let i = sched.machine_of(j);
        let job = inst.job(j);
        work[i] += job.size;
        if seen.first_sight(i, job.class) {
            work[i] += inst.setup(job.class);
        }
    }
    Ok(work)
}

/// Per-(machine, class) "seen" set for the full-recompute paths. Dense
/// `m × K` bitmap — one allocation, O(1) queries — when that stays
/// proportional to the input size; per-machine sorted Vecs otherwise, so a
/// sparse instance (huge `m·K`, few jobs) never allocates beyond
/// O(n + m). Kept private to this module — incremental callers should use
/// [`crate::tracker`] instead.
enum SeenScratch {
    Dense { num_classes: usize, seen: Vec<bool> },
    Sparse(Vec<Vec<usize>>),
}

impl SeenScratch {
    fn new(m: usize, num_classes: usize, n: usize) -> SeenScratch {
        // At most one bitmap byte per 8 input words (plus slack for tiny
        // instances): past that, the dense table no longer pays for itself.
        let budget = (8 * (n + m)).max(1 << 12);
        if m.saturating_mul(num_classes) <= budget {
            SeenScratch::Dense { num_classes, seen: vec![false; m * num_classes] }
        } else {
            SeenScratch::Sparse(vec![Vec::new(); m])
        }
    }

    /// Marks `(machine, class)` and returns true iff it was unseen before.
    #[inline]
    fn first_sight(&mut self, i: MachineId, k: usize) -> bool {
        match self {
            SeenScratch::Dense { num_classes, seen } => {
                !std::mem::replace(&mut seen[i * *num_classes + k], true)
            }
            SeenScratch::Sparse(per_machine) => match per_machine[i].binary_search(&k) {
                Ok(_) => false,
                Err(pos) => {
                    per_machine[i].insert(pos, k);
                    true
                }
            },
        }
    }
}

/// Exact makespan of a schedule on a uniform instance:
/// `max_i work_i / v_i`.
pub fn uniform_makespan(inst: &UniformInstance, sched: &Schedule) -> Result<Ratio, ScheduleError> {
    let loads = uniform_loads(inst, sched)?;
    Ok(loads
        .iter()
        .zip(inst.speeds())
        .map(|(&w, &v)| Ratio::new(w, v))
        .max()
        .unwrap_or(Ratio::ZERO))
}

/// Per-machine load (time units) of a schedule on an unrelated instance.
/// Fails if any assigned job or required setup is infinite on its machine.
pub fn unrelated_loads(
    inst: &UnrelatedInstance,
    sched: &Schedule,
) -> Result<Vec<u64>, ScheduleError> {
    sched.validate_shape(inst.n(), inst.m())?;
    let mut load = vec![0u64; inst.m()];
    let mut seen = SeenScratch::new(inst.m(), inst.num_classes(), inst.n());
    for j in 0..inst.n() {
        let i = sched.machine_of(j);
        let p = inst.ptime(i, j);
        if !is_finite(p) {
            return Err(ScheduleError::InfiniteProcessingTime { job: j, machine: i });
        }
        load[i] = load[i].saturating_add(p);
        let k = inst.class_of(j);
        if seen.first_sight(i, k) {
            let s = inst.setup(i, k);
            if !is_finite(s) {
                return Err(ScheduleError::InfiniteSetup { class: k, machine: i });
            }
            load[i] = load[i].saturating_add(s);
        }
    }
    Ok(load)
}

/// Exact makespan of a schedule on an unrelated instance.
pub fn unrelated_makespan(
    inst: &UnrelatedInstance,
    sched: &Schedule,
) -> Result<u64, ScheduleError> {
    Ok(unrelated_loads(inst, sched)?.into_iter().max().unwrap_or(0))
}

/// Number of setups each machine pays under `sched` (unrelated instance):
/// the number of distinct classes present per machine.
pub fn setups_per_machine(inst: &UnrelatedInstance, sched: &Schedule) -> Vec<usize> {
    let mut seen = SeenScratch::new(inst.m(), inst.num_classes(), inst.n());
    let mut counts = vec![0usize; inst.m()];
    for j in 0..inst.n() {
        let i = sched.machine_of(j);
        let k = inst.class_of(j);
        if seen.first_sight(i, k) {
            counts[i] += 1;
        }
    }
    counts
}

/// Makespan of an unrelated schedule treating infinite entries as [`INF`]
/// instead of failing — used when *measuring* how bad a baseline is.
pub fn unrelated_makespan_or_inf(inst: &UnrelatedInstance, sched: &Schedule) -> u64 {
    match unrelated_makespan(inst, sched) {
        Ok(v) => v,
        Err(_) => INF,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst() -> UniformInstance {
        // speeds 2,1; classes with setups 3 and 5.
        UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn uniform_load_counts_setup_once_per_class() {
        let s = Schedule::new(vec![0, 0, 0]);
        let loads = uniform_loads(&inst(), &s).unwrap();
        // machine 0: jobs 4+6+2 = 12, setups 3 (class 0 once) + 5 = 20.
        assert_eq!(loads, vec![20, 0]);
        assert_eq!(uniform_makespan(&inst(), &s).unwrap(), Ratio::new(20, 2));
    }

    #[test]
    fn uniform_load_split_pays_setup_per_machine() {
        let s = Schedule::new(vec![0, 1, 1]);
        let loads = uniform_loads(&inst(), &s).unwrap();
        // machine 0: 4 + setup 3 = 7; machine 1: 6 + 2 + setups 5 + 3 = 16.
        assert_eq!(loads, vec![7, 16]);
        assert_eq!(uniform_makespan(&inst(), &s).unwrap(), Ratio::new(16, 1));
    }

    #[test]
    fn shape_validation() {
        let s = Schedule::new(vec![0, 0]);
        assert!(matches!(
            uniform_loads(&inst(), &s),
            Err(ScheduleError::WrongLength { expected: 3, got: 2 })
        ));
        let s = Schedule::new(vec![0, 0, 5]);
        assert!(matches!(
            uniform_loads(&inst(), &s),
            Err(ScheduleError::MachineOutOfRange { job: 2, machine: 5, m: 2 })
        ));
    }

    #[test]
    fn unrelated_loads_and_errors() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap();
        let good = Schedule::new(vec![0, 1, 0]);
        // machine 0: job0 p=3 + setup(0)=1, job2 p=5 + setup(1)=7 → 16
        // machine 1: job1 p=4 + setup(0)=2 → 6
        assert_eq!(unrelated_loads(&inst, &good).unwrap(), vec![16, 6]);
        assert_eq!(unrelated_makespan(&inst, &good).unwrap(), 16);
        assert_eq!(setups_per_machine(&inst, &good), vec![2, 1]);

        let bad_p = Schedule::new(vec![0, 0, 0]);
        assert!(matches!(
            unrelated_loads(&inst, &bad_p),
            Err(ScheduleError::InfiniteProcessingTime { job: 1, machine: 0 })
        ));
        assert_eq!(unrelated_makespan_or_inf(&inst, &bad_p), INF);

        let bad_s = Schedule::new(vec![0, 1, 1]);
        assert!(matches!(
            unrelated_loads(&inst, &bad_s),
            Err(ScheduleError::InfiniteSetup { class: 1, machine: 1 })
        ));
    }

    #[test]
    fn sparse_scratch_handles_huge_class_count() {
        // m·K far beyond the dense-bitmap budget: the sparse path must give
        // the same answer without allocating m·K memory.
        let kk = 3_000_000usize;
        let mut setups = vec![0u64; kk];
        setups[0] = 3;
        setups[kk - 1] = 5;
        let inst = UniformInstance::new(
            vec![1; 64],
            setups,
            vec![Job::new(0, 4), Job::new(kk - 1, 6), Job::new(0, 2)],
        )
        .unwrap();
        let s = Schedule::new(vec![0, 0, 0]);
        let loads = uniform_loads(&inst, &s).unwrap();
        assert_eq!(loads[0], 4 + 6 + 2 + 3 + 5);
        assert_eq!(uniform_makespan(&inst, &s).unwrap(), Ratio::new(20, 1));
    }

    #[test]
    fn by_machine_partitions_jobs() {
        let s = Schedule::new(vec![1, 0, 1]);
        let groups = s.by_machine(3);
        assert_eq!(groups, vec![vec![1], vec![0, 2], vec![]]);
        assert_eq!(s.jobs_on(1), vec![0, 2]);
    }
}
