//! Speed groups, core/fringe jobs and machines (Section 2, Figure 1).
//!
//! For accuracy `ε = 1/q` the paper sets `δ = ε²`, `γ = ε³` and covers the
//! speed axis with overlapping groups: group `g` is the speed interval
//! `[v̌_g, v̂_g)` with `v̌_g = v_min/γ^{g-1} = v_min·q^{3(g-1)}` and
//! `v̂_g = v_min·q^{3(g+1)}`. Every speed lies in exactly two consecutive
//! groups. All membership predicates below are *exact* (u128 integer
//! arithmetic against the rational makespan guess `T`), because they decide
//! which jobs the dynamic program may place where — an off-by-one-ulp here
//! becomes an invalid schedule there.

use crate::instance::{Job, MachineId, UniformInstance};
use crate::ratio::Ratio;

/// The group structure for one simplified instance and makespan guess.
#[derive(Debug, Clone)]
pub struct SpeedGroups {
    /// `q = 1/ε`.
    q: u64,
    /// `q³ = 1/γ`.
    q3: u64,
    v_min: u64,
    t: Ratio,
    /// For each machine: the *smaller* of its two group indices (`t` such
    /// that the machine's speed lies in groups `t` and `t+1`); machines of
    /// speed `v_min` get 0.
    machine_base_group: Vec<i64>,
    /// Largest group index containing a machine (G in the paper).
    max_group: i64,
}

/// Size classification of a job size relative to a machine speed
/// (Section 2, "Preliminaries").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// `p < ε·v·T`
    Small,
    /// `ε·v·T ≤ p ≤ v·T`
    Big,
    /// `p > v·T`
    Huge,
}

/// `base^exp` in u128, or `None` on overflow ("larger than anything we
/// compare against").
fn checked_pow(base: u64, exp: u32) -> Option<u128> {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base as u128)?;
    }
    Some(acc)
}

impl SpeedGroups {
    /// Builds the group structure for (already simplified) `inst` with
    /// accuracy `ε = 1/q` and makespan guess `t`.
    pub fn new(inst: &UniformInstance, q: u64, t: Ratio) -> SpeedGroups {
        assert!(q >= 2, "accuracy parameter requires q = 1/ε ≥ 2");
        assert!(!t.is_zero(), "makespan guess must be positive");
        let q3 = q * q * q;
        let v_min = inst.min_speed();
        let machine_base_group: Vec<i64> = inst
            .speeds()
            .iter()
            .map(|&v| {
                // Largest g ≥ 0 with v_min·q^{3g} ≤ v.
                let mut g: i64 = 0;
                let mut bound = v_min as u128;
                loop {
                    match bound.checked_mul(q3 as u128) {
                        Some(next) if next <= v as u128 => {
                            bound = next;
                            g += 1;
                        }
                        _ => break,
                    }
                }
                g
            })
            .collect();
        let max_group = machine_base_group.iter().map(|&g| g + 1).max().unwrap_or(0);
        SpeedGroups { q, q3, v_min, t, machine_base_group, max_group }
    }

    #[inline]
    /// Accuracy parameter `q = 1/ε`.
    pub fn q(&self) -> u64 {
        self.q
    }

    #[inline]
    /// The makespan guess `T` the structure was built for.
    pub fn t(&self) -> Ratio {
        self.t
    }

    /// Largest group index containing a machine (`G`). The smallest is 0.
    #[inline]
    pub fn max_group(&self) -> i64 {
        self.max_group
    }

    /// The two groups containing machine `i`: `(g, g+1)`.
    #[inline]
    pub fn machine_groups(&self, i: MachineId) -> (i64, i64) {
        let g = self.machine_base_group[i];
        (g, g + 1)
    }

    /// Machines belonging to group `g` (`M_g`): those whose speed lies in
    /// `[v̌_g, v̂_g)`.
    pub fn machines_of_group(&self, g: i64) -> Vec<MachineId> {
        (0..self.machine_base_group.len())
            .filter(|&i| {
                let b = self.machine_base_group[i];
                b == g || b + 1 == g
            })
            .collect()
    }

    /// Exact three-way comparison of `p` against `v_min·q^e·T` for any
    /// integer `e` (negative exponents divide). Overflow on either side means
    /// that side is astronomically larger, which the ordering reflects.
    fn cmp_size_pow(&self, p: u64, e: i64) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let lhs0 = p as u128 * self.t.denom() as u128;
        let rhs0 = self.v_min as u128 * self.t.numer() as u128;
        if e >= 0 {
            match checked_pow(self.q, e as u32) {
                Some(pw) => match rhs0.checked_mul(pw) {
                    Some(rhs) => lhs0.cmp(&rhs),
                    None => Ordering::Less,
                },
                None => Ordering::Less,
            }
        } else {
            match checked_pow(self.q, (-e) as u32) {
                Some(pw) => match lhs0.checked_mul(pw) {
                    Some(lhs) => lhs.cmp(&rhs0),
                    None => Ordering::Greater,
                },
                None => Ordering::Greater,
            }
        }
    }

    /// The *native group* of a size `p`: the smallest `g` whose speed range
    /// `[v̌_g, v̂_g)` contains **every** speed for which `p` is big, i.e.
    /// `v̌_g ≤ p/T` and `p/(εT) < v̂_g`, equivalently
    /// `v_min·q^{3(g-1)}·T ≤ p < v_min·q^{3g+2}·T`.
    ///
    /// (The paper's inline formula states the weaker pair
    /// `p ≥ ε·v̌_g·T ∧ p < v̂_g·T`; the containment form here is what the
    /// surrounding text — "at least one of them contains all such speeds" —
    /// and the accounting in Lemma 2.8 require, and it makes Remark 2.7's
    /// derivation go through. See DESIGN.md.)
    ///
    /// Returns `None` for `p = 0`.
    pub fn native_group(&self, p: u64) -> Option<i64> {
        if p == 0 {
            return None;
        }
        // Smallest g with p < v_min·q^{3g+2}·T; the bound grows in g, so scan
        // upward from a floor low enough for any positive p (sizes ≥ 1,
        // speeds ≤ 2^64, T's numerator/denominator ≤ 2^64).
        let mut g = -64_i64;
        while self.cmp_size_pow(p, 3 * g + 2) != std::cmp::Ordering::Less {
            g += 1;
            assert!(g < 10_000, "native group scan diverged");
        }
        debug_assert!(
            self.cmp_size_pow(p, 3 * (g - 1)) != std::cmp::Ordering::Less,
            "smallest g with p < ε·v̂_g·T automatically satisfies p ≥ v̌_g·T"
        );
        Some(g)
    }

    /// The *core group* of class `k` with setup size `s`: the smallest `g`
    /// whose speed range contains every possible core-machine speed of `k`
    /// (`s ≤ T·v < s·q³`), i.e. `v̌_g ≤ s/T` and `s·q³/T ≤ v̂_g`,
    /// equivalently `v_min·q^{3(g-1)}·T ≤ s ≤ v_min·q^{3g}·T`.
    ///
    /// Every class has a core group even if it has no core machines
    /// (Section 2). Returns `None` for `s = 0` — zero setups cost nothing
    /// and need no group bookkeeping.
    pub fn core_group(&self, s: u64) -> Option<i64> {
        if s == 0 {
            return None;
        }
        // Smallest g with s ≤ v_min·q^{3g}·T.
        let mut g = -64_i64;
        while self.cmp_size_pow(s, 3 * g) == std::cmp::Ordering::Greater {
            g += 1;
            assert!(g < 10_000, "core group scan diverged");
        }
        debug_assert!(
            self.cmp_size_pow(s, 3 * (g - 1)) != std::cmp::Ordering::Less,
            "smallest g with s ≤ γ·v̂_g·T automatically satisfies s ≥ v̌_g·T"
        );
        Some(g)
    }

    /// Classifies a size against a concrete machine speed.
    pub fn classify(&self, p: u64, v: u64) -> SizeClass {
        // p < ε·v·T ⟺ p·q·T.den < v·T.num
        let lhs_small = p as u128 * self.q as u128 * self.t.denom() as u128;
        let rhs = v as u128 * self.t.numer() as u128;
        if lhs_small < rhs {
            return SizeClass::Small;
        }
        // p > v·T ⟺ p·T.den > v·T.num
        if (p as u128 * self.t.denom() as u128) > rhs {
            SizeClass::Huge
        } else {
            SizeClass::Big
        }
    }

    /// Is job `j` a *core job* of its class (size `εs_k ≤ p < s_k/δ = s_k·q²`)?
    /// Jobs with `p ≥ s_k·q²` are *fringe jobs*. (Smaller jobs were removed
    /// by simplification step 2.) Classes with `s_k = 0` have only fringe
    /// jobs — their setups cost nothing, matching the paper's convention
    /// that fringe jobs' setups are ignored in relaxed schedules.
    pub fn is_core_job(&self, job: Job, setup: u64) -> bool {
        if setup == 0 {
            return false;
        }
        // p < s·q² (upper); lower bound εs ≤ p guaranteed by simplification.
        (job.size as u128) < setup as u128 * (self.q * self.q) as u128
    }

    /// Is machine `i` (speed `v`) a *core machine* of a class with setup `s`:
    /// `s ≤ T·v < s·q³`? Faster machines are *fringe machines*.
    pub fn is_core_machine(&self, v: u64, setup: u64) -> bool {
        if setup == 0 {
            return false;
        }
        // s ≤ T·v  and  T·v < s·q³
        let tv_num = v as u128 * self.t.numer() as u128;
        let lower = setup as u128 * self.t.denom() as u128;
        let upper = lower.saturating_mul(self.q3 as u128);
        lower <= tv_num && tv_num < upper
    }

    /// Is machine speed `v` a *fringe machine* of a class with setup `s`
    /// (`T·v ≥ s·q³`)?
    pub fn is_fringe_machine(&self, v: u64, setup: u64) -> bool {
        if setup == 0 {
            return true;
        }
        let tv_num = v as u128 * self.t.numer() as u128;
        let bound = (setup as u128 * self.t.denom() as u128).saturating_mul(self.q3 as u128);
        tv_num >= bound
    }
}

/// Geometric speed bucketing: assigns each machine the index
/// `k = ⌊log_{(q+1)/q}(v/v_min)⌋`, so machines within one bucket differ in
/// speed by a factor `< 1+ε`. Used by the PTAS dynamic program to bound the
/// number of distinct speeds per group (the paper's geometric speed
/// rounding, Lemma 2.4).
///
/// Buckets are computed with f64 logarithms and then repaired to be exactly
/// monotone in the true (integer) speeds; the *representative* speed of a
/// bucket is its minimum member, i.e. speeds are rounded *down*, so any
/// schedule feasible for representatives is feasible for the real machines.
/// The float is therefore only a performance/precision-of-ε choice, never a
/// correctness issue.
pub fn geometric_speed_buckets(speeds: &[u64], q: u64) -> Vec<u32> {
    assert!(q >= 2);
    let v_min = *speeds.iter().min().expect("at least one machine") as f64;
    let base = ((q + 1) as f64 / q as f64).ln();
    let mut order: Vec<usize> = (0..speeds.len()).collect();
    order.sort_by_key(|&i| speeds[i]);
    let mut buckets = vec![0u32; speeds.len()];
    let mut last_speed = 0u64;
    let mut last_bucket = 0u32;
    for &i in &order {
        let raw = ((speeds[i] as f64 / v_min).ln() / base).floor().max(0.0) as u32;
        // Monotone repair: equal speeds share a bucket; larger speeds never
        // get a smaller bucket than a slower machine already received.
        let b = if speeds[i] == last_speed { last_bucket } else { raw.max(last_bucket) };
        buckets[i] = b;
        last_speed = speeds[i];
        last_bucket = b;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn groups(speeds: Vec<u64>, q: u64, t: Ratio) -> (UniformInstance, SpeedGroups) {
        let inst = UniformInstance::new(speeds, vec![4], vec![Job::new(0, 8)]).unwrap();
        let sg = SpeedGroups::new(&inst, q, t);
        (inst, sg)
    }

    #[test]
    fn every_speed_lies_in_exactly_two_groups() {
        // q = 2 → q³ = 8. Speeds 1..=64 with v_min = 1.
        let speeds: Vec<u64> = vec![1, 2, 7, 8, 9, 63, 64, 512];
        let (_inst, sg) = groups(speeds.clone(), 2, Ratio::ONE);
        for (i, &v) in speeds.iter().enumerate() {
            let (a, b) = sg.machine_groups(i);
            assert_eq!(b, a + 1);
            // Membership check: v ∈ [q^{3(g-1)}, q^{3(g+1)}) for g ∈ {a, b}.
            for g in [a, b] {
                let lo = 8f64.powi((g - 1) as i32);
                let hi = 8f64.powi((g + 1) as i32);
                assert!(
                    (v as f64) >= lo && (v as f64) < hi,
                    "speed {v} should lie in group {g} = [{lo},{hi})"
                );
            }
        }
        // v = 1 is in groups (0,1); v = 8 in (1,2); v = 512 = 8³ in (3,4).
        assert_eq!(sg.machine_groups(0), (0, 1));
        assert_eq!(sg.machine_groups(3), (1, 2));
        assert_eq!(sg.machine_groups(7), (3, 4));
        assert_eq!(sg.max_group(), 4);
    }

    #[test]
    fn machines_of_group_overlap() {
        let speeds: Vec<u64> = vec![1, 8, 64];
        let (_i, sg) = groups(speeds, 2, Ratio::ONE);
        // speed 8 (base 1) is in groups 1 and 2; speed 64 (base 2) in 2 and 3.
        assert_eq!(sg.machines_of_group(0), vec![0]);
        assert_eq!(sg.machines_of_group(1), vec![0, 1]);
        assert_eq!(sg.machines_of_group(2), vec![1, 2]);
        assert_eq!(sg.machines_of_group(3), vec![2]);
    }

    #[test]
    fn classify_small_big_huge() {
        let (_i, sg) = groups(vec![1, 10], 2, Ratio::new(10, 1));
        // v = 10, T = 10 → capacity 100, ε·cap = 50.
        assert_eq!(sg.classify(49, 10), SizeClass::Small);
        assert_eq!(sg.classify(50, 10), SizeClass::Big);
        assert_eq!(sg.classify(100, 10), SizeClass::Big);
        assert_eq!(sg.classify(101, 10), SizeClass::Huge);
    }

    #[test]
    fn native_group_covers_all_big_speeds() {
        // q = 2, v_min = 1, T = 1: job size p is big for v ∈ [p, 2p] (ε = ½).
        let (_i, sg) = groups(vec![1, 8, 64], 2, Ratio::ONE);
        for p in [1u64, 3, 7, 8, 20, 64, 100, 500] {
            let g = sg.native_group(p).unwrap();
            // All speeds v with εvT ≤ p ≤ vT, i.e. v ∈ [p, 2p], must lie in
            // group g: [8^{g-1}, 8^{g+1}).
            let lo = 8f64.powi((g - 1) as i32);
            let hi = 8f64.powi((g + 1) as i32);
            assert!(
                p as f64 >= lo && ((2 * p) as f64) < hi,
                "p={p}: big-speed interval [{p},{}] outside group {g} = [{lo},{hi})",
                2 * p
            );
            // Minimality: group g-1 must NOT contain the whole interval.
            let hi_prev = 8f64.powi(g as i32);
            assert!(
                ((2 * p) as f64) >= hi_prev,
                "p={p}: group {} already contains the interval",
                g - 1
            );
        }
        assert_eq!(sg.native_group(0), None);
    }

    #[test]
    fn core_group_contains_core_machine_speeds() {
        // Core machines of class with setup s: s ≤ Tv < s·q³.
        let (_i, sg) = groups(vec![1, 8, 64], 2, Ratio::ONE);
        for s in [1u64, 2, 5, 8, 30, 64] {
            let g = sg.core_group(s).unwrap();
            let lo = 8f64.powi((g - 1) as i32);
            let hi = 8f64.powi((g + 1) as i32);
            // Speed interval of core machines: [s, 8s). Must lie in group g.
            assert!(
                s as f64 >= lo && (8 * s) as f64 <= hi,
                "s={s}: core-machine speeds [{s},{}) outside group {g} = [{lo},{hi})",
                8 * s
            );
            // Remark 2.7 needs s ≤ γ·v̂_g·T, i.e. s ≤ 8^g here.
            assert!(s as f64 <= 8f64.powi(g as i32));
        }
    }

    #[test]
    fn remark_2_6_core_jobs_small_on_fringe_machines() {
        // Core job of class k: p < s·q²; fringe machine: Tv ≥ s·q³.
        // Then p < s·q² = (s·q³)·ε ≤ εTv → small. Verify via predicates.
        let (_i, sg) = groups(vec![1, 1000], 2, Ratio::ONE);
        let setup = 10u64;
        let core_job = Job::new(0, 39); // < 10·4 = 40 → core
        assert!(sg.is_core_job(core_job, setup));
        let fringe_v = 80; // Tv = 80 ≥ 10·8 → fringe machine
        assert!(sg.is_fringe_machine(fringe_v, setup));
        assert_eq!(sg.classify(core_job.size, fringe_v), SizeClass::Small);
    }

    #[test]
    fn core_machine_window() {
        let (_i, sg) = groups(vec![1, 1000], 2, Ratio::ONE);
        let s = 10u64;
        assert!(!sg.is_core_machine(9, s)); // Tv < s
        assert!(sg.is_core_machine(10, s));
        assert!(sg.is_core_machine(79, s)); // < 80 = s·q³
        assert!(!sg.is_core_machine(80, s));
        assert!(sg.is_fringe_machine(80, s));
        assert!(!sg.is_fringe_machine(79, s));
    }

    #[test]
    fn zero_setup_classes_are_all_fringe() {
        let (_i, sg) = groups(vec![1, 4], 2, Ratio::ONE);
        assert!(!sg.is_core_job(Job::new(0, 1), 0));
        assert!(sg.is_fringe_machine(1, 0));
        assert_eq!(sg.core_group(0), None);
    }

    #[test]
    fn geometric_buckets_monotone_and_tight() {
        let speeds = vec![100, 100, 150, 151, 400, 99, 1000];
        let b = geometric_speed_buckets(&speeds, 2);
        // Equal speeds share buckets; order by speed gives non-decreasing buckets.
        assert_eq!(b[0], b[1]);
        let mut pairs: Vec<(u64, u32)> = speeds.iter().copied().zip(b.iter().copied()).collect();
        pairs.sort();
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Within a bucket, speeds differ by < 1+ε = 1.5 (q=2).
        for i in 0..speeds.len() {
            for j in 0..speeds.len() {
                if b[i] == b[j] {
                    let (lo, hi) =
                        (speeds[i].min(speeds[j]) as f64, speeds[i].max(speeds[j]) as f64);
                    assert!(hi / lo < 1.5 + 1e-9);
                }
            }
        }
    }
}
