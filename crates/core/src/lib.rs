//! # sst-core — scheduling with setup times: model and shared machinery
//!
//! Core library for the reproduction of *Jansen, Maack, Mäcker:
//! "Scheduling on (Un-)Related Machines with Setup Times"* (IPPS 2019).
//!
//! The problem: `n` jobs, partitioned into `K` setup classes, are scheduled
//! non-preemptively on `m` parallel machines. A machine pays setup time
//! `s_ik` for every class `k` of which it processes at least one job; the
//! objective is the makespan
//! `max_i ( Σ_{j∈σ⁻¹(i)} p_ij + Σ_{k present on i} s_ik )`.
//!
//! This crate provides:
//!
//! * the instance model for uniformly related and unrelated machines
//!   (restricted assignment is the unrelated model with `∞` entries) —
//!   [`instance`];
//! * schedules and their exact evaluation — [`schedule`];
//! * exact rational arithmetic for uniform-machine makespans — [`ratio`];
//! * combinatorial lower/upper bounds — [`bounds`];
//! * the dual approximation (Hochbaum–Shmoys) search drivers — [`dual`];
//! * the simplification pipeline of Section 2 (Lemmas 2.2–2.4) —
//!   [`simplify`];
//! * speed groups and core/fringe classification (Figure 1) — [`groups`];
//! * placeholder replacement for small jobs (Lemmas 2.1/2.3) — [`batch`];
//! * explicit batched timelines and ASCII Gantt charts — [`timeline`];
//! * the [`model::MachineModel`] trait unifying the machine environments
//!   (uniform, unrelated, and the splittable substrate of Section 3.3) —
//!   [`model`];
//! * incremental load tracking with `O(1)`/`O(log m)` move evaluation for
//!   the search heuristics, written once against the trait — [`tracker`];
//! * cooperative cancellation tokens (deadline + flag) that make every
//!   solver an anytime solver — [`cancel`];
//! * the observability layer — a unified metrics registry and a
//!   ring-buffered NDJSON trace-event sink — [`telemetry`].
//!
//! Algorithms live in `sst-algos`; the LP solver in `sst-lp`; generators in
//! `sst-gen`; the SetCover substrate in `sst-setcover`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod bounds;
pub mod builder;
pub mod cancel;
pub mod delta;
pub mod dual;
pub mod error;
pub mod groups;
pub mod instance;
#[cfg(feature = "serde")]
pub mod io;
pub mod model;
pub mod ratio;
pub mod schedule;
pub mod simplify;
pub mod stats;
pub mod telemetry;
pub mod timeline;
pub mod tracker;
pub mod wire;

pub use cancel::CancelToken;
pub use delta::{DeltaError, InstanceDelta};
pub use error::{InstanceError, ScheduleError};
pub use instance::{ClassId, Job, JobId, MachineId, UniformInstance, UnrelatedInstance, INF};
pub use model::{MachineModel, Splittable, Uniform, Unrelated};
pub use ratio::Ratio;
pub use schedule::Schedule;
pub use tracker::{LoadTracker, SplittableLoadTracker, UniformLoadTracker, UnrelatedLoadTracker};
