//! End-to-end telemetry: a unified metrics registry plus a structured
//! NDJSON trace-event sink.
//!
//! `sst serve` spans dispatch → keyed lane / stealing pool → race →
//! session repair → durable journal; until this module the only window
//! into that path was one mutex-guarded latency histogram. This module
//! provides the two halves of a first-class observability layer, both
//! hand-rolled (no crates.io access in this workspace):
//!
//! * **[`MetricsRegistry`]** — named [`Counter`]s, [`Gauge`]s and
//!   log₂-bucketed [`Histogram`]s, created on first use and shared as
//!   `Arc`s so the hot path holds no registry lock: a worker resolves its
//!   handle once and then records through an atomic (counters/gauges) or
//!   a short histogram mutex. [`MetricsRegistry::snapshot`] returns a
//!   consistent, name-sorted image for the `{"metrics": true}` probe;
//!   per-worker histograms aggregate with
//!   [`LatencyHistogram::merge`].
//! * **[`TraceSink`]** — a ring-buffered, non-blocking NDJSON writer of
//!   [`TraceEvent`]s. [`TraceSink::emit`] encodes the event, stamps it
//!   with microseconds since the sink's epoch, and enqueues the line; a
//!   background thread drains the ring to the underlying writer (a file,
//!   stderr, or an in-memory buffer in tests). When the ring is full the
//!   event is **dropped and counted** — serving traffic never blocks on
//!   trace I/O. Closing the sink flushes the ring and appends a final
//!   `sink_close` event carrying the dropped count, so a trace file is
//!   self-describing about its own completeness.
//!
//! Events are span-style: every request-path event carries the request
//! `id`, so `enqueue → dequeue → race_start → solver_* → incumbent →
//! respond` chains reconstruct per-request timelines from the flat file
//! (`sst trace summarize` does exactly that). Naming conventions for the
//! registry live in [`stage`] and the `solver_*` helpers so producers
//! (the service) and consumers (the probe encoder, the summarizer) agree
//! on one schema.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::stats::LatencyHistogram;

/// A monotonically increasing counter (events since start).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, workers alive).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared log₂-bucketed latency histogram (see [`LatencyHistogram`]);
/// the mutex guards a couple of arithmetic instructions per record.
#[derive(Debug)]
pub struct Histogram(Mutex<LatencyHistogram>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Mutex::named("telemetry.histogram", LatencyHistogram::new()))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.lock().record(value);
    }

    /// A copy of the current histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().clone()
    }

    /// Folds `other` into this histogram (cross-worker aggregation).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.0.lock().merge(other);
    }
}

/// A consistent, name-sorted image of a [`MetricsRegistry`] — what the
/// `{"metrics": true}` probe and the periodic self-report line render.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl RegistrySnapshot {
    /// The counter named `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| &self.histograms[i].1)
            .ok()
    }
}

/// The unified metrics registry: named instruments, created on first use,
/// shared as `Arc`s. The registry lock is held only for get-or-create and
/// snapshot — never on the recording hot path (resolve the handle once,
/// then record through it).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            counters: Mutex::named("telemetry.registry.counters", BTreeMap::new()),
            gauges: Mutex::named("telemetry.registry.gauges", BTreeMap::new()),
            histograms: Mutex::named("telemetry.registry.histograms", BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// A name-sorted image of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters =
            self.counters.lock().iter().map(|(n, c)| (n.clone(), c.get())).collect::<Vec<_>>();
        let gauges =
            self.gauges.lock().iter().map(|(n, g)| (n.clone(), g.get())).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect::<Vec<_>>();
        RegistrySnapshot { counters, gauges, histograms }
    }
}

/// Registry names of the built-in per-stage histograms (all in
/// microseconds). One shared vocabulary keeps the recorder (`sst serve`),
/// the probe encoder and `sst trace summarize` in agreement.
pub mod stage {
    /// Dispatch accept → worker dequeue (queue wait).
    pub const QUEUE_WAIT_US: &str = "stage.queue_wait_us";
    /// Race wall time (the solve itself).
    pub const RACE_US: &str = "stage.race_us";
    /// Enqueue → response written (total request latency).
    pub const TOTAL_US: &str = "stage.total_us";
    /// Journal record append, including the policy's flush/fsync.
    pub const JOURNAL_APPEND_US: &str = "stage.journal_append_us";
    /// The flush + fsync portion of a journal append alone.
    pub const JOURNAL_FSYNC_US: &str = "stage.journal_fsync_us";
    /// Snapshot file write (encode + write + rename).
    pub const SNAPSHOT_US: &str = "stage.snapshot_us";
    /// Crash-recovery replay at startup.
    pub const RECOVERY_US: &str = "stage.recovery_us";
    /// Budget expiry → solver actually stopped (cancellation latency).
    pub const CANCEL_US: &str = "stage.cancel_us";
    /// Request decode at parse time — JSON line parse or binary frame
    /// decode — so ingest cost is visible per-stage instead of folded
    /// into [`TOTAL_US`].
    pub const DECODE_US: &str = "stage.decode_us";
    /// A lane's wait for the group committer's durability acknowledgement
    /// (enqueue → its record's batch flushed/synced).
    pub const COMMIT_WAIT_US: &str = "stage.commit_wait_us";
    /// Records per coalesced group-commit batch. Deliberately *not*
    /// `stage.`-prefixed: it counts records, not microseconds, so it must
    /// not render as a latency stage row.
    pub const JOURNAL_BATCH_LEN: &str = "journal_batch_len";
}

/// Registry name of solver `name`'s time-to-first-incumbent histogram
/// (µs from race start to its first improvement of the incumbent).
pub fn solver_first_incumbent(name: &str) -> String {
    format!("solver.{name}.first_incumbent_us")
}

/// Registry name of solver `name`'s incumbent-improvements counter.
pub fn solver_improvements(name: &str) -> String {
    format!("solver.{name}.improvements")
}

/// Registry name of solver `name`'s races-won counter.
pub fn solver_wins(name: &str) -> String {
    format!("solver.{name}.wins")
}

/// One structured trace event. Request-path events carry the request `id`
/// (the span key); session-durability events carry the session `sid`.
/// Encoded as one JSON object per line:
/// `{"ts_us": <µs since sink epoch>, "event": "<kind>", ...fields}`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Request `id` accepted into the pool/lane queue.
    Enqueue {
        /// Request id.
        id: u64,
    },
    /// Request `id` claimed by worker/lane `worker` after waiting
    /// `queue_wait_us` µs.
    Dequeue {
        /// Request id.
        id: u64,
        /// Claiming worker (pool) or lane (session verbs) index.
        worker: u64,
        /// Dispatch accept → claim, in µs.
        queue_wait_us: u64,
    },
    /// Request `id`'s payload was decoded (JSON line parse or binary
    /// frame decode) in `micros` µs.
    Decode {
        /// Request id.
        id: u64,
        /// `"json"` or `"binary"`.
        codec: String,
        /// Decode wall time, µs.
        micros: u64,
    },
    /// The race for request `id` started with `members` portfolio members.
    RaceStart {
        /// Request id.
        id: u64,
        /// Raced portfolio members (excluding the greedy floor).
        members: u64,
    },
    /// One portfolio member began its attempt.
    SolverStart {
        /// Request id.
        id: u64,
        /// Solver name.
        solver: String,
    },
    /// One portfolio member finished (or was cancelled).
    SolverEnd {
        /// Request id.
        id: u64,
        /// Solver name.
        solver: String,
        /// `"completed"` or `"cancelled"`.
        outcome: String,
        /// Attempt wall time, µs.
        micros: u64,
        /// The makespan it achieved, when it produced a solution.
        makespan: Option<f64>,
    },
    /// The shared incumbent improved.
    Incumbent {
        /// Request id.
        id: u64,
        /// The improving solver.
        solver: String,
        /// µs since race start.
        at_us: u64,
        /// The new best makespan.
        makespan: f64,
    },
    /// A cancelled solver overran its budget by `micros` µs before it
    /// observed the token.
    CancelLatency {
        /// Request id.
        id: u64,
        /// Solver name.
        solver: String,
        /// Budget expiry → solver return, µs.
        micros: u64,
    },
    /// The response line for request `id` was written.
    Respond {
        /// Request id.
        id: u64,
        /// Whether the response was a success (vs. an error line).
        ok: bool,
        /// Enqueue → response written, µs.
        total_us: u64,
    },
    /// A journal record was appended (and flushed per policy).
    JournalAppend {
        /// Session id.
        sid: u64,
        /// Record bytes written.
        bytes: u64,
        /// Append wall time including flush/fsync, µs.
        micros: u64,
        /// Whether the policy synced the file (`--durability fsync`).
        fsync: bool,
    },
    /// The group committer appended one coalesced batch of journal
    /// records (one write + one flush/fsync for the whole batch).
    JournalCommit {
        /// Records in the batch.
        batch: u64,
        /// Coalesced bytes written.
        bytes: u64,
        /// Batch write wall time including flush/fsync, µs.
        micros: u64,
        /// Whether the policy synced the file (`--durability fsync`).
        fsync: bool,
    },
    /// A session snapshot file was written.
    Snapshot {
        /// Session id.
        sid: u64,
        /// Write wall time, µs.
        micros: u64,
    },
    /// An LRU victim was spilled to its snapshot.
    Spill {
        /// Session id.
        sid: u64,
    },
    /// A cold (spilled) session was reloaded on touch.
    ColdReload {
        /// Session id.
        sid: u64,
    },
    /// Crash recovery finished at startup.
    Recovery {
        /// Live sessions rebuilt.
        sessions: u64,
        /// Snapshot files loaded.
        snapshots_loaded: u64,
        /// Journal records replayed.
        replayed: u64,
        /// Bytes of torn/corrupt journal suffix dropped.
        dropped_bytes: u64,
        /// Recovery wall time, µs.
        micros: u64,
    },
    /// The sink closed; `dropped` events were lost to ring overflow (0
    /// means the trace is complete).
    SinkClose {
        /// Events dropped over the sink's lifetime.
        dropped: u64,
    },
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // Always a JSON number with a decimal point, never an integer literal.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

impl TraceEvent {
    /// The event's `"event"` discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Decode { .. } => "decode",
            TraceEvent::RaceStart { .. } => "race_start",
            TraceEvent::SolverStart { .. } => "solver_start",
            TraceEvent::SolverEnd { .. } => "solver_end",
            TraceEvent::Incumbent { .. } => "incumbent",
            TraceEvent::CancelLatency { .. } => "cancel",
            TraceEvent::Respond { .. } => "respond",
            TraceEvent::JournalAppend { .. } => "journal_append",
            TraceEvent::JournalCommit { .. } => "journal_commit",
            TraceEvent::Snapshot { .. } => "snapshot",
            TraceEvent::Spill { .. } => "spill",
            TraceEvent::ColdReload { .. } => "cold_reload",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::SinkClose { .. } => "sink_close",
        }
    }

    /// Appends the event's one-line JSON encoding (no trailing newline)
    /// stamped with `ts_us` (µs since the sink's epoch).
    pub fn write_json(&self, ts_us: u64, out: &mut String) {
        let _ = write!(out, "{{\"ts_us\": {ts_us}, \"event\": \"{}\"", self.kind());
        let solver_field = |out: &mut String, solver: &str| {
            out.push_str(", \"solver\": \"");
            escape_into(out, solver);
            out.push('"');
        };
        match self {
            TraceEvent::Enqueue { id } => {
                let _ = write!(out, ", \"id\": {id}");
            }
            TraceEvent::Dequeue { id, worker, queue_wait_us } => {
                let _ = write!(
                    out,
                    ", \"id\": {id}, \"worker\": {worker}, \"queue_wait_us\": {queue_wait_us}"
                );
            }
            TraceEvent::Decode { id, codec, micros } => {
                let _ = write!(out, ", \"id\": {id}, \"codec\": \"");
                escape_into(out, codec);
                let _ = write!(out, "\", \"micros\": {micros}");
            }
            TraceEvent::RaceStart { id, members } => {
                let _ = write!(out, ", \"id\": {id}, \"members\": {members}");
            }
            TraceEvent::SolverStart { id, solver } => {
                let _ = write!(out, ", \"id\": {id}");
                solver_field(out, solver);
            }
            TraceEvent::SolverEnd { id, solver, outcome, micros, makespan } => {
                let _ = write!(out, ", \"id\": {id}");
                solver_field(out, solver);
                out.push_str(", \"outcome\": \"");
                escape_into(out, outcome);
                let _ = write!(out, "\", \"micros\": {micros}");
                if let Some(ms) = makespan {
                    out.push_str(", \"makespan\": ");
                    write_f64(out, *ms);
                }
            }
            TraceEvent::Incumbent { id, solver, at_us, makespan } => {
                let _ = write!(out, ", \"id\": {id}");
                solver_field(out, solver);
                let _ = write!(out, ", \"at_us\": {at_us}, \"makespan\": ");
                write_f64(out, *makespan);
            }
            TraceEvent::CancelLatency { id, solver, micros } => {
                let _ = write!(out, ", \"id\": {id}");
                solver_field(out, solver);
                let _ = write!(out, ", \"micros\": {micros}");
            }
            TraceEvent::Respond { id, ok, total_us } => {
                let _ = write!(out, ", \"id\": {id}, \"ok\": {ok}, \"total_us\": {total_us}");
            }
            TraceEvent::JournalAppend { sid, bytes, micros, fsync } => {
                let _ = write!(
                    out,
                    ", \"sid\": {sid}, \"bytes\": {bytes}, \"micros\": {micros}, \"fsync\": {fsync}"
                );
            }
            TraceEvent::JournalCommit { batch, bytes, micros, fsync } => {
                let _ = write!(
                    out,
                    ", \"batch\": {batch}, \"bytes\": {bytes}, \"micros\": {micros}, \
                     \"fsync\": {fsync}"
                );
            }
            TraceEvent::Snapshot { sid, micros } => {
                let _ = write!(out, ", \"sid\": {sid}, \"micros\": {micros}");
            }
            TraceEvent::Spill { sid } => {
                let _ = write!(out, ", \"sid\": {sid}");
            }
            TraceEvent::ColdReload { sid } => {
                let _ = write!(out, ", \"sid\": {sid}");
            }
            TraceEvent::Recovery {
                sessions,
                snapshots_loaded,
                replayed,
                dropped_bytes,
                micros,
            } => {
                let _ = write!(
                    out,
                    ", \"sessions\": {sessions}, \"snapshots_loaded\": {snapshots_loaded}, \
                     \"replayed\": {replayed}, \"dropped_bytes\": {dropped_bytes}, \
                     \"micros\": {micros}"
                );
            }
            TraceEvent::SinkClose { dropped } => {
                let _ = write!(out, ", \"dropped\": {dropped}");
            }
        }
        out.push('}');
    }
}

/// Ring capacity of a [`TraceSink`] unless overridden: deep enough to
/// absorb a burst of per-solver events while the writer thread drains,
/// small enough that a wedged writer bounds memory.
pub const DEFAULT_SINK_CAPACITY: usize = 8192;

struct SinkState {
    queue: VecDeque<String>,
    closed: bool,
}

struct SinkShared {
    state: Mutex<SinkState>,
    cv: Condvar,
    dropped: AtomicU64,
    epoch: Instant,
    capacity: usize,
}

/// A ring-buffered, non-blocking NDJSON trace-event writer. Cheap to
/// clone (all clones share one ring and writer thread); see the module
/// docs for the drop semantics.
#[derive(Clone)]
pub struct TraceSink {
    shared: Arc<SinkShared>,
    writer: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.shared.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceSink {
    /// A sink draining to `out` with the default ring capacity.
    pub fn to_writer(out: Box<dyn Write + Send>) -> TraceSink {
        TraceSink::with_capacity(out, DEFAULT_SINK_CAPACITY)
    }

    /// A sink draining to `out` with a bounded ring of `capacity` events;
    /// events emitted while the ring is full are dropped and counted.
    pub fn with_capacity(mut out: Box<dyn Write + Send>, capacity: usize) -> TraceSink {
        let shared = Arc::new(SinkShared {
            state: Mutex::named(
                "telemetry.sink.state",
                SinkState { queue: VecDeque::new(), closed: false },
            ),
            cv: Condvar::new(),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            capacity: capacity.max(1),
        });
        let writer_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let mut batch: Vec<String> = Vec::new();
            loop {
                {
                    let mut state = writer_shared.state.lock();
                    while state.queue.is_empty() && !state.closed {
                        writer_shared.cv.wait(&mut state);
                    }
                    if state.queue.is_empty() && state.closed {
                        break;
                    }
                    batch.extend(state.queue.drain(..));
                }
                for line in batch.drain(..) {
                    if out.write_all(line.as_bytes()).is_err() {
                        writer_shared.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = out.flush();
            }
            // The final event makes the trace self-describing: a reader
            // (and the CI smoke gate) checks `dropped` without access to
            // the producing process.
            let dropped = writer_shared.dropped.load(Ordering::Relaxed);
            let ts = writer_shared.epoch.elapsed().as_micros() as u64;
            let mut line = String::new();
            TraceEvent::SinkClose { dropped }.write_json(ts, &mut line);
            line.push('\n');
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        });
        TraceSink { shared, writer: Arc::new(Mutex::named("telemetry.sink.writer", Some(handle))) }
    }

    /// A sink appending to the file at `path` (created/truncated).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::to_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// A sink writing to the process's stderr.
    pub fn to_stderr() -> TraceSink {
        TraceSink::to_writer(Box::new(std::io::stderr()))
    }

    /// A sink draining into a shared in-memory buffer — the test harness
    /// shape (read the buffer after [`TraceSink::close`]).
    pub fn to_shared_buffer() -> (TraceSink, Arc<Mutex<Vec<u8>>>) {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::named("telemetry.test.buffer", Vec::new()));
        let sink = TraceSink::to_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        (sink, buf)
    }

    /// Emits one event: encodes it, stamps it with µs since the sink's
    /// epoch, and enqueues it. Never blocks on I/O; a full ring (or a
    /// closed sink) drops the event and increments the dropped counter.
    pub fn emit(&self, event: TraceEvent) {
        let ts = self.shared.epoch.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(96);
        event.write_json(ts, &mut line);
        line.push('\n');
        {
            let mut state = self.shared.state.lock();
            if state.closed || state.queue.len() >= self.shared.capacity {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            state.queue.push_back(line);
        }
        self.shared.cv.notify_one();
    }

    /// Events dropped so far (ring overflow or write failure).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Microseconds since the sink's epoch — the timestamp base of every
    /// event this sink emits.
    pub fn now_us(&self) -> u64 {
        self.shared.epoch.elapsed().as_micros() as u64
    }

    /// Closes the sink: stops accepting events, drains the ring, writes
    /// the final `sink_close` event and joins the writer thread.
    /// Idempotent; safe to call from any clone.
    pub fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            state.closed = true;
        }
        self.shared.cv.notify_all();
        let handle = self.writer.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// The two telemetry halves bundled for threading through the service:
/// one shared registry plus an optional trace sink. Cloning shares both.
/// [`Telemetry::disabled`] gives the no-op shape for benches and tests
/// that opt out — `emit` on it is a branch and nothing else.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    trace: Option<TraceSink>,
}

impl Telemetry {
    /// A fresh registry, tracing into `trace` when given.
    pub fn new(trace: Option<TraceSink>) -> Telemetry {
        Telemetry { registry: Arc::new(MetricsRegistry::new()), trace }
    }

    /// A registry with no trace sink (metrics still work; `emit` no-ops).
    pub fn disabled() -> Telemetry {
        Telemetry::new(None)
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace sink, when tracing is on.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Emits a trace event when tracing is on; no-op otherwise.
    pub fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.emit(event);
        }
    }

    /// Records `value` into the histogram named `name`. Convenience for
    /// cold paths; hot paths should resolve the `Arc<Histogram>` once.
    pub fn record(&self, name: &str, value: u64) {
        self.registry.histogram(name).record(value);
    }

    /// Increments the counter named `name`. Convenience for cold paths.
    pub fn incr(&self, name: &str) {
        self.registry.counter(name).incr();
    }

    /// Trace events dropped so far (0 when tracing is off).
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// Closes the trace sink, flushing buffered events (no-op when off).
    pub fn close_trace(&self) {
        if let Some(sink) = &self.trace {
            sink.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_instruments_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests.ok");
        let b = reg.counter("requests.ok");
        a.incr();
        b.add(2);
        assert_eq!(reg.counter("requests.ok").get(), 3);
        reg.gauge("pool.queued").set(7);
        assert_eq!(reg.gauge("pool.queued").get(), 7);
        let h = reg.histogram(stage::RACE_US);
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests.ok"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauges, vec![("pool.queued".to_string(), 7)]);
        let hist = snap.histogram(stage::RACE_US).expect("recorded");
        assert_eq!(hist.count(), 2);
        assert!(snap.histogram("absent").is_none());
    }

    #[test]
    fn histogram_merge_aggregates_workers() {
        let reg = MetricsRegistry::new();
        let total = reg.histogram("stage.total_us");
        let mut local = LatencyHistogram::new();
        local.record(10);
        local.record(1000);
        total.merge(&local);
        total.record(50);
        assert_eq!(total.snapshot().count(), 3);
    }

    #[test]
    fn sink_writes_ndjson_and_appends_sink_close() {
        let (sink, buf) = TraceSink::to_shared_buffer();
        sink.emit(TraceEvent::Enqueue { id: 1 });
        sink.emit(TraceEvent::Dequeue { id: 1, worker: 0, queue_wait_us: 42 });
        sink.emit(TraceEvent::Respond { id: 1, ok: true, total_us: 99 });
        sink.close();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"event\": \"enqueue\"") && lines[0].contains("\"id\": 1"));
        assert!(lines[1].contains("\"queue_wait_us\": 42"));
        assert!(lines[2].contains("\"ok\": true"));
        assert!(lines[3].contains("\"event\": \"sink_close\""));
        assert!(lines[3].contains("\"dropped\": 0"));
        // Emitting after close is counted, not lost silently.
        sink.emit(TraceEvent::Enqueue { id: 2 });
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        // A writer that never completes a write: the ring must fill, then
        // drop, and `close` must still terminate (write errors are not
        // retried forever).
        struct Blackhole;
        impl Write for Blackhole {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("down"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = TraceSink::with_capacity(Box::new(Blackhole), 4);
        for id in 0..64 {
            sink.emit(TraceEvent::Enqueue { id });
        }
        sink.close();
        assert!(sink.dropped() > 0, "overflow must be counted");
    }

    #[test]
    fn timestamps_are_monotone_per_sink() {
        let (sink, buf) = TraceSink::to_shared_buffer();
        for id in 0..16 {
            sink.emit(TraceEvent::Enqueue { id });
        }
        sink.close();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let ts: Vec<u64> = text
            .lines()
            .map(|l| {
                let rest = l.strip_prefix("{\"ts_us\": ").expect("schema prefix");
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn event_encoding_escapes_strings_and_formats_floats() {
        let mut out = String::new();
        TraceEvent::SolverEnd {
            id: 3,
            solver: "a\"b\\c".into(),
            outcome: "completed".into(),
            micros: 12,
            makespan: Some(151.0),
        }
        .write_json(0, &mut out);
        assert!(out.contains("\"solver\": \"a\\\"b\\\\c\""), "{out}");
        assert!(out.contains("\"makespan\": 151.0"), "floats keep a decimal point: {out}");
        let mut out = String::new();
        TraceEvent::SolverEnd {
            id: 3,
            solver: "x".into(),
            outcome: "cancelled".into(),
            micros: 5,
            makespan: None,
        }
        .write_json(7, &mut out);
        assert!(!out.contains("makespan"), "absent optional fields are omitted: {out}");
        assert!(out.starts_with("{\"ts_us\": 7, \"event\": \"solver_end\""), "{out}");
    }

    #[test]
    fn disabled_telemetry_is_a_noop_but_metrics_work() {
        let t = Telemetry::disabled();
        t.emit(TraceEvent::Enqueue { id: 1 });
        assert_eq!(t.trace_dropped(), 0);
        t.incr("requests.ok");
        t.record(stage::RACE_US, 10);
        let snap = t.registry().snapshot();
        assert_eq!(snap.counter("requests.ok"), 1);
        assert_eq!(snap.histogram(stage::RACE_US).unwrap().count(), 1);
        t.close_trace();
    }
}
