//! Cooperative cancellation: a shared flag + optional deadline that turns
//! every solver into an *anytime* solver.
//!
//! The portfolio service races several solvers against a per-request time
//! budget; when the budget expires each solver must return its best-so-far
//! answer instead of running to completion. The contract is cooperative:
//! hot loops poll [`CancelToken::is_cancelled`] every few hundred to few
//! thousand iterations (one "check interval"), so a cancelled solver
//! overshoots its deadline by at most one interval — never by an unbounded
//! amount.
//!
//! A token is cheap to clone (one `Arc`); `is_cancelled` is a relaxed
//! atomic load plus, when a deadline is set, one `Instant::now()` call —
//! callers amortize that by checking every [`SUGGESTED_CHECK_INTERVAL`]
//! iterations rather than every iteration.
//!
//! ```
//! use sst_core::cancel::CancelToken;
//!
//! let token = CancelToken::new();
//! assert!(!token.is_cancelled());
//! token.cancel();
//! assert!(token.is_cancelled());
//!
//! // Deadline-based tokens expire on their own.
//! let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
//! assert!(expired.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in loop iterations) hot loops are expected to poll the token.
/// A power of two so the check compiles to a mask test.
pub const SUGGESTED_CHECK_INTERVAL: u64 = 1024;

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    /// Immutable after construction; `None` means "no deadline".
    deadline: Option<Instant>,
}

/// A cloneable cancellation token: explicit [`CancelToken::cancel`] or an
/// optional construction-time deadline, whichever fires first.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`Self::cancel`].
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that auto-cancels `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// A token that auto-cancels at `deadline`.
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`Self::cancel`] was called or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time left until the deadline (`None` when no deadline is set; zero
    /// once it passed). Lets callers size internal budgets — e.g. splitting
    /// the remainder between an LP solve and the rounding loop.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        assert_eq!(a.remaining(), None);
        a.cancel();
        assert!(b.is_cancelled(), "cancel must propagate to clones");
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3599));
    }
}
