//! Placeholder replacement for small jobs.
//!
//! Both Lemma 2.1 (LPT bootstrap: jobs smaller than their class's setup are
//! replaced by placeholders of size `s_k`) and simplification step 2
//! (Lemma 2.3: jobs of size `≤ ε·s_k` are replaced by placeholders of size
//! `ε·s_k`) use the same construction: per class, remove all jobs below a
//! threshold and insert `⌈(Σ removed sizes) / unit⌉` placeholder jobs of size
//! `unit`. This module implements the transformation and the greedy
//! back-mapping of the lemmas' proofs: removed jobs are refilled into the
//! machines hosting that class's placeholders, over-packing each machine by
//! at most one job per class.

use crate::instance::{ClassId, Job, JobId, MachineId, UniformInstance};
use crate::schedule::Schedule;

/// Records how an instance was transformed so schedules can be mapped back.
#[derive(Debug, Clone)]
pub struct PlaceholderMap {
    /// `kept[j'] = j`: job `j'` of the transformed instance is original job `j`.
    /// Placeholder jobs (appended after all kept jobs) are not listed.
    kept: Vec<JobId>,
    /// Per class: the original job ids that were removed (ascending by id).
    removed: Vec<Vec<JobId>>,
    /// Per class: the placeholder unit size used (0 if none inserted).
    unit: Vec<u64>,
    /// Number of jobs in the *original* instance.
    original_n: usize,
}

impl PlaceholderMap {
    /// Original id of transformed job `j'`, or `None` for placeholders.
    pub fn original_of(&self, j_new: JobId) -> Option<JobId> {
        self.kept.get(j_new).copied()
    }

    /// Number of kept (non-placeholder) jobs in the transformed instance.
    pub fn num_kept(&self) -> usize {
        self.kept.len()
    }

    /// Original job ids removed from class `k` (ascending).
    pub fn removed_of_class(&self, k: ClassId) -> &[JobId] {
        &self.removed[k]
    }
}

/// Applies placeholder replacement. For each class `k`, jobs with size
/// `< threshold(k)` are removed and `max(1, ⌈Σ/unit(k)⌉)` placeholders of
/// size `unit(k)` are appended (at least one, so classes consisting solely of
/// zero-size jobs still get a host machine paying their setup).
///
/// `unit(k)` must be positive for any class that has a removed job.
pub fn replace_small_jobs(
    inst: &UniformInstance,
    threshold: impl Fn(ClassId) -> u64,
    unit: impl Fn(ClassId) -> u64,
) -> (UniformInstance, PlaceholderMap) {
    let kk = inst.num_classes();
    let mut kept_jobs: Vec<Job> = Vec::with_capacity(inst.n());
    let mut kept: Vec<JobId> = Vec::with_capacity(inst.n());
    let mut removed: Vec<Vec<JobId>> = vec![Vec::new(); kk];
    let mut removed_size: Vec<u64> = vec![0; kk];
    for j in 0..inst.n() {
        let job = inst.job(j);
        if job.size < threshold(job.class) {
            removed[job.class].push(j);
            removed_size[job.class] += job.size;
        } else {
            kept.push(j);
            kept_jobs.push(job);
        }
    }
    let mut unit_used = vec![0u64; kk];
    for k in 0..kk {
        if removed[k].is_empty() {
            continue;
        }
        let u = unit(k);
        assert!(u > 0, "placeholder unit for class {k} must be positive");
        unit_used[k] = u;
        let count = (removed_size[k].div_ceil(u)).max(1);
        for _ in 0..count {
            kept_jobs.push(Job::new(k, u));
        }
    }
    let new_inst = UniformInstance::new(inst.speeds().to_vec(), inst.setups().to_vec(), kept_jobs)
        .expect("transformed instance inherits validity");
    (new_inst, PlaceholderMap { kept, removed, unit: unit_used, original_n: inst.n() })
}

/// Maps a schedule of the transformed instance back to the original
/// instance (the greedy refill of Lemmas 2.1/2.3).
///
/// Kept jobs keep their machines. For each class, the machines hosting its
/// placeholders are treated as bins of capacity `(#placeholders)·unit`; the
/// removed jobs are poured into those bins in order, moving to the next bin
/// once the current one's capacity is reached — so each bin overflows by
/// less than one job.
pub fn map_schedule_back(
    map: &PlaceholderMap,
    transformed: &UniformInstance,
    sched: &Schedule,
    original: &UniformInstance,
) -> Schedule {
    assert_eq!(sched.n(), transformed.n(), "schedule/instance mismatch");
    let mut assignment: Vec<MachineId> = vec![usize::MAX; map.original_n];
    for (j_new, &j_orig) in map.kept.iter().enumerate() {
        assignment[j_orig] = sched.machine_of(j_new);
    }
    // Capacity per (class, machine) contributed by placeholders.
    let kk = transformed.num_classes();
    let mut capacity: Vec<std::collections::BTreeMap<MachineId, u64>> =
        vec![std::collections::BTreeMap::new(); kk];
    for j_new in map.kept.len()..transformed.n() {
        let job = transformed.job(j_new);
        let i = sched.machine_of(j_new);
        *capacity[job.class].entry(i).or_insert(0) += job.size;
    }
    for k in 0..kk {
        if map.removed[k].is_empty() {
            continue;
        }
        let bins: Vec<(MachineId, u64)> = capacity[k].iter().map(|(&i, &c)| (i, c)).collect();
        assert!(!bins.is_empty(), "class {k} has removed jobs but no placeholder was scheduled");
        let mut bin = 0usize;
        let mut used: u64 = 0;
        for &j in &map.removed[k] {
            // Advance past bins that are already full. The last bin takes
            // whatever remains: total removed size ≤ total capacity by
            // construction of the placeholder count (up to the final job
            // overflow the lemmas budget for).
            while bin + 1 < bins.len() && used >= bins[bin].1 {
                bin += 1;
                used = 0;
            }
            assignment[j] = bins[bin].0;
            used += original.job(j).size;
        }
        let _ = map.unit[k];
    }
    debug_assert!(assignment.iter().all(|&i| i != usize::MAX));
    Schedule::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::uniform_loads;

    fn inst() -> UniformInstance {
        // class 0: setup 10, jobs 12, 3, 4 (3 and 4 are "small" for threshold 10)
        // class 1: setup 6, jobs 2, 2, 2 (all small)
        UniformInstance::new(
            vec![1, 1],
            vec![10, 6],
            vec![
                Job::new(0, 12),
                Job::new(0, 3),
                Job::new(0, 4),
                Job::new(1, 2),
                Job::new(1, 2),
                Job::new(1, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn replacement_counts_and_sizes() {
        let (t, map) = replace_small_jobs(&inst(), |k| [10, 6][k], |k| [10, 6][k]);
        // class 0: removed 3+4=7 → ⌈7/10⌉ = 1 placeholder of size 10.
        // class 1: removed 6 → ⌈6/6⌉ = 1 placeholder of size 6.
        assert_eq!(t.n(), 1 + 2);
        assert_eq!(map.num_kept(), 1);
        assert_eq!(map.original_of(0), Some(0));
        assert_eq!(map.original_of(1), None);
        assert_eq!(map.removed_of_class(0), &[1, 2]);
        let ph: Vec<_> = (1..t.n()).map(|j| t.job(j)).collect();
        assert_eq!(ph, vec![Job::new(0, 10), Job::new(1, 6)]);
    }

    #[test]
    fn zero_size_class_still_gets_a_placeholder() {
        let i = UniformInstance::new(vec![1], vec![5], vec![Job::new(0, 0)]).unwrap();
        let (t, _map) = replace_small_jobs(&i, |_| 5, |_| 5);
        assert_eq!(t.n(), 1); // one placeholder even though Σ removed = 0
        assert_eq!(t.job(0), Job::new(0, 5));
    }

    #[test]
    fn back_mapping_preserves_kept_jobs_and_fills_removed() {
        let original = inst();
        let (t, map) = replace_small_jobs(&original, |k| [10, 6][k], |k| [10, 6][k]);
        // t jobs: [0]=orig 0 (class0,12), [1]=ph class0 size10, [2]=ph class1 size6
        let sched_t = Schedule::new(vec![0, 1, 1]);
        let back = map_schedule_back(&map, &t, &sched_t, &original);
        assert_eq!(back.machine_of(0), 0); // kept job follows its machine
        for j in [1, 2, 3, 4, 5] {
            assert_eq!(back.machine_of(j), 1); // removed jobs go to placeholder hosts
        }
        // Load accounting: machine 1 carries 3+4+2+2+2 = 13 + setups 10+6 = 29;
        // transformed machine 1 carried 10+6 + setups 16 = 32 ≥ refilled work.
        let loads = uniform_loads(&original, &back).unwrap();
        assert_eq!(loads[1], 29);
    }

    #[test]
    fn back_mapping_splits_across_multiple_placeholder_hosts() {
        // 6 small unit jobs, unit 2 → 3 placeholders; place them on 3 machines.
        let original =
            UniformInstance::new(vec![1, 1, 1], vec![2], (0..6).map(|_| Job::new(0, 1)).collect())
                .unwrap();
        let (t, map) = replace_small_jobs(&original, |_| 2, |_| 2);
        assert_eq!(t.n(), 3);
        let sched_t = Schedule::new(vec![0, 1, 2]);
        let back = map_schedule_back(&map, &t, &sched_t, &original);
        let loads = uniform_loads(&original, &back).unwrap();
        // Each machine gets exactly 2 unit jobs + setup 2 → load 4.
        assert_eq!(loads, vec![4, 4, 4]);
    }

    #[test]
    fn no_small_jobs_is_identity() {
        let original = inst();
        let (t, map) = replace_small_jobs(&original, |_| 0, |_| 1);
        assert_eq!(t.n(), original.n());
        assert_eq!(map.num_kept(), original.n());
        let sched = Schedule::new(vec![0, 1, 0, 1, 0, 1]);
        let back = map_schedule_back(&map, &t, &sched, &original);
        assert_eq!(back, sched);
    }
}
