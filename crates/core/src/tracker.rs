//! Incremental load tracking: `O(1)`/`O(log m)` move evaluation for search
//! heuristics, written **once** against [`crate::model::MachineModel`].
//!
//! The full-recompute evaluators in [`crate::schedule`] walk all `n` jobs
//! for every makespan query, which makes one local-search sweep
//! `O(n² · m)`. [`LoadTracker`] maintains, per machine:
//!
//! * the current **load** in the model's raw units (time units on
//!   unrelated machines; work units on uniform ones),
//! * a per-machine × per-class **job count** (so a move knows in `O(1)`
//!   whether it adds a setup on the target / removes one from the source),
//! * the per-machine × per-class **time sum** (whole-class moves know the
//!   departing work in `O(1)`),
//! * the **job list** per (machine, class) slot (swap-remove `O(1)`
//!   membership; enumerating a batch costs its size, not `n`),
//!
//! plus one ordered **load multiset** over machines keyed by
//! [`MachineModel::Key`], so the makespan — and the makespan *after a
//! hypothetical move* — is an `O(log m)` query instead of an `O(n)`
//! recompute.
//!
//! ## Complexity
//!
//! | operation | [`UniformLoadTracker`] | [`UnrelatedLoadTracker`] / [`SplittableLoadTracker`] |
//! |---|---|---|
//! | `new` | `O(n + m + K)` | `O(n + m + K)` |
//! | `makespan` | `O(1)`* | `O(1)`* |
//! | `eval_job_move` | `O(log m)` | `O(log m)` |
//! | `apply_job_move` | `O(log m)` | `O(log m)` |
//! | `eval_class_move` | `O(log m)` | `O(B + log m)` |
//! | `apply_class_move` | `O(B + log m)` | `O(B + log m)` |
//! | `insert_job` / `remove_job` | `O(log m)` | `O(log m)` |
//! | `retime_job` | `O(log m)`† | `O(log m)`† |
//! | `retime_setup` | `O(H log m)`† | `O(H log m)`† |
//! | `add_class` | `O(m)` | `O(m)` |
//!
//! ## Structural edits
//!
//! A tracker can additionally be **repaired in place** after instance
//! deltas ([`crate::delta::InstanceDelta`]) instead of being rebuilt:
//! `insert_job_greedy` / `remove_job` / `retime_job` / `retime_setup` /
//! `add_class` mirror the edits in the bookkeeping. The methods are
//! *value-based*: incoming times arrive as per-machine accessors (the
//! delta payloads layered over the pre-batch instance — see
//! `sst_algos::repair`) and outgoing contributions come from the
//! tracker's own caches (per-job raw times, per-slot charged setups), so
//! a whole delta batch repairs without materializing one intermediate
//! instance; `rebind` then re-attaches the batch-applied instance for
//! further move evaluation. The slot table is laid out class-major
//! (`slots[k * m + i]`) precisely so `add_class` appends `m` fresh slots
//! without invalidating an index, and job removal uses the same
//! swap-remove renaming the delta applies to the instance. († jobs or
//! whole slots whose new time is infinite are evicted and greedily
//! re-placed at `O(m + log m)` each; `H` = machines hosting the class.)
//!
//! `B` = number of jobs of the moved class on the source machine. (*) the
//! multiset keeps its maximum at the back of a B-tree; the query touches
//! `O(log m)` nodes but performs no recomputation. Models without
//! machine-independent times ([`MachineModel::MACHINE_INDEPENDENT_TIMES`]
//! false) pay `O(B)` in `eval_class_move` because the arriving work
//! `Σ_{j∈batch} p_{to,j}` depends on both endpoints and cannot be cached
//! for all machine pairs in `o(m²K)` space; machine-independent models
//! reuse the cached per-slot sum on both ends.
//!
//! Loads are tracked with plain (non-saturating) arithmetic; instances whose
//! total work approaches `u64::MAX` are outside the tracker's contract (the
//! full evaluators saturate instead). All candidate moves must be *feasible*
//! — finite processing and setup times on the target — and the `eval_*`
//! methods return `None` otherwise, so a tracked schedule can never become
//! invalid.
//!
//! ```
//! use sst_core::instance::{Job, UniformInstance};
//! use sst_core::schedule::Schedule;
//! use sst_core::tracker::UniformLoadTracker;
//!
//! let inst = UniformInstance::identical(
//!     2,
//!     vec![1],
//!     vec![Job::new(0, 4), Job::new(0, 6)],
//! ).unwrap();
//! let mut t = UniformLoadTracker::new(&inst, &Schedule::new(vec![0, 0])).unwrap();
//! // Moving job 1 to machine 1 pays a second setup but halves the bottleneck.
//! let new_ms = t.eval_job_move(1, 1).unwrap();
//! assert!(new_ms < t.makespan());
//! t.apply_job_move(1, 1);
//! assert_eq!(t.makespan(), new_ms);
//! ```

use std::collections::BTreeSet;
use std::marker::PhantomData;

use crate::error::ScheduleError;
use crate::instance::{ClassId, JobId, MachineId};
use crate::model::{MachineModel, Splittable, Uniform, Unrelated};
use crate::schedule::Schedule;

/// Ordered set of per-machine `(load key, machine id)` entries with
/// `O(log m)` insert/remove, max queries that can *exclude* up to two
/// current entries (the two endpoints of a hypothetical move), and — because
/// every entry carries its machine id — an `O(log m)` argmax: the machine
/// attaining the maximum falls out of the same lookup that answers the
/// makespan.
///
/// Entries are unique (one per machine), so this is a plain `BTreeSet`
/// rather than a counted multiset; ties on the load key order by machine id,
/// making `max()` deterministically the *highest-numbered* machine among the
/// tied ones.
#[derive(Debug, Clone)]
struct LoadMultiset<K: Ord + Copy> {
    set: BTreeSet<(K, u32)>,
}

impl<K: Ord + Copy> LoadMultiset<K> {
    fn new() -> Self {
        LoadMultiset { set: BTreeSet::new() }
    }

    fn insert(&mut self, key: K, machine: MachineId) {
        let fresh = self.set.insert((key, machine as u32));
        debug_assert!(fresh, "LoadMultiset::insert of duplicate machine entry");
    }

    fn remove(&mut self, key: K, machine: MachineId) {
        let found = self.set.remove(&(key, machine as u32));
        debug_assert!(found, "LoadMultiset::remove of absent entry");
    }

    /// The maximum `(load, machine)` entry, in `O(log m)`.
    fn max_entry(&self) -> Option<(K, MachineId)> {
        self.set.iter().next_back().map(|&(k, i)| (k, i as MachineId))
    }

    /// Maximum load key after conceptually removing the entries of the
    /// machines in `excluded`. Walks at most `excluded.len() + 1` entries
    /// from the back.
    fn max_excluding(&self, excluded: &[MachineId]) -> Option<K> {
        self.set
            .iter()
            .rev()
            .find(|&&(_, i)| !excluded.contains(&(i as MachineId)))
            .map(|&(k, _)| k)
    }
}

/// One (machine, class) slot: the jobs of that class currently on that
/// machine, in arbitrary but deterministic order (swap-remove).
#[derive(Debug, Clone, Default)]
struct Slot {
    jobs: Vec<JobId>,
}

/// Per-(machine × class) bookkeeping, shared by every machine model.
///
/// The slot arrays are laid out **class-major** (`slots[k * m + i]`), not
/// machine-major: appending a class ([`SlotTable::grow_class`], the
/// [`crate::delta::InstanceDelta::AddClass`] structural edit) then extends
/// the arrays by `m` fresh slots at the end without disturbing a single
/// existing index, so a live tracker absorbs the edit in `O(m)` instead of
/// being rebuilt. `pos` grows/shrinks with the job population the same way
/// (append on insert, swap-remove on removal).
#[derive(Debug, Clone)]
struct SlotTable {
    m: usize,
    num_classes: usize,
    /// `slots[k * m + i]` — jobs of class `k` on machine `i`.
    slots: Vec<Slot>,
    /// `pos[j]` — index of job `j` inside its slot's `jobs` vector.
    pos: Vec<u32>,
    /// `ptime_sum[k * m + i]` — Σ raw time (or size) units of the slot.
    ptime_sum: Vec<u64>,
    /// `setup_charge[k * m + i]` — the setup units currently included in
    /// machine `i`'s load for class `k` (meaningful while the slot is
    /// non-empty). Cached so structural edits can refund or adjust a
    /// setup without consulting an instance that may already have been
    /// edited past it.
    setup_charge: Vec<u64>,
}

impl SlotTable {
    fn new(m: usize, num_classes: usize, n: usize) -> Self {
        SlotTable {
            m,
            num_classes,
            slots: vec![Slot::default(); m * num_classes],
            pos: vec![0; n],
            ptime_sum: vec![0; m * num_classes],
            setup_charge: vec![0; m * num_classes],
        }
    }

    #[inline]
    fn idx(&self, i: MachineId, k: ClassId) -> usize {
        k * self.m + i
    }

    #[inline]
    fn charge(&self, i: MachineId, k: ClassId) -> u64 {
        self.setup_charge[self.idx(i, k)]
    }

    #[inline]
    fn set_charge(&mut self, i: MachineId, k: ClassId, s: u64) {
        let idx = self.idx(i, k);
        self.setup_charge[idx] = s;
    }

    /// Appends one empty class: `m` fresh slots at the back, every
    /// existing index untouched (class-major layout).
    fn grow_class(&mut self) {
        self.num_classes += 1;
        self.slots.resize(self.num_classes * self.m, Slot::default());
        self.ptime_sum.resize(self.num_classes * self.m, 0);
        self.setup_charge.resize(self.num_classes * self.m, 0);
    }

    #[inline]
    fn count(&self, i: MachineId, k: ClassId) -> usize {
        self.slots[self.idx(i, k)].jobs.len()
    }

    #[inline]
    fn jobs(&self, i: MachineId, k: ClassId) -> &[JobId] {
        &self.slots[self.idx(i, k)].jobs
    }

    #[inline]
    fn ptime_sum(&self, i: MachineId, k: ClassId) -> u64 {
        self.ptime_sum[self.idx(i, k)]
    }

    fn push(&mut self, i: MachineId, k: ClassId, j: JobId, p: u64) {
        let idx = self.idx(i, k);
        self.pos[j] = self.slots[idx].jobs.len() as u32;
        self.slots[idx].jobs.push(j);
        self.ptime_sum[idx] += p;
    }

    fn remove(&mut self, i: MachineId, k: ClassId, j: JobId, p: u64) {
        let idx = self.idx(i, k);
        let at = self.pos[j] as usize;
        let jobs = &mut self.slots[idx].jobs;
        let last = jobs.pop().expect("slot not empty");
        if last != j {
            jobs[at] = last;
            self.pos[last] = at as u32;
        }
        self.ptime_sum[idx] -= p;
    }

    /// Moves the whole slot `(from, k)` onto `(to, k)`. `arriving` is the
    /// time sum of the batch measured on `to`.
    fn drain_slot(&mut self, from: MachineId, k: ClassId, to: MachineId, arriving: u64) {
        let from_idx = self.idx(from, k);
        let to_idx = self.idx(to, k);
        let batch = std::mem::take(&mut self.slots[from_idx].jobs);
        let base = self.slots[to_idx].jobs.len();
        for (off, &j) in batch.iter().enumerate() {
            self.pos[j] = (base + off) as u32;
        }
        self.slots[to_idx].jobs.extend_from_slice(&batch);
        // Reuse the drained allocation so steady-state churn allocates
        // nothing.
        self.slots[from_idx].jobs = batch;
        self.slots[from_idx].jobs.clear();
        self.ptime_sum[to_idx] += arriving;
        self.ptime_sum[from_idx] = 0;
    }
}

fn validate_shape(assignment: &[MachineId], n: usize, m: usize) -> Result<(), ScheduleError> {
    if assignment.len() != n {
        return Err(ScheduleError::WrongLength { expected: n, got: assignment.len() });
    }
    for (j, &i) in assignment.iter().enumerate() {
        if i >= m {
            return Err(ScheduleError::MachineOutOfRange { job: j, machine: i, m });
        }
    }
    Ok(())
}

/// The incremental load tracker, generic over the machine model.
///
/// See the [module docs](self) for the data structures and complexity
/// table. [`UniformLoadTracker`], [`UnrelatedLoadTracker`] and
/// [`SplittableLoadTracker`] are the per-model aliases; every model gets
/// this implementation by implementing
/// [`MachineModel`](crate::model::MachineModel) — nothing here is
/// per-model code.
#[derive(Debug, Clone)]
pub struct LoadTracker<'a, M: MachineModel> {
    inst: &'a M::Instance,
    assignment: Vec<MachineId>,
    /// Raw per-machine loads in the model's load units.
    loads: Vec<u64>,
    /// Raw units job `j` currently contributes to its machine's load.
    /// Cached (and maintained by every move and structural edit) so the
    /// outgoing side of an edit never consults the instance — which,
    /// mid-delta-batch, may already describe a later state.
    job_times: Vec<u64>,
    /// Class of job `j`, maintained through swap-remove renames.
    job_class: Vec<ClassId>,
    table: SlotTable,
    multiset: LoadMultiset<M::Key>,
    _model: PhantomData<M>,
}

/// Incremental tracker for [`crate::instance::UniformInstance`] schedules.
/// Loads are tracked in *work* units (`Σ p_j + Σ s_k`); the makespan
/// multiset is keyed by the exact [`crate::ratio::Ratio`] `work_i / v_i`.
/// Because sizes are machine-independent, *both* `eval_job_move` and
/// `eval_class_move` are `O(log m)`.
pub type UniformLoadTracker<'a> = LoadTracker<'a, Uniform>;

/// Incremental tracker for [`crate::instance::UnrelatedInstance`]
/// schedules (loads in time units, `∞` cells rejected as infeasible).
pub type UnrelatedLoadTracker<'a> = LoadTracker<'a, Unrelated>;

/// Incremental tracker for the integral sub-space of the splittable model
/// (see [`crate::model::Splittable`]): job-granular split schedules
/// evaluate exactly like unrelated schedules, so the splittable descent
/// reuses the whole tracker machinery.
pub type SplittableLoadTracker<'a> = LoadTracker<'a, Splittable>;

impl<'a, M: MachineModel> LoadTracker<'a, M> {
    /// Builds the tracker from a valid schedule in `O(n + m + K)`.
    ///
    /// Fails (like the full-recompute evaluators) if the schedule has the
    /// wrong shape or assigns a job/setup where its time is infinite.
    pub fn new(inst: &'a M::Instance, sched: &Schedule) -> Result<Self, ScheduleError> {
        let (n, m, kk) = (M::n(inst), M::m(inst), M::num_classes(inst));
        validate_shape(sched.assignment(), n, m)?;
        let assignment = sched.assignment().to_vec();
        let mut loads = vec![0u64; m];
        let mut table = SlotTable::new(m, kk, n);
        let mut job_times = vec![0u64; n];
        let mut job_class = vec![0usize; n];
        for (j, &i) in assignment.iter().enumerate() {
            let p = M::job_time(inst, i, j)
                .ok_or(ScheduleError::InfiniteProcessingTime { job: j, machine: i })?;
            let k = M::class_of(inst, j);
            if table.count(i, k) == 0 {
                let s = M::setup_time(inst, i, k)
                    .ok_or(ScheduleError::InfiniteSetup { class: k, machine: i })?;
                loads[i] += s;
                table.set_charge(i, k, s);
            }
            loads[i] += p;
            table.push(i, k, j, p);
            job_times[j] = p;
            job_class[j] = k;
        }
        let mut multiset = LoadMultiset::new();
        for (i, &l) in loads.iter().enumerate() {
            multiset.insert(M::key(inst, i, l), i);
        }
        Ok(LoadTracker {
            inst,
            assignment,
            loads,
            job_times,
            job_class,
            table,
            multiset,
            _model: PhantomData,
        })
    }

    /// The instance this tracker evaluates against.
    #[inline]
    pub fn instance(&self) -> &'a M::Instance {
        self.inst
    }

    /// Current per-machine loads in the model's raw units (time units for
    /// unrelated machines; work units — divide by `v_i` for time — on
    /// uniform ones).
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Current makespan, in the model's key arithmetic.
    #[inline]
    pub fn makespan(&self) -> M::Key {
        self.multiset.max_entry().map(|(l, _)| l).unwrap_or_else(M::zero_key)
    }

    /// Machine currently holding job `j`.
    #[inline]
    pub fn machine_of(&self, j: JobId) -> MachineId {
        self.assignment[j]
    }

    /// Class of job `j` per the tracker's own bookkeeping (tracks
    /// swap-remove renames through structural edits, unlike the possibly
    /// pre-batch bound instance).
    #[inline]
    pub fn class_of_job(&self, j: JobId) -> ClassId {
        self.job_class[j]
    }

    /// Number of class-`k` jobs on machine `i`.
    #[inline]
    pub fn count(&self, i: MachineId, k: ClassId) -> usize {
        self.table.count(i, k)
    }

    /// Jobs of class `k` on machine `i` (deterministic order, no allocation).
    #[inline]
    pub fn jobs_of_class_on(&self, i: MachineId, k: ClassId) -> &[JobId] {
        self.table.jobs(i, k)
    }

    /// A machine attaining the current makespan, in `O(log m)` (the load
    /// multiset carries machine ids, so the argmax is the same B-tree probe
    /// as the max).
    pub fn bottleneck(&self) -> MachineId {
        self.multiset.max_entry().expect("non-empty by construction").1
    }

    /// The tracked assignment as a [`Schedule`].
    pub fn schedule(&self) -> Schedule {
        Schedule::new(self.assignment.clone())
    }

    #[inline]
    fn key(&self, i: MachineId, load: u64) -> M::Key {
        M::key(self.inst, i, load)
    }

    /// New `(load_from, load_to)` if job `j` moved to `to`; `None` when the
    /// move is a no-op or infeasible (infinite time on `to`). The outgoing
    /// side reads the tracker's own caches; only the hypothetical target
    /// consults the instance.
    #[inline]
    fn job_move_loads(&self, j: JobId, to: MachineId) -> Option<(u64, u64)> {
        let from = self.assignment[j];
        if from == to {
            return None;
        }
        let p_to = M::job_time(self.inst, to, j)?;
        let k = self.job_class[j];
        let s_to = M::setup_time(self.inst, to, k)?;
        let mut new_from = self.loads[from] - self.job_times[j];
        if self.table.count(from, k) == 1 {
            new_from -= self.table.charge(from, k);
        }
        let mut new_to = self.loads[to] + p_to;
        if self.table.count(to, k) == 0 {
            new_to += s_to;
        }
        Some((new_from, new_to))
    }

    /// Makespan after moving job `j` to machine `to`, in `O(log m)`, without
    /// mutating anything. `None` if the move is a no-op or infeasible.
    pub fn eval_job_move(&self, j: JobId, to: MachineId) -> Option<M::Key> {
        let from = self.assignment[j];
        let (new_from, new_to) = self.job_move_loads(j, to)?;
        let rest = self.multiset.max_excluding(&[from, to]).unwrap_or_else(M::zero_key);
        Some(rest.max(self.key(from, new_from)).max(self.key(to, new_to)))
    }

    /// Applies a feasible job move in `O(log m)`.
    ///
    /// # Panics
    /// Panics if the move is a no-op or infeasible (check with
    /// [`Self::eval_job_move`] first).
    pub fn apply_job_move(&mut self, j: JobId, to: MachineId) {
        let from = self.assignment[j];
        let (new_from, new_to) =
            self.job_move_loads(j, to).expect("apply_job_move: infeasible or no-op move");
        let k = self.job_class[j];
        let p_to = M::job_time(self.inst, to, j).expect("checked by job_move_loads");
        if self.table.count(to, k) == 0 {
            let s_to = M::setup_time(self.inst, to, k).expect("checked by job_move_loads");
            self.table.set_charge(to, k, s_to);
        }
        self.table.remove(from, k, j, self.job_times[j]);
        self.table.push(to, k, j, p_to);
        self.job_times[j] = p_to;
        self.multiset.remove(self.key(from, self.loads[from]), from);
        self.multiset.remove(self.key(to, self.loads[to]), to);
        self.multiset.insert(self.key(from, new_from), from);
        self.multiset.insert(self.key(to, new_to), to);
        self.loads[from] = new_from;
        self.loads[to] = new_to;
        self.assignment[j] = to;
    }

    /// New `(load_from, load_to, arriving_sum)` for a whole-class move;
    /// `None` when empty, no-op or infeasible. The arriving sum is the
    /// cached slot sum when the model's times are machine-independent and
    /// an `O(B)` re-sum otherwise.
    fn class_move_loads(
        &self,
        from: MachineId,
        k: ClassId,
        to: MachineId,
    ) -> Option<(u64, u64, u64)> {
        if from == to || self.table.count(from, k) == 0 {
            return None;
        }
        let s_to = M::setup_time(self.inst, to, k)?;
        let arriving = if M::MACHINE_INDEPENDENT_TIMES {
            self.table.ptime_sum(from, k)
        } else {
            let mut sum = 0u64;
            for &j in self.table.jobs(from, k) {
                sum += M::job_time(self.inst, to, j)?;
            }
            sum
        };
        let departing = self.table.ptime_sum(from, k) + self.table.charge(from, k);
        let new_from = self.loads[from] - departing;
        let mut new_to = self.loads[to] + arriving;
        if self.table.count(to, k) == 0 {
            new_to += s_to;
        }
        Some((new_from, new_to, arriving))
    }

    /// Makespan after migrating *all* class-`k` jobs on `from` to `to`, in
    /// `O(log m)` for machine-independent models and `O(B + log m)`
    /// otherwise, where `B` is the batch size. `None` if the batch is
    /// empty, the move is a no-op, or any time on `to` is infinite.
    pub fn eval_class_move(&self, from: MachineId, k: ClassId, to: MachineId) -> Option<M::Key> {
        let (new_from, new_to, _) = self.class_move_loads(from, k, to)?;
        let rest = self.multiset.max_excluding(&[from, to]).unwrap_or_else(M::zero_key);
        Some(rest.max(self.key(from, new_from)).max(self.key(to, new_to)))
    }

    /// Applies a feasible whole-class move in `O(B + log m)`.
    ///
    /// # Panics
    /// Panics if the move is empty, a no-op, or infeasible (check with
    /// [`Self::eval_class_move`] first).
    pub fn apply_class_move(&mut self, from: MachineId, k: ClassId, to: MachineId) {
        let (new_from, new_to, arriving) = self
            .class_move_loads(from, k, to)
            .expect("apply_class_move: infeasible, empty or no-op move");
        for &j in self.table.jobs(from, k) {
            debug_assert_eq!(self.assignment[j], from);
        }
        let batch_start = self.table.count(to, k);
        if batch_start == 0 {
            let s_to = M::setup_time(self.inst, to, k).expect("checked by class_move_loads");
            self.table.set_charge(to, k, s_to);
        }
        self.table.drain_slot(from, k, to, arriving);
        for idx in batch_start..self.table.count(to, k) {
            let j = self.table.jobs(to, k)[idx];
            self.assignment[j] = to;
            if !M::MACHINE_INDEPENDENT_TIMES {
                // Machine-dependent times: refresh the per-job cache for
                // the batch (machine-independent times are unchanged).
                self.job_times[j] =
                    M::job_time(self.inst, to, j).expect("checked by class_move_loads");
            }
        }
        self.multiset.remove(self.key(from, self.loads[from]), from);
        self.multiset.remove(self.key(to, self.loads[to]), to);
        self.multiset.insert(self.key(from, new_from), from);
        self.multiset.insert(self.key(to, new_to), to);
        self.loads[from] = new_from;
        self.loads[to] = new_to;
    }

    // ------------------------------------------------------------------
    // Structural edits (see `sst_core::delta`): repair a live tracker
    // after instance deltas instead of rebuilding it. The methods are
    // *value-based* — incoming times arrive as per-machine accessors
    // resolved by the caller (delta payloads layered over the pre-batch
    // instance; see `sst_algos::repair`), and outgoing contributions come
    // from the tracker's own caches (`job_times`, `setup_charge`) — so a
    // whole delta batch repairs against ONE bound instance with no
    // intermediate instance materialized. After the batch, `rebind` the
    // tracker to the batch-applied instance to resume move evaluation.
    // ------------------------------------------------------------------

    /// Adds job `j` (already sized into the bookkeeping) to machine `i`
    /// with `p` raw units, charging `setup` if it is the first of its
    /// class there.
    fn attach(&mut self, j: JobId, i: MachineId, p: u64, setup: u64) {
        let k = self.job_class[j];
        let mut new_load = self.loads[i] + p;
        if self.table.count(i, k) == 0 {
            new_load += setup;
            self.table.set_charge(i, k, setup);
        }
        self.table.push(i, k, j, p);
        self.job_times[j] = p;
        self.multiset.remove(self.key(i, self.loads[i]), i);
        self.multiset.insert(self.key(i, new_load), i);
        self.loads[i] = new_load;
        self.assignment[j] = i;
    }

    /// Removes job `j` from its machine (contribution from the caches),
    /// refunding the charged setup when it was the last of its class
    /// there. Returns the machine it left.
    fn detach(&mut self, j: JobId) -> MachineId {
        let i = self.assignment[j];
        let k = self.job_class[j];
        self.table.remove(i, k, j, self.job_times[j]);
        let mut new_load = self.loads[i] - self.job_times[j];
        if self.table.count(i, k) == 0 {
            new_load -= self.table.charge(i, k);
        }
        self.multiset.remove(self.key(i, self.loads[i]), i);
        self.multiset.insert(self.key(i, new_load), i);
        self.loads[i] = new_load;
        i
    }

    /// Places job `j` on the feasible machine minimizing its resulting
    /// load key (the setup-aware greedy rule), in `O(m + log m)`.
    /// `None` when no machine is feasible (the caller surfaces it as a
    /// stranded-job error; batches that keep the instance valid at every
    /// prefix never produce one).
    fn greedy_place(
        &mut self,
        j: JobId,
        time_on: &dyn Fn(MachineId) -> Option<u64>,
        setup_on: &dyn Fn(MachineId) -> Option<u64>,
    ) -> Option<MachineId> {
        let k = self.job_class[j];
        let mut best: Option<(M::Key, MachineId, u64, u64)> = None;
        for i in 0..self.loads.len() {
            let Some(p) = time_on(i) else { continue };
            let Some(s) = setup_on(i) else { continue };
            let extra = if self.table.count(i, k) == 0 { s } else { 0 };
            let key = self.key(i, self.loads[i] + p + extra);
            if best.is_none_or(|(bk, bi, _, _)| (key, i) < (bk, bi)) {
                best = Some((key, i, p, s));
            }
        }
        let (_, i, p, s) = best?;
        self.attach(j, i, p, s);
        Some(i)
    }

    /// Structural edit — [`crate::delta::InstanceDelta::AddJob`]: a job
    /// of class `class` (taking the next job id) arrives; places it by
    /// the setup-aware greedy rule in `O(m + log m)`. `time_on`/`setup_on`
    /// resolve the new job's per-machine raw units and its class's
    /// *current* setups (`None` = infeasible). Returns the chosen machine,
    /// or `None` (without mutating) when no machine is feasible.
    pub fn insert_job_greedy(
        &mut self,
        class: ClassId,
        time_on: &dyn Fn(MachineId) -> Option<u64>,
        setup_on: &dyn Fn(MachineId) -> Option<u64>,
    ) -> Option<MachineId> {
        assert!(class < self.table.num_classes, "insert_job_greedy: class {class} out of range");
        let j = self.assignment.len();
        self.assignment.push(0);
        self.table.pos.push(0);
        self.job_times.push(0);
        self.job_class.push(class);
        match self.greedy_place(j, time_on, setup_on) {
            Some(i) => Some(i),
            None => {
                self.assignment.pop();
                self.table.pos.pop();
                self.job_times.pop();
                self.job_class.pop();
                None
            }
        }
    }

    /// Structural edit — [`crate::delta::InstanceDelta::RemoveJob`]:
    /// removes job `j` and renames the last job to `j` (the same
    /// swap-remove the delta applies to the instance), in `O(log m)`.
    pub fn remove_job(&mut self, j: JobId) {
        let n_old = self.assignment.len();
        assert!(j < n_old, "remove_job: job {j} out of range ({n_old} jobs)");
        self.detach(j);
        let last = n_old - 1;
        // Vec::swap_remove performs exactly the delta's rename.
        self.assignment.swap_remove(j);
        self.job_times.swap_remove(j);
        self.job_class.swap_remove(j);
        self.table.pos.swap_remove(j);
        if last != j {
            // The renamed job's slot entry still says `last`: point it at
            // its new id.
            let idx = self.table.idx(self.assignment[j], self.job_class[j]);
            let at = self.table.pos[j] as usize;
            self.table.slots[idx].jobs[at] = j;
        }
    }

    /// Structural edit — [`crate::delta::InstanceDelta::ResizeJob`]:
    /// job `j`'s times changed to `time_on`. Adjusts the load in place
    /// when `j` stays feasible on its machine (`O(log m)`), else evicts
    /// and greedily re-places it (`O(m + log m)`). Returns `Some(true)`
    /// when the job stayed put, `Some(false)` when it migrated, `None`
    /// when no machine is feasible any more (the job is left detached
    /// only logically — the tracker re-attaches it nowhere and the caller
    /// must treat the whole repair as failed).
    pub fn retime_job(
        &mut self,
        j: JobId,
        time_on: &dyn Fn(MachineId) -> Option<u64>,
        setup_on: &dyn Fn(MachineId) -> Option<u64>,
    ) -> Option<bool> {
        let i = self.detach(j);
        let k = self.job_class[j];
        if let Some(p) = time_on(i) {
            // The machine still hosts the class (setup already charged) or
            // can re-pay its setup.
            let setup = if self.table.count(i, k) > 0 { Some(0) } else { setup_on(i) };
            if let Some(s) = setup {
                self.attach(j, i, p, s);
                return Some(true);
            }
        }
        self.greedy_place(j, time_on, setup_on).map(|_| false)
    }

    /// Structural edit — [`crate::delta::InstanceDelta::ResizeSetup`]:
    /// class `k`'s setup times changed to `setup_on`. Hosting machines get
    /// their load adjusted in place; machines where the new setup is
    /// infinite have their class-`k` jobs evicted and greedily re-placed
    /// (`job_time_on` resolves an evicted job's per-machine times).
    /// Returns the number of re-placed jobs, or `Err(j)` when evicted job
    /// `j` has no feasible machine left. `O(H log m + B(m + log m))` for
    /// `H` hosting machines and `B` evicted jobs.
    pub fn retime_setup(
        &mut self,
        k: ClassId,
        setup_on: &dyn Fn(MachineId) -> Option<u64>,
        job_time_on: &dyn Fn(JobId, MachineId) -> Option<u64>,
    ) -> Result<usize, JobId> {
        assert!(k < self.table.num_classes, "retime_setup: class {k} out of range");
        let mut orphans: Vec<JobId> = Vec::new();
        for i in 0..self.loads.len() {
            if self.table.count(i, k) == 0 {
                continue;
            }
            match setup_on(i) {
                Some(new_s) => {
                    let new_load = self.loads[i] - self.table.charge(i, k) + new_s;
                    self.table.set_charge(i, k, new_s);
                    self.multiset.remove(self.key(i, self.loads[i]), i);
                    self.multiset.insert(self.key(i, new_load), i);
                    self.loads[i] = new_load;
                }
                None => {
                    while let Some(&j) = self.table.jobs(i, k).last() {
                        self.detach(j);
                        orphans.push(j);
                    }
                }
            }
        }
        for &j in &orphans {
            self.greedy_place(j, &|i| job_time_on(j, i), setup_on).ok_or(j)?;
        }
        Ok(orphans.len())
    }

    /// Structural edit — [`crate::delta::InstanceDelta::AddClass`]:
    /// registers an appended (empty) class, in `O(m)` (class-major slot
    /// layout: `m` fresh slots at the back, no index disturbed).
    pub fn add_class(&mut self) {
        self.table.grow_class();
    }

    /// Re-binds the tracker to the batch-applied instance after a
    /// structural-edit sequence, re-enabling move evaluation (`eval_*` /
    /// `apply_*` read candidate times from the bound instance). The
    /// instance must describe exactly the state the edits produced — the
    /// shape is asserted, the cell values are the caller's contract (the
    /// repair driver derives both from the same delta batch).
    pub fn rebind(&mut self, inst: &'a M::Instance) {
        assert_eq!(M::n(inst), self.assignment.len(), "rebind: job count mismatch");
        assert_eq!(M::m(inst), self.loads.len(), "rebind: machine count mismatch");
        assert_eq!(M::num_classes(inst), self.table.num_classes, "rebind: class count mismatch");
        self.inst = inst;
    }
}

impl LoadTracker<'_, Uniform> {
    /// Current per-machine loads in work units (divide by `v_i` for time).
    /// Alias of [`Self::loads`] under the uniform model's historical name.
    #[inline]
    pub fn work(&self) -> &[u64] {
        self.loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Job, UniformInstance, UnrelatedInstance, INF};
    use crate::ratio::Ratio;
    use crate::schedule::{uniform_loads, uniform_makespan, unrelated_loads, unrelated_makespan};

    fn unrelated_fixture() -> UnrelatedInstance {
        UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap()
    }

    #[test]
    fn matches_full_recompute_unrelated() {
        let inst = unrelated_fixture();
        let sched = Schedule::new(vec![0, 1, 0]);
        let t = UnrelatedLoadTracker::new(&inst, &sched).unwrap();
        assert_eq!(t.loads(), &unrelated_loads(&inst, &sched).unwrap()[..]);
        assert_eq!(t.makespan(), unrelated_makespan(&inst, &sched).unwrap());
    }

    #[test]
    fn rejects_invalid_schedules_like_full_recompute() {
        let inst = unrelated_fixture();
        // Job 1 has p = INF on machine 0.
        let bad = Schedule::new(vec![0, 0, 0]);
        assert_eq!(
            UnrelatedLoadTracker::new(&inst, &bad).unwrap_err(),
            unrelated_loads(&inst, &bad).unwrap_err()
        );
        // Class 1 has s = INF on machine 1.
        let bad_setup = Schedule::new(vec![0, 1, 1]);
        assert_eq!(
            UnrelatedLoadTracker::new(&inst, &bad_setup).unwrap_err(),
            unrelated_loads(&inst, &bad_setup).unwrap_err()
        );
    }

    #[test]
    fn job_move_eval_matches_apply_and_recompute() {
        let inst = unrelated_fixture();
        let mut t = UnrelatedLoadTracker::new(&inst, &Schedule::new(vec![0, 1, 0])).unwrap();
        // Move job 2 (class 1) from machine 0 to machine 1? setup INF → None.
        assert_eq!(t.eval_job_move(2, 1), None);
        // Move job 0 (class 0) to machine 1.
        let predicted = t.eval_job_move(0, 1).unwrap();
        t.apply_job_move(0, 1);
        let sched = t.schedule();
        assert_eq!(t.makespan(), predicted);
        assert_eq!(t.makespan(), unrelated_makespan(&inst, &sched).unwrap());
        assert_eq!(t.loads(), &unrelated_loads(&inst, &sched).unwrap()[..]);
    }

    #[test]
    fn infeasible_and_noop_moves_are_none() {
        let inst = unrelated_fixture();
        let t = UnrelatedLoadTracker::new(&inst, &Schedule::new(vec![0, 1, 0])).unwrap();
        assert_eq!(t.eval_job_move(0, 0), None, "no-op");
        assert_eq!(t.eval_job_move(1, 0), None, "INF ptime");
        assert_eq!(t.eval_class_move(0, 1, 1), None, "INF setup on target");
        assert_eq!(t.eval_class_move(1, 1, 0), None, "empty batch");
        assert_eq!(t.eval_class_move(0, 0, 0), None, "no-op class move");
    }

    #[test]
    fn class_move_merges_batches() {
        let inst = unrelated_fixture();
        // Machine 0: job 0 (class 0); machine 1: jobs 1 (class 0), 2 is on 0.
        let mut t = UnrelatedLoadTracker::new(&inst, &Schedule::new(vec![0, 1, 0])).unwrap();
        let predicted = t.eval_class_move(1, 0, 0);
        // Batch {job 1} has p = INF on machine 0 → infeasible.
        assert_eq!(predicted, None);
        // Move class 0 off machine 0 instead (job 0 → machine 1).
        let predicted = t.eval_class_move(0, 0, 1).unwrap();
        t.apply_class_move(0, 0, 1);
        assert_eq!(t.makespan(), predicted);
        let sched = t.schedule();
        assert_eq!(t.loads(), &unrelated_loads(&inst, &sched).unwrap()[..]);
        assert_eq!(t.count(1, 0), 2);
        assert_eq!(t.count(0, 0), 0);
        assert_eq!(t.machine_of(0), 1);
    }

    #[test]
    fn uniform_tracker_matches_full_recompute() {
        let inst = UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap();
        let sched = Schedule::new(vec![0, 1, 1]);
        let mut t = UniformLoadTracker::new(&inst, &sched).unwrap();
        assert_eq!(t.work(), &uniform_loads(&inst, &sched).unwrap()[..]);
        assert_eq!(t.makespan(), uniform_makespan(&inst, &sched).unwrap());

        let predicted = t.eval_job_move(2, 0).unwrap();
        t.apply_job_move(2, 0);
        assert_eq!(t.makespan(), predicted);
        let now = t.schedule();
        assert_eq!(t.work(), &uniform_loads(&inst, &now).unwrap()[..]);
        assert_eq!(t.makespan(), uniform_makespan(&inst, &now).unwrap());

        // Whole-class move: class 0 = {0, 2} on machine 0 → machine 1.
        let predicted = t.eval_class_move(0, 0, 1).unwrap();
        t.apply_class_move(0, 0, 1);
        assert_eq!(t.makespan(), predicted);
        let now = t.schedule();
        assert_eq!(t.work(), &uniform_loads(&inst, &now).unwrap()[..]);
    }

    #[test]
    fn bottleneck_attains_makespan() {
        let inst =
            UniformInstance::identical(3, vec![1], vec![Job::new(0, 9), Job::new(0, 2)]).unwrap();
        let t = UniformLoadTracker::new(&inst, &Schedule::new(vec![0, 1])).unwrap();
        assert_eq!(t.bottleneck(), 0);
        assert_eq!(t.makespan(), Ratio::new(10, 1));
    }

    #[test]
    fn splittable_tracker_is_the_integral_view_of_the_unrelated_one() {
        let inst = unrelated_fixture();
        let sched = Schedule::new(vec![0, 1, 0]);
        let s = SplittableLoadTracker::new(&inst, &sched).unwrap();
        let r = UnrelatedLoadTracker::new(&inst, &sched).unwrap();
        assert_eq!(s.loads(), r.loads());
        assert_eq!(s.makespan(), r.makespan());
        assert_eq!(s.eval_job_move(0, 1), r.eval_job_move(0, 1));
    }

    #[test]
    fn empty_instance() {
        let inst = UnrelatedInstance::new(2, vec![], vec![], vec![]).unwrap();
        let t = UnrelatedLoadTracker::new(&inst, &Schedule::new(vec![])).unwrap();
        assert_eq!(t.makespan(), 0);
    }

    #[test]
    fn structural_edits_match_a_fresh_tracker() {
        use crate::delta::InstanceDelta;
        use crate::model::{MachineModel, Unrelated};

        let base = unrelated_fixture();
        let mut t = UnrelatedLoadTracker::new(&base, &Schedule::new(vec![0, 1, 0])).unwrap();

        // Add a class, then a job of it, then remove job 0 (swap-remove),
        // then resize a setup — the tracker repaired in place throughout,
        // value-based (payload accessors), with ONE final instance built
        // by the batch applier.
        let deltas = vec![
            InstanceDelta::AddClass { times: vec![2, 2] },
            InstanceDelta::AddJob { class: 2, times: vec![6, 1] },
            InstanceDelta::RemoveJob { job: 0 },
            InstanceDelta::ResizeSetup { class: 0, times: vec![4, 4] },
        ];
        let final_inst = Unrelated::apply_deltas(&base, &deltas).unwrap();

        t.add_class();
        let chosen = t
            .insert_job_greedy(2, &|i| Some([6, 1][i]), &|i| Some([2, 2][i]))
            .expect("feasible somewhere");
        assert_eq!(t.machine_of(3), chosen);
        t.remove_job(0);
        // The new job (old id 3) took id 0 and kept its machine.
        assert_eq!(t.machine_of(0), chosen);
        t.retime_setup(0, &|i| Some([4u64, 4][i]), &|_, _| unreachable!("no eviction"))
            .expect("no stranded jobs");
        t.rebind(&final_inst);

        let fresh = UnrelatedLoadTracker::new(&final_inst, &t.schedule()).unwrap();
        assert_eq!(t.loads(), fresh.loads());
        assert_eq!(t.makespan(), fresh.makespan());
        // The repaired + rebound tracker keeps answering moves like a
        // fresh one.
        for j in 0..final_inst.n() {
            for i in 0..final_inst.m() {
                assert_eq!(t.eval_job_move(j, i), fresh.eval_job_move(j, i), "job {j} -> {i}");
            }
        }
    }

    #[test]
    fn retime_job_evicts_infeasible_placements() {
        use crate::delta::InstanceDelta;
        use crate::model::{MachineModel, Unrelated};

        let base = unrelated_fixture();
        let mut t = UnrelatedLoadTracker::new(&base, &Schedule::new(vec![0, 1, 0])).unwrap();
        // Job 0 (machine 0, class 0) becomes infinite there: must migrate.
        let edited = Unrelated::apply_delta(
            &base,
            &InstanceDelta::ResizeJob { job: 0, times: vec![INF, 2] },
        )
        .unwrap();
        let setup0 = |i: usize| Unrelated::setup_time(&edited, i, 0);
        assert_eq!(
            t.retime_job(0, &|i| [None, Some(2)][i], &setup0),
            Some(false),
            "eviction reported"
        );
        assert_eq!(t.machine_of(0), 1);
        t.rebind(&edited);
        let fresh = UnrelatedLoadTracker::new(&edited, &t.schedule()).unwrap();
        assert_eq!(t.loads(), fresh.loads());

        // An in-place resize keeps the job put and adjusts the load.
        let shrunk = Unrelated::apply_delta(
            &edited,
            &InstanceDelta::ResizeJob { job: 2, times: vec![1, 5] },
        )
        .unwrap();
        let setup1 = |i: usize| Unrelated::setup_time(&shrunk, i, 1);
        assert_eq!(t.retime_job(2, &|i| Some([1, 5][i]), &setup1), Some(true));
        t.rebind(&shrunk);
        let fresh = UnrelatedLoadTracker::new(&shrunk, &t.schedule()).unwrap();
        assert_eq!(t.loads(), fresh.loads());
        assert_eq!(t.makespan(), fresh.makespan());
    }

    #[test]
    fn stranded_inserts_fail_cleanly_without_mutation() {
        let base = unrelated_fixture();
        let mut t = UnrelatedLoadTracker::new(&base, &Schedule::new(vec![0, 1, 0])).unwrap();
        let before = t.loads().to_vec();
        // A class-1 arrival that is feasible nowhere (class 1's setup is
        // infinite on machine 1, and we make its time infinite on 0).
        assert_eq!(t.insert_job_greedy(1, &|i| [None, Some(3)][i], &|i| [Some(7), None][i]), None);
        assert_eq!(t.loads(), &before[..], "failed insert must not mutate");
        assert_eq!(t.schedule().n(), 3);
        // Feasible only on machine 0 → greedy must pick it.
        assert_eq!(t.insert_job_greedy(1, &|_| Some(3), &|i| [Some(7), None][i]), Some(0));
        assert_eq!(t.machine_of(3), 0);
    }

    #[test]
    fn uniform_structural_edits_keep_exact_keys() {
        use crate::delta::InstanceDelta;
        use crate::model::{MachineModel, Uniform};

        let base = UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap();
        let mut t = UniformLoadTracker::new(&base, &Schedule::new(vec![0, 1, 1])).unwrap();
        let deltas = vec![
            InstanceDelta::AddJob { class: 1, times: vec![8] },
            InstanceDelta::RemoveJob { job: 1 },
            InstanceDelta::ResizeSetup { class: 0, times: vec![1] },
        ];
        let final_inst = Uniform::apply_deltas(&base, &deltas).unwrap();
        t.insert_job_greedy(1, &|_| Some(8), &|_| Some(5)).expect("uniform is always feasible");
        t.remove_job(1);
        t.retime_setup(0, &|_| Some(1), &|_, _| unreachable!("no eviction"))
            .expect("no stranded jobs");
        t.rebind(&final_inst);
        let fresh = UniformLoadTracker::new(&final_inst, &t.schedule()).unwrap();
        assert_eq!(t.work(), fresh.work());
        assert_eq!(t.makespan(), fresh.makespan());
        assert_eq!(t.bottleneck(), fresh.bottleneck());
    }
}
