//! Error types shared across the workspace.

use std::fmt;

/// Errors raised while constructing instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A job references a class id `>= num_classes`.
    ClassOutOfRange {
        /// Offending job id.
        job: usize,
        /// Class id the job referenced.
        class: usize,
        /// Number of classes in the instance.
        num_classes: usize,
    },
    /// A uniform machine has speed zero.
    ZeroSpeed {
        /// Offending machine id.
        machine: usize,
    },
    /// A matrix row has the wrong number of entries.
    DimensionMismatch {
        /// Which input vector was malformed.
        what: &'static str,
        /// Expected entry count.
        expected: usize,
        /// Actual entry count.
        got: usize,
    },
    /// The instance has no machines.
    NoMachines,
    /// A job cannot run anywhere: `p_ij + s_ik = ∞` on every machine.
    UnschedulableJob {
        /// Offending job id.
        job: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::ClassOutOfRange { job, class, num_classes } => write!(
                f,
                "job {job} references class {class} but the instance has only {num_classes} classes"
            ),
            InstanceError::ZeroSpeed { machine } => {
                write!(f, "machine {machine} has speed 0 (speeds must be positive)")
            }
            InstanceError::DimensionMismatch { what, expected, got } => {
                write!(f, "{what}: expected {expected} entries, got {got}")
            }
            InstanceError::NoMachines => write!(f, "instance has no machines"),
            InstanceError::UnschedulableJob { job } => {
                write!(f, "job {job} has infinite processing time on every machine")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Errors raised while evaluating or validating schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Assignment vector length differs from the number of jobs.
    WrongLength {
        /// Number of jobs in the instance.
        expected: usize,
        /// Number of jobs the schedule covers.
        got: usize,
    },
    /// A job is assigned to a machine id `>= m`.
    MachineOutOfRange {
        /// Offending job id.
        job: usize,
        /// Machine id the job was assigned to.
        machine: usize,
        /// Number of machines in the instance.
        m: usize,
    },
    /// A job is assigned to a machine where its processing time is infinite.
    InfiniteProcessingTime {
        /// Offending job id.
        job: usize,
        /// Machine the job was assigned to.
        machine: usize,
    },
    /// A class is set up on a machine where its setup time is infinite.
    InfiniteSetup {
        /// Offending class id.
        class: usize,
        /// Machine the class was placed on.
        machine: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => {
                write!(f, "schedule assigns {got} jobs but the instance has {expected}")
            }
            ScheduleError::MachineOutOfRange { job, machine, m } => {
                write!(f, "job {job} assigned to machine {machine}, but m = {m}")
            }
            ScheduleError::InfiniteProcessingTime { job, machine } => {
                write!(f, "job {job} assigned to machine {machine} where p_ij = ∞")
            }
            ScheduleError::InfiniteSetup { class, machine } => {
                write!(f, "class {class} set up on machine {machine} where s_ik = ∞")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}
