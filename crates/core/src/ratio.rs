//! Exact non-negative rational arithmetic.
//!
//! Makespans on uniformly related machines are rationals `work / speed`.
//! Comparing them through floating point silently breaks dual-approximation
//! feasibility tests near the threshold, so every correctness-critical
//! comparison in this workspace goes through [`Ratio`]: a reduced `u64/u64`
//! fraction compared by `u128` cross-multiplication.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational number stored as a reduced fraction.
///
/// Invariants: `den > 0` and `gcd(num, den) == 1` (with `0` represented as
/// `0/1`). All operations keep the value reduced. Arithmetic panics on
/// overflow of the reduced result — scheduling quantities in this workspace
/// (work sums below 2^63, speeds below 2^32) stay far from that limit, and a
/// loud panic beats a silently wrong makespan.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

/// Greatest common divisor (binary-free Euclid; inputs fit u64).
#[inline]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[inline]
fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational `0`.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational `1`.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[inline]
    pub fn new(num: u64, den: u64) -> Ratio {
        assert!(den != 0, "Ratio denominator must be non-zero");
        if num == 0 {
            return Ratio::ZERO;
        }
        let g = gcd(num, den);
        Ratio { num: num / g, den: den / g }
    }

    /// Builds a ratio from a (possibly unreduced) `u128` fraction, reducing
    /// first and panicking only if the *reduced* fraction does not fit `u64`.
    fn from_u128(num: u128, den: u128) -> Ratio {
        assert!(den != 0, "Ratio denominator must be non-zero");
        if num == 0 {
            return Ratio::ZERO;
        }
        let g = gcd128(num, den);
        let (n, d) = (num / g, den / g);
        assert!(
            n <= u64::MAX as u128 && d <= u64::MAX as u128,
            "Ratio overflow: {n}/{d} does not fit u64/u64"
        );
        Ratio { num: n as u64, den: d as u64 }
    }

    /// Like [`Ratio::from_u128`], but returns `None` instead of panicking
    /// when the reduced fraction does not fit `u64/u64`.
    fn try_from_u128(num: u128, den: u128) -> Option<Ratio> {
        assert!(den != 0, "Ratio denominator must be non-zero");
        if num == 0 {
            return Some(Ratio::ZERO);
        }
        let g = gcd128(num, den);
        let (n, d) = (num / g, den / g);
        if n <= u64::MAX as u128 && d <= u64::MAX as u128 {
            Some(Ratio { num: n as u64, den: d as u64 })
        } else {
            None
        }
    }

    /// Smallest ratio `≥ self` whose denominator is at most `max_den`
    /// (identity when `den ≤ max_den` already). Rounds *up*, never down.
    pub fn round_up_to_den(self, max_den: u64) -> Ratio {
        assert!(max_den > 0, "max_den must be positive");
        if self.den <= max_den {
            return self;
        }
        // ceil(num·max_den / den) / max_den ≥ num/den; num·max_den fits u128.
        let scaled = self.num as u128 * max_den as u128;
        let num = scaled.div_ceil(self.den as u128);
        Ratio::from_u128(num, max_den as u128)
    }

    /// Multiplication for geometric grids: exact whenever the reduced exact
    /// product fits `u64/u64`; otherwise `self` is first rounded **up** to a
    /// denominator ≤ 2³² (an absolute error below 2⁻³²) and the product is
    /// taken exactly from there. The result is always `≥ self · rhs` and
    /// `≤ round_up_to_den(self) · rhs`, preserving the monotone-coverage
    /// property geometric search needs even when the exact grid point (e.g.
    /// `5³⁴/4³⁴`) is unrepresentable.
    pub fn mul_rounding_up(self, rhs: Ratio) -> Ratio {
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1) as u128 * (rhs.num / g2) as u128;
        let den = (self.den / g2) as u128 * (rhs.den / g1) as u128;
        if let Some(exact) = Ratio::try_from_u128(num, den) {
            return exact;
        }
        self.round_up_to_den(1 << 32).mul(rhs)
    }

    #[inline]
    /// The integer `v` as a rational `v/1`.
    pub fn from_int(v: u64) -> Ratio {
        Ratio { num: v, den: 1 }
    }

    #[inline]
    /// Numerator of the reduced fraction.
    pub fn numer(self) -> u64 {
        self.num
    }

    #[inline]
    /// Denominator of the reduced fraction (always positive).
    pub fn denom(self) -> u64 {
        self.den
    }

    #[inline]
    /// True iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Exact addition.
    #[inline]
    pub fn add(self, rhs: Ratio) -> Ratio {
        Ratio::from_u128(
            self.num as u128 * rhs.den as u128 + rhs.num as u128 * self.den as u128,
            self.den as u128 * rhs.den as u128,
        )
    }

    /// Exact subtraction, saturating at zero (loads and gaps in this crate
    /// are non-negative by construction; callers that care use `checked_sub`).
    #[inline]
    pub fn saturating_sub(self, rhs: Ratio) -> Ratio {
        match self.checked_sub(rhs) {
            Some(r) => r,
            None => Ratio::ZERO,
        }
    }

    /// Exact subtraction; `None` if the result would be negative.
    #[inline]
    pub fn checked_sub(self, rhs: Ratio) -> Option<Ratio> {
        let lhs = self.num as u128 * rhs.den as u128;
        let r = rhs.num as u128 * self.den as u128;
        if lhs < r {
            return None;
        }
        Some(Ratio::from_u128(lhs - r, self.den as u128 * rhs.den as u128))
    }

    /// Exact multiplication.
    #[inline]
    pub fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        Ratio::from_u128(
            (self.num / g1) as u128 * (rhs.num / g2) as u128,
            (self.den / g2) as u128 * (rhs.den / g1) as u128,
        )
    }

    /// Exact division.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div(self, rhs: Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "Ratio division by zero");
        self.mul(Ratio { num: rhs.den, den: rhs.num })
    }

    #[inline]
    /// Multiplies by an integer.
    pub fn mul_int(self, v: u64) -> Ratio {
        self.mul(Ratio::from_int(v))
    }

    #[inline]
    /// Divides by a (non-zero) integer.
    pub fn div_int(self, v: u64) -> Ratio {
        self.div(Ratio::from_int(v))
    }

    /// Smallest integer `>= self`.
    #[inline]
    pub fn ceil(self) -> u64 {
        self.num.div_ceil(self.den)
    }

    /// Largest integer `<= self`.
    #[inline]
    pub fn floor(self) -> u64 {
        self.num / self.den
    }

    /// Lossy conversion for reporting only — never used in comparisons.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(self, mut exp: u32) -> Ratio {
        let mut base = self;
        let mut acc = Ratio::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(base);
            }
        }
        acc
    }

    #[inline]
    /// Smaller of the two values.
    pub fn min(self, rhs: Ratio) -> Ratio {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    #[inline]
    /// Larger of the two values.
    pub fn max(self, rhs: Ratio) -> Ratio {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl PartialOrd for Ratio {
    #[inline]
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    #[inline]
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Reduced fractions with u64 parts: products fit u128 exactly.
        let lhs = self.num as u128 * other.den as u128;
        let rhs = other.num as u128 * self.den as u128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{} (~{:.4})", self.num, self.den, self.to_f64())
        }
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Ratio {
        Ratio::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        let r = Ratio::new(6, 4);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn ordering_is_exact_near_ties() {
        // 1/3 vs 333333333/1000000000: f64 would need care; exact cmp is trivial.
        let a = Ratio::new(1, 3);
        let b = Ratio::new(333_333_333, 1_000_000_000);
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Ratio::new(3, 4);
        let b = Ratio::new(5, 6);
        assert_eq!(a.add(b), Ratio::new(19, 12));
        assert_eq!(b.checked_sub(a), Some(Ratio::new(1, 12)));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(a.saturating_sub(b), Ratio::ZERO);
        assert_eq!(a.mul(b), Ratio::new(5, 8));
        assert_eq!(a.div(b), Ratio::new(9, 10));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(8, 2).ceil(), 4);
        assert_eq!(Ratio::new(8, 2).floor(), 4);
        assert_eq!(Ratio::ZERO.ceil(), 0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let r = Ratio::new(3, 2);
        let mut acc = Ratio::ONE;
        for e in 0..8u32 {
            assert_eq!(r.pow(e), acc);
            acc = acc.mul(r);
        }
    }

    #[test]
    fn large_values_no_overflow() {
        let a = Ratio::new(u32::MAX as u64, 3);
        let b = Ratio::new(u32::MAX as u64, 5);
        // Products of ~2^32 values fit comfortably in u128 comparisons.
        assert!(a > b);
        let p = a.mul(Ratio::new(3, u32::MAX as u64));
        assert_eq!(p, Ratio::ONE);
    }

    #[test]
    fn min_max() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(2, 3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
