//! Instance model: jobs, setup classes and the three machine environments of
//! the paper (uniformly related, unrelated, restricted assignment).
//!
//! Terminology follows Section 1.1 of the paper. A job `j` has a *size* `p_j`
//! and belongs to exactly one class `k_j`; a class `k` has a *setup size*
//! `s_k` (uniform case) or machine-dependent setup times `s_ik` (unrelated
//! case). "Size" is the machine-independent quantity; the *processing time*
//! on a uniform machine `i` is `p_j / v_i`.

use crate::error::InstanceError;
use crate::ratio::Ratio;

/// Index of a job in `0..n`.
pub type JobId = usize;
/// Index of a machine in `0..m`.
pub type MachineId = usize;
/// Index of a setup class in `0..K`.
pub type ClassId = usize;

/// Sentinel for an infinite processing/setup time (restricted assignment and
/// unrelated instances). Finite times must stay strictly below this value.
pub const INF: u64 = u64::MAX;

/// Returns true for finite time values.
#[inline]
pub fn is_finite(t: u64) -> bool {
    t != INF
}

/// A job of a uniformly-related-machines instance: a size and a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Setup class of the job (`k_j`).
    pub class: ClassId,
    /// Machine-independent size (`p_j`).
    pub size: u64,
}

impl Job {
    #[inline]
    /// Creates a job of class `class` with size `size`.
    pub fn new(class: ClassId, size: u64) -> Job {
        Job { class, size }
    }
}

/// An instance of scheduling with setup times on **uniformly related
/// machines**: machine `i` has speed `v_i`, job `j` takes `p_j / v_i` time,
/// a setup for class `k` takes `s_k / v_i` time.
///
/// Identical machines are the special case of all speeds equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformInstance {
    speeds: Vec<u64>,
    setups: Vec<u64>,
    jobs: Vec<Job>,
}

impl UniformInstance {
    /// Builds and validates an instance.
    pub fn new(speeds: Vec<u64>, setups: Vec<u64>, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if speeds.is_empty() {
            return Err(InstanceError::NoMachines);
        }
        if let Some(i) = speeds.iter().position(|&v| v == 0) {
            return Err(InstanceError::ZeroSpeed { machine: i });
        }
        for (j, job) in jobs.iter().enumerate() {
            if job.class >= setups.len() {
                return Err(InstanceError::ClassOutOfRange {
                    job: j,
                    class: job.class,
                    num_classes: setups.len(),
                });
            }
        }
        Ok(UniformInstance { speeds, setups, jobs })
    }

    /// Identical machines: `m` machines of speed 1.
    pub fn identical(m: usize, setups: Vec<u64>, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        UniformInstance::new(vec![1; m], setups, jobs)
    }

    #[inline]
    /// Number of jobs `n`.
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    #[inline]
    /// Number of machines `m`.
    pub fn m(&self) -> usize {
        self.speeds.len()
    }

    /// Number of setup classes `K`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.setups.len()
    }

    #[inline]
    /// Job `j`.
    pub fn job(&self, j: JobId) -> Job {
        self.jobs[j]
    }

    #[inline]
    /// All jobs, indexed by [`JobId`].
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    #[inline]
    /// Speed `v_i` of machine `i`.
    pub fn speed(&self, i: MachineId) -> u64 {
        self.speeds[i]
    }

    #[inline]
    /// All machine speeds, indexed by [`MachineId`].
    pub fn speeds(&self) -> &[u64] {
        &self.speeds
    }

    /// Setup size `s_k` of class `k`.
    #[inline]
    pub fn setup(&self, k: ClassId) -> u64 {
        self.setups[k]
    }

    #[inline]
    /// All setup sizes, indexed by [`ClassId`].
    pub fn setups(&self) -> &[u64] {
        &self.setups
    }

    /// Processing time of job `j` on machine `i` as an exact rational.
    #[inline]
    pub fn ptime(&self, i: MachineId, j: JobId) -> Ratio {
        Ratio::new(self.jobs[j].size, self.speeds[i])
    }

    /// Jobs of class `k`, in job-id order.
    pub fn jobs_of_class(&self, k: ClassId) -> Vec<JobId> {
        (0..self.n()).filter(|&j| self.jobs[j].class == k).collect()
    }

    /// Classes that actually contain at least one job.
    pub fn nonempty_classes(&self) -> Vec<ClassId> {
        let mut present = vec![false; self.num_classes()];
        for job in &self.jobs {
            present[job.class] = true;
        }
        (0..self.num_classes()).filter(|&k| present[k]).collect()
    }

    /// Total job size `Σ_j p_j`.
    pub fn total_job_size(&self) -> u64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// `Σ_j p_j + Σ_{k nonempty} s_k` — minimum total work any schedule pays.
    pub fn total_work_with_min_setups(&self) -> u64 {
        let setups: u64 = self.nonempty_classes().iter().map(|&k| self.setups[k]).sum();
        self.total_job_size() + setups
    }


    /// Sum of all machine speeds.
    pub fn total_speed(&self) -> u64 {
        self.speeds.iter().sum()
    }


    /// Fastest machine speed `v_max`.
    pub fn max_speed(&self) -> u64 {
        *self.speeds.iter().max().expect("non-empty by construction")
    }


    /// Slowest machine speed `v_min`.
    pub fn min_speed(&self) -> u64 {
        *self.speeds.iter().min().expect("non-empty by construction")
    }


    /// True iff all machines have equal speed.
    pub fn is_identical(&self) -> bool {
        self.speeds.iter().all(|&v| v == self.speeds[0])
    }

    /// Scales every job and setup size by `factor` (used by the
    /// simplification pipeline so that rounded sizes stay integral).
    pub fn scale_sizes(&self, factor: u64) -> UniformInstance {
        UniformInstance {
            speeds: self.speeds.clone(),
            setups: self.setups.iter().map(|&s| s * factor).collect(),
            jobs: self.jobs.iter().map(|&j| Job::new(j.class, j.size * factor)).collect(),
        }
    }
}

/// An instance of scheduling with setup times on **unrelated machines**:
/// arbitrary processing times `p_ij` and setup times `s_ik`, either of which
/// may be [`INF`] (restricted assignment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrelatedInstance {
    m: usize,
    job_class: Vec<ClassId>,
    /// `ptimes[j][i] = p_ij` (row per job).
    ptimes: Vec<Vec<u64>>,
    /// `setups[k][i] = s_ik` (row per class).
    setups: Vec<Vec<u64>>,
}

impl UnrelatedInstance {
    /// Builds and validates an instance.
    ///
    /// `ptimes[j][i]` is the processing time of job `j` on machine `i`;
    /// `setups[k][i]` is the setup time of class `k` on machine `i`.
    pub fn new(
        m: usize,
        job_class: Vec<ClassId>,
        ptimes: Vec<Vec<u64>>,
        setups: Vec<Vec<u64>>,
    ) -> Result<Self, InstanceError> {
        if m == 0 {
            return Err(InstanceError::NoMachines);
        }
        if ptimes.len() != job_class.len() {
            return Err(InstanceError::DimensionMismatch {
                what: "ptimes rows",
                expected: job_class.len(),
                got: ptimes.len(),
            });
        }
        for (j, row) in ptimes.iter().enumerate() {
            if row.len() != m {
                return Err(InstanceError::DimensionMismatch {
                    what: "ptimes columns",
                    expected: m,
                    got: row.len(),
                });
            }
            if row.iter().all(|&p| !is_finite(p)) {
                return Err(InstanceError::UnschedulableJob { job: j });
            }
        }
        for (k, row) in setups.iter().enumerate() {
            if row.len() != m {
                return Err(InstanceError::DimensionMismatch {
                    what: "setup columns",
                    expected: m,
                    got: row.len(),
                });
            }
            let _ = k;
        }
        for (j, &k) in job_class.iter().enumerate() {
            if k >= setups.len() {
                return Err(InstanceError::ClassOutOfRange {
                    job: j,
                    class: k,
                    num_classes: setups.len(),
                });
            }
        }
        let inst = UnrelatedInstance { m, job_class, ptimes, setups };
        for j in 0..inst.n() {
            if (0..m).all(|i| !is_finite(inst.cost(i, j))) {
                return Err(InstanceError::UnschedulableJob { job: j });
            }
        }
        Ok(inst)
    }

    /// Restricted assignment: job `j` has size `sizes[j]` on every machine in
    /// `eligible[j]` and `∞` elsewhere; class `k` has setup `class_setups[k]`
    /// on every machine in `class_machines[k]` and `∞` elsewhere (pass
    /// `None` to allow a class everywhere).
    pub fn restricted_assignment(
        m: usize,
        job_class: Vec<ClassId>,
        sizes: Vec<u64>,
        eligible: Vec<Vec<MachineId>>,
        class_setups: Vec<u64>,
        class_machines: Option<Vec<Vec<MachineId>>>,
    ) -> Result<Self, InstanceError> {
        if sizes.len() != job_class.len() || eligible.len() != job_class.len() {
            return Err(InstanceError::DimensionMismatch {
                what: "restricted assignment job vectors",
                expected: job_class.len(),
                got: sizes.len().min(eligible.len()),
            });
        }
        let mut ptimes = vec![vec![INF; m]; job_class.len()];
        for (j, elig) in eligible.iter().enumerate() {
            for &i in elig {
                ptimes[j][i] = sizes[j];
            }
        }
        let mut setups = vec![vec![INF; m]; class_setups.len()];
        match &class_machines {
            Some(rows) => {
                for (k, row) in rows.iter().enumerate() {
                    for &i in row {
                        setups[k][i] = class_setups[k];
                    }
                }
            }
            None => {
                for (k, s) in class_setups.iter().enumerate() {
                    setups[k] = vec![*s; m];
                }
            }
        }
        UnrelatedInstance::new(m, job_class, ptimes, setups)
    }

    #[inline]
    /// Number of jobs `n`.
    pub fn n(&self) -> usize {
        self.job_class.len()
    }

    #[inline]
    /// Number of machines `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    #[inline]
    /// Number of setup classes `K`.
    pub fn num_classes(&self) -> usize {
        self.setups.len()
    }

    /// Class `k_j` of job `j`.
    #[inline]
    pub fn class_of(&self, j: JobId) -> ClassId {
        self.job_class[j]
    }

    /// Processing time `p_ij` (possibly [`INF`]).
    #[inline]
    pub fn ptime(&self, i: MachineId, j: JobId) -> u64 {
        self.ptimes[j][i]
    }

    /// Setup time `s_ik` (possibly [`INF`]).
    #[inline]
    pub fn setup(&self, i: MachineId, k: ClassId) -> u64 {
        self.setups[k][i]
    }

    /// `p_ij + s_{i,k_j}`, saturating at [`INF`]: the cost of running `j` on
    /// an otherwise-empty machine `i`.
    #[inline]
    pub fn cost(&self, i: MachineId, j: JobId) -> u64 {
        let p = self.ptime(i, j);
        let s = self.setup(i, self.job_class[j]);
        if !is_finite(p) || !is_finite(s) {
            INF
        } else {
            p.saturating_add(s)
        }
    }

    /// Jobs of class `k`, in job-id order.
    pub fn jobs_of_class(&self, k: ClassId) -> Vec<JobId> {
        (0..self.n()).filter(|&j| self.job_class[j] == k).collect()
    }

    /// Classes with at least one job.
    pub fn nonempty_classes(&self) -> Vec<ClassId> {
        let mut present = vec![false; self.num_classes()];
        for &k in &self.job_class {
            present[k] = true;
        }
        (0..self.num_classes()).filter(|&k| present[k]).collect()
    }

    /// Machines on which job `j` can run with finite `p_ij` *and* finite
    /// setup for its class.
    pub fn eligible_machines(&self, j: JobId) -> Vec<MachineId> {
        (0..self.m).filter(|&i| is_finite(self.cost(i, j))).collect()
    }

    /// True iff the instance is a restricted-assignment instance: each job's
    /// finite processing times are all equal.
    pub fn is_restricted_assignment(&self) -> bool {
        self.ptimes.iter().all(|row| {
            let mut finite = row.iter().copied().filter(|&p| is_finite(p));
            match finite.next() {
                None => true,
                Some(first) => finite.all(|p| p == first),
            }
        })
    }

    /// True iff the restrictions are class-uniform (Section 3.3.1): all jobs
    /// of a class have the same set of machines with finite `p_ij`.
    pub fn has_class_uniform_restrictions(&self) -> bool {
        for k in 0..self.num_classes() {
            let jobs = self.jobs_of_class(k);
            if jobs.len() < 2 {
                continue;
            }
            let sig = |j: JobId| -> Vec<bool> {
                (0..self.m).map(|i| is_finite(self.ptime(i, j))).collect()
            };
            let first = sig(jobs[0]);
            if jobs[1..].iter().any(|&j| sig(j) != first) {
                return false;
            }
        }
        true
    }

    /// True iff processing times are class-uniform (Section 3.3.2):
    /// `k_j = k_{j'}` implies `p_ij = p_ij'` on every machine.
    pub fn has_class_uniform_ptimes(&self) -> bool {
        for k in 0..self.num_classes() {
            let jobs = self.jobs_of_class(k);
            for w in jobs.windows(2) {
                if (0..self.m).any(|i| self.ptime(i, w[0]) != self.ptime(i, w[1])) {
                    return false;
                }
            }
        }
        true
    }

    /// Total workload of class `k` on machine `i` — `p̄_ik = Σ_{j: k_j=k} p_ij`
    /// if every job of the class is finite on `i`, otherwise [`INF`]
    /// (Section 3.3.1 notation).
    pub fn class_workload(&self, i: MachineId, k: ClassId) -> u64 {
        let mut sum: u64 = 0;
        for j in self.jobs_of_class(k) {
            let p = self.ptime(i, j);
            if !is_finite(p) {
                return INF;
            }
            sum = sum.saturating_add(p);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_uniform() -> UniformInstance {
        UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn uniform_accessors() {
        let inst = small_uniform();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.ptime(0, 1), Ratio::new(6, 2));
        assert_eq!(inst.jobs_of_class(0), vec![0, 2]);
        assert_eq!(inst.total_job_size(), 12);
        assert_eq!(inst.total_work_with_min_setups(), 12 + 3 + 5);
        assert_eq!(inst.total_speed(), 3);
        assert!(!inst.is_identical());
    }

    #[test]
    fn uniform_rejects_bad_input() {
        assert_eq!(
            UniformInstance::new(vec![], vec![1], vec![]),
            Err(InstanceError::NoMachines)
        );
        assert_eq!(
            UniformInstance::new(vec![1, 0], vec![1], vec![]),
            Err(InstanceError::ZeroSpeed { machine: 1 })
        );
        assert!(matches!(
            UniformInstance::new(vec![1], vec![1], vec![Job::new(3, 1)]),
            Err(InstanceError::ClassOutOfRange { job: 0, class: 3, .. })
        ));
    }

    #[test]
    fn nonempty_classes_skips_empty() {
        let inst =
            UniformInstance::new(vec![1], vec![1, 2, 3], vec![Job::new(2, 5)]).unwrap();
        assert_eq!(inst.nonempty_classes(), vec![2]);
        assert_eq!(inst.total_work_with_min_setups(), 5 + 3);
    }

    #[test]
    fn identical_constructor() {
        let inst = UniformInstance::identical(4, vec![2], vec![Job::new(0, 7)]).unwrap();
        assert!(inst.is_identical());
        assert_eq!(inst.m(), 4);
    }

    #[test]
    fn scale_sizes_scales_jobs_and_setups() {
        let inst = small_uniform().scale_sizes(3);
        assert_eq!(inst.job(0).size, 12);
        assert_eq!(inst.setup(1), 15);
        assert_eq!(inst.speed(0), 2); // speeds untouched
    }

    fn small_unrelated() -> UnrelatedInstance {
        UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap()
    }

    #[test]
    fn unrelated_accessors() {
        let inst = small_unrelated();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.ptime(1, 0), 9);
        assert_eq!(inst.cost(0, 0), 4);
        assert_eq!(inst.cost(0, 1), INF); // infinite ptime
        assert_eq!(inst.cost(1, 2), INF); // infinite setup
        assert_eq!(inst.eligible_machines(2), vec![0]);
    }

    #[test]
    fn unrelated_rejects_unschedulable() {
        // Job 0 finite nowhere once setups are considered.
        let err = UnrelatedInstance::new(
            1,
            vec![0],
            vec![vec![5]],
            vec![vec![INF]],
        );
        assert_eq!(err, Err(InstanceError::UnschedulableJob { job: 0 }));
    }

    #[test]
    fn restricted_assignment_builder() {
        let inst = UnrelatedInstance::restricted_assignment(
            3,
            vec![0, 0, 1],
            vec![4, 6, 2],
            vec![vec![0, 1], vec![0, 1], vec![2]],
            vec![1, 1],
            None,
        )
        .unwrap();
        assert!(inst.is_restricted_assignment());
        assert!(inst.has_class_uniform_restrictions());
        assert_eq!(inst.ptime(2, 0), INF);
        assert_eq!(inst.ptime(0, 0), 4);
    }

    #[test]
    fn class_uniform_checks() {
        let inst = small_unrelated();
        // jobs 0 and 1 share class 0 but differ on machine 0 (3 vs INF).
        assert!(!inst.has_class_uniform_ptimes());
        assert!(!inst.has_class_uniform_restrictions());

        let cu = UnrelatedInstance::new(
            2,
            vec![0, 0],
            vec![vec![3, 9], vec![3, 9]],
            vec![vec![1, 1]],
        )
        .unwrap();
        assert!(cu.has_class_uniform_ptimes());
        assert!(cu.has_class_uniform_restrictions());
    }

    #[test]
    fn class_workload_saturates_to_inf() {
        let inst = small_unrelated();
        assert_eq!(inst.class_workload(0, 0), INF); // job 1 infinite on machine 0
        assert_eq!(inst.class_workload(1, 0), 13);
        assert_eq!(inst.class_workload(0, 1), 5);
    }
}
