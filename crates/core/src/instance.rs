//! Instance model: jobs, setup classes and the three machine environments of
//! the paper (uniformly related, unrelated, restricted assignment).
//!
//! Terminology follows Section 1.1 of the paper. A job `j` has a *size* `p_j`
//! and belongs to exactly one class `k_j`; a class `k` has a *setup size*
//! `s_k` (uniform case) or machine-dependent setup times `s_ik` (unrelated
//! case). "Size" is the machine-independent quantity; the *processing time*
//! on a uniform machine `i` is `p_j / v_i`.
//!
//! ## Memory layout
//!
//! [`UnrelatedInstance`] stores `p_ij` and `s_ik` as **row-major flat
//! buffers** (`ptimes[j * m + i]`, `setups[k * m + i]`) rather than nested
//! `Vec<Vec<u64>>`: one allocation per matrix, contiguous rows, and `O(1)`
//! `#[inline]` accessors with no pointer chase per row. Both instance types
//! additionally precompute index tables at construction —
//! [`UnrelatedInstance::jobs_of_class`], [`UnrelatedInstance::nonempty_classes`]
//! and [`UnrelatedInstance::eligible_machines`] return borrowed slices
//! instead of allocating a fresh `Vec` per call, which keeps the search
//! heuristics' inner loops allocation-free.

use crate::error::InstanceError;
use crate::ratio::Ratio;

/// Index of a job in `0..n`.
pub type JobId = usize;
/// Index of a machine in `0..m`.
pub type MachineId = usize;
/// Index of a setup class in `0..K`.
pub type ClassId = usize;

/// Sentinel for an infinite processing/setup time (restricted assignment and
/// unrelated instances). Finite times must stay strictly below this value.
pub const INF: u64 = u64::MAX;

/// Returns true for finite time values.
#[inline]
pub fn is_finite(t: u64) -> bool {
    t != INF
}

/// CSR-style grouping of job ids by class: `jobs[offsets[k]..offsets[k + 1]]`
/// lists the jobs of class `k` in job-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClassIndex {
    offsets: Vec<usize>,
    jobs: Vec<JobId>,
    nonempty: Vec<ClassId>,
}

impl ClassIndex {
    fn build(num_classes: usize, classes: impl Iterator<Item = ClassId> + Clone) -> ClassIndex {
        let mut counts = vec![0usize; num_classes + 1];
        for k in classes.clone() {
            counts[k + 1] += 1;
        }
        for k in 0..num_classes {
            counts[k + 1] += counts[k];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut jobs = vec![0usize; offsets[num_classes]];
        for (j, k) in classes.enumerate() {
            jobs[cursor[k]] = j;
            cursor[k] += 1;
        }
        let nonempty = (0..num_classes).filter(|&k| offsets[k + 1] > offsets[k]).collect();
        ClassIndex { offsets, jobs, nonempty }
    }

    #[inline]
    fn of(&self, k: ClassId) -> &[JobId] {
        &self.jobs[self.offsets[k]..self.offsets[k + 1]]
    }
}

/// A job of a uniformly-related-machines instance: a size and a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Setup class of the job (`k_j`).
    pub class: ClassId,
    /// Machine-independent size (`p_j`).
    pub size: u64,
}

impl Job {
    #[inline]
    /// Creates a job of class `class` with size `size`.
    pub fn new(class: ClassId, size: u64) -> Job {
        Job { class, size }
    }
}

/// An instance of scheduling with setup times on **uniformly related
/// machines**: machine `i` has speed `v_i`, job `j` takes `p_j / v_i` time,
/// a setup for class `k` takes `s_k / v_i` time.
///
/// Identical machines are the special case of all speeds equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformInstance {
    speeds: Vec<u64>,
    setups: Vec<u64>,
    jobs: Vec<Job>,
    by_class: ClassIndex,
}

impl UniformInstance {
    /// Builds and validates an instance.
    pub fn new(speeds: Vec<u64>, setups: Vec<u64>, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if speeds.is_empty() {
            return Err(InstanceError::NoMachines);
        }
        if let Some(i) = speeds.iter().position(|&v| v == 0) {
            return Err(InstanceError::ZeroSpeed { machine: i });
        }
        for (j, job) in jobs.iter().enumerate() {
            if job.class >= setups.len() {
                return Err(InstanceError::ClassOutOfRange {
                    job: j,
                    class: job.class,
                    num_classes: setups.len(),
                });
            }
        }
        let by_class = ClassIndex::build(setups.len(), jobs.iter().map(|j| j.class));
        Ok(UniformInstance { speeds, setups, jobs, by_class })
    }

    /// Identical machines: `m` machines of speed 1.
    pub fn identical(m: usize, setups: Vec<u64>, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        UniformInstance::new(vec![1; m], setups, jobs)
    }

    #[inline]
    /// Number of jobs `n`.
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    #[inline]
    /// Number of machines `m`.
    pub fn m(&self) -> usize {
        self.speeds.len()
    }

    /// Number of setup classes `K`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.setups.len()
    }

    #[inline]
    /// Job `j`.
    pub fn job(&self, j: JobId) -> Job {
        self.jobs[j]
    }

    #[inline]
    /// All jobs, indexed by [`JobId`].
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    #[inline]
    /// Speed `v_i` of machine `i`.
    pub fn speed(&self, i: MachineId) -> u64 {
        self.speeds[i]
    }

    #[inline]
    /// All machine speeds, indexed by [`MachineId`].
    pub fn speeds(&self) -> &[u64] {
        &self.speeds
    }

    /// Setup size `s_k` of class `k`.
    #[inline]
    pub fn setup(&self, k: ClassId) -> u64 {
        self.setups[k]
    }

    #[inline]
    /// All setup sizes, indexed by [`ClassId`].
    pub fn setups(&self) -> &[u64] {
        &self.setups
    }

    /// Processing time of job `j` on machine `i` as an exact rational.
    #[inline]
    pub fn ptime(&self, i: MachineId, j: JobId) -> Ratio {
        Ratio::new(self.jobs[j].size, self.speeds[i])
    }

    /// Jobs of class `k`, in job-id order (precomputed; no allocation).
    #[inline]
    pub fn jobs_of_class(&self, k: ClassId) -> &[JobId] {
        self.by_class.of(k)
    }

    /// Classes that actually contain at least one job (precomputed).
    #[inline]
    pub fn nonempty_classes(&self) -> &[ClassId] {
        &self.by_class.nonempty
    }

    /// Total job size `Σ_j p_j`.
    pub fn total_job_size(&self) -> u64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// `Σ_j p_j + Σ_{k nonempty} s_k` — minimum total work any schedule pays.
    pub fn total_work_with_min_setups(&self) -> u64 {
        let setups: u64 = self.nonempty_classes().iter().map(|&k| self.setups[k]).sum();
        self.total_job_size() + setups
    }

    /// Sum of all machine speeds.
    pub fn total_speed(&self) -> u64 {
        self.speeds.iter().sum()
    }

    /// Fastest machine speed `v_max`.
    pub fn max_speed(&self) -> u64 {
        *self.speeds.iter().max().expect("non-empty by construction")
    }

    /// Slowest machine speed `v_min`.
    pub fn min_speed(&self) -> u64 {
        *self.speeds.iter().min().expect("non-empty by construction")
    }

    /// True iff all machines have equal speed.
    pub fn is_identical(&self) -> bool {
        self.speeds.iter().all(|&v| v == self.speeds[0])
    }

    /// Scales every job and setup size by `factor` (used by the
    /// simplification pipeline so that rounded sizes stay integral).
    pub fn scale_sizes(&self, factor: u64) -> UniformInstance {
        UniformInstance {
            speeds: self.speeds.clone(),
            setups: self.setups.iter().map(|&s| s * factor).collect(),
            jobs: self.jobs.iter().map(|&j| Job::new(j.class, j.size * factor)).collect(),
            by_class: self.by_class.clone(),
        }
    }
}

/// An instance of scheduling with setup times on **unrelated machines**:
/// arbitrary processing times `p_ij` and setup times `s_ik`, either of which
/// may be [`INF`] (restricted assignment).
///
/// Both matrices are stored as row-major flat buffers — `p_ij` at
/// `ptimes[j * m + i]`, `s_ik` at `setups[k * m + i]` — and class/eligibility
/// index tables are precomputed at construction (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrelatedInstance {
    m: usize,
    job_class: Vec<ClassId>,
    /// `ptimes[j * m + i] = p_ij` (row per job).
    ptimes: Vec<u64>,
    /// `setups[k * m + i] = s_ik` (row per class).
    setups: Vec<u64>,
    by_class: ClassIndex,
    /// CSR: machines with finite `cost(i, j)`, grouped by job.
    elig_offsets: Vec<usize>,
    elig_machines: Vec<MachineId>,
}

impl UnrelatedInstance {
    /// Builds and validates an instance.
    ///
    /// `ptimes[j][i]` is the processing time of job `j` on machine `i`;
    /// `setups[k][i]` is the setup time of class `k` on machine `i`.
    pub fn new(
        m: usize,
        job_class: Vec<ClassId>,
        ptimes: Vec<Vec<u64>>,
        setups: Vec<Vec<u64>>,
    ) -> Result<Self, InstanceError> {
        if m == 0 {
            return Err(InstanceError::NoMachines);
        }
        if ptimes.len() != job_class.len() {
            return Err(InstanceError::DimensionMismatch {
                what: "ptimes rows",
                expected: job_class.len(),
                got: ptimes.len(),
            });
        }
        for (j, row) in ptimes.iter().enumerate() {
            if row.len() != m {
                return Err(InstanceError::DimensionMismatch {
                    what: "ptimes columns",
                    expected: m,
                    got: row.len(),
                });
            }
            if row.iter().all(|&p| !is_finite(p)) {
                return Err(InstanceError::UnschedulableJob { job: j });
            }
        }
        for row in setups.iter() {
            if row.len() != m {
                return Err(InstanceError::DimensionMismatch {
                    what: "setup columns",
                    expected: m,
                    got: row.len(),
                });
            }
        }
        for (j, &k) in job_class.iter().enumerate() {
            if k >= setups.len() {
                return Err(InstanceError::ClassOutOfRange {
                    job: j,
                    class: k,
                    num_classes: setups.len(),
                });
            }
        }
        Self::from_flat(
            m,
            job_class,
            ptimes.into_iter().flatten().collect(),
            setups.into_iter().flatten().collect(),
        )
    }

    /// Builds and validates an instance from row-major flat matrices
    /// (`ptimes[j * m + i]`, `setups[k * m + i]`). This is the
    /// allocation-minimal constructor; [`UnrelatedInstance::new`] forwards
    /// to it after flattening.
    pub fn from_flat(
        m: usize,
        job_class: Vec<ClassId>,
        ptimes: Vec<u64>,
        setups: Vec<u64>,
    ) -> Result<Self, InstanceError> {
        if m == 0 {
            return Err(InstanceError::NoMachines);
        }
        let n = job_class.len();
        if ptimes.len() != n * m {
            return Err(InstanceError::DimensionMismatch {
                what: "flat ptimes length",
                expected: n * m,
                got: ptimes.len(),
            });
        }
        if !setups.len().is_multiple_of(m) {
            return Err(InstanceError::DimensionMismatch {
                what: "flat setups length",
                expected: (setups.len() / m + 1) * m,
                got: setups.len(),
            });
        }
        let num_classes = setups.len() / m;
        for (j, &k) in job_class.iter().enumerate() {
            if k >= num_classes {
                return Err(InstanceError::ClassOutOfRange { job: j, class: k, num_classes });
            }
        }
        let by_class = ClassIndex::build(num_classes, job_class.iter().copied());
        let mut inst = UnrelatedInstance {
            m,
            job_class,
            ptimes,
            setups,
            by_class,
            elig_offsets: Vec::new(),
            elig_machines: Vec::new(),
        };
        // Eligibility index: machines with finite p_ij AND finite s_{i,k_j}.
        // Row slices instead of per-cell `cost(i, j)` calls: one bounds
        // check per row, and the inner zip compiles to a straight sweep —
        // this loop dominates packed-frame decode for large instances.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut machines = Vec::new();
        offsets.push(0);
        for j in 0..n {
            let prow = &inst.ptimes[j * m..(j + 1) * m];
            let k = inst.job_class[j];
            let srow = &inst.setups[k * m..(k + 1) * m];
            let before = machines.len();
            for (i, (&p, &s)) in prow.iter().zip(srow).enumerate() {
                if is_finite(p) && is_finite(s) && is_finite(p.saturating_add(s)) {
                    machines.push(i);
                }
            }
            if machines.len() == before {
                return Err(InstanceError::UnschedulableJob { job: j });
            }
            offsets.push(machines.len());
        }
        inst.elig_offsets = offsets;
        inst.elig_machines = machines;
        Ok(inst)
    }

    /// Restricted assignment: job `j` has size `sizes[j]` on every machine in
    /// `eligible[j]` and `∞` elsewhere; class `k` has setup `class_setups[k]`
    /// on every machine in `class_machines[k]` and `∞` elsewhere (pass
    /// `None` to allow a class everywhere).
    pub fn restricted_assignment(
        m: usize,
        job_class: Vec<ClassId>,
        sizes: Vec<u64>,
        eligible: Vec<Vec<MachineId>>,
        class_setups: Vec<u64>,
        class_machines: Option<Vec<Vec<MachineId>>>,
    ) -> Result<Self, InstanceError> {
        if sizes.len() != job_class.len() || eligible.len() != job_class.len() {
            return Err(InstanceError::DimensionMismatch {
                what: "restricted assignment job vectors",
                expected: job_class.len(),
                got: sizes.len().min(eligible.len()),
            });
        }
        let mut ptimes = vec![INF; job_class.len() * m];
        for (j, elig) in eligible.iter().enumerate() {
            for &i in elig {
                ptimes[j * m + i] = sizes[j];
            }
        }
        let mut setups = vec![INF; class_setups.len() * m];
        match &class_machines {
            Some(rows) => {
                for (k, row) in rows.iter().enumerate() {
                    for &i in row {
                        setups[k * m + i] = class_setups[k];
                    }
                }
            }
            None => {
                for (k, s) in class_setups.iter().enumerate() {
                    setups[k * m..(k + 1) * m].fill(*s);
                }
            }
        }
        UnrelatedInstance::from_flat(m, job_class, ptimes, setups)
    }

    #[inline]
    /// Number of jobs `n`.
    pub fn n(&self) -> usize {
        self.job_class.len()
    }

    #[inline]
    /// Number of machines `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    #[inline]
    /// Number of setup classes `K`.
    pub fn num_classes(&self) -> usize {
        self.setups.len() / self.m
    }

    /// Class `k_j` of job `j`.
    #[inline]
    pub fn class_of(&self, j: JobId) -> ClassId {
        self.job_class[j]
    }

    /// Classes of all jobs, indexed by [`JobId`].
    #[inline]
    pub fn job_classes(&self) -> &[ClassId] {
        &self.job_class
    }

    /// Processing time `p_ij` (possibly [`INF`]).
    #[inline]
    pub fn ptime(&self, i: MachineId, j: JobId) -> u64 {
        self.ptimes[j * self.m + i]
    }

    /// Row `j` of the processing-time matrix: `p_ij` for all machines `i`.
    #[inline]
    pub fn ptimes_row(&self, j: JobId) -> &[u64] {
        &self.ptimes[j * self.m..(j + 1) * self.m]
    }

    /// Setup time `s_ik` (possibly [`INF`]).
    #[inline]
    pub fn setup(&self, i: MachineId, k: ClassId) -> u64 {
        self.setups[k * self.m + i]
    }

    /// Row `k` of the setup-time matrix: `s_ik` for all machines `i`.
    #[inline]
    pub fn setups_row(&self, k: ClassId) -> &[u64] {
        &self.setups[k * self.m..(k + 1) * self.m]
    }

    /// `p_ij + s_{i,k_j}`, saturating at [`INF`]: the cost of running `j` on
    /// an otherwise-empty machine `i`.
    #[inline]
    pub fn cost(&self, i: MachineId, j: JobId) -> u64 {
        let p = self.ptime(i, j);
        let s = self.setup(i, self.job_class[j]);
        if !is_finite(p) || !is_finite(s) {
            INF
        } else {
            p.saturating_add(s)
        }
    }

    /// Jobs of class `k`, in job-id order (precomputed; no allocation).
    #[inline]
    pub fn jobs_of_class(&self, k: ClassId) -> &[JobId] {
        self.by_class.of(k)
    }

    /// Classes with at least one job (precomputed).
    #[inline]
    pub fn nonempty_classes(&self) -> &[ClassId] {
        &self.by_class.nonempty
    }

    /// Machines on which job `j` can run with finite `p_ij` *and* finite
    /// setup for its class (precomputed; no allocation).
    #[inline]
    pub fn eligible_machines(&self, j: JobId) -> &[MachineId] {
        &self.elig_machines[self.elig_offsets[j]..self.elig_offsets[j + 1]]
    }

    /// True iff the instance is a restricted-assignment instance: each job's
    /// finite processing times are all equal.
    pub fn is_restricted_assignment(&self) -> bool {
        (0..self.n()).all(|j| {
            let mut finite = self.ptimes_row(j).iter().copied().filter(|&p| is_finite(p));
            match finite.next() {
                None => true,
                Some(first) => finite.all(|p| p == first),
            }
        })
    }

    /// True iff the restrictions are class-uniform (Section 3.3.1): all jobs
    /// of a class have the same set of machines with finite `p_ij`.
    pub fn has_class_uniform_restrictions(&self) -> bool {
        for k in 0..self.num_classes() {
            let jobs = self.jobs_of_class(k);
            if jobs.len() < 2 {
                continue;
            }
            let sig = |j: JobId| -> Vec<bool> {
                (0..self.m).map(|i| is_finite(self.ptime(i, j))).collect()
            };
            let first = sig(jobs[0]);
            if jobs[1..].iter().any(|&j| sig(j) != first) {
                return false;
            }
        }
        true
    }

    /// True iff processing times are class-uniform (Section 3.3.2):
    /// `k_j = k_{j'}` implies `p_ij = p_ij'` on every machine.
    pub fn has_class_uniform_ptimes(&self) -> bool {
        for k in 0..self.num_classes() {
            let jobs = self.jobs_of_class(k);
            for w in jobs.windows(2) {
                if self.ptimes_row(w[0]) != self.ptimes_row(w[1]) {
                    return false;
                }
            }
        }
        true
    }

    /// Total workload of class `k` on machine `i` — `p̄_ik = Σ_{j: k_j=k} p_ij`
    /// if every job of the class is finite on `i`, otherwise [`INF`]
    /// (Section 3.3.1 notation).
    pub fn class_workload(&self, i: MachineId, k: ClassId) -> u64 {
        let mut sum: u64 = 0;
        for &j in self.jobs_of_class(k) {
            let p = self.ptime(i, j);
            if !is_finite(p) {
                return INF;
            }
            sum = sum.saturating_add(p);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_uniform() -> UniformInstance {
        UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn uniform_accessors() {
        let inst = small_uniform();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.ptime(0, 1), Ratio::new(6, 2));
        assert_eq!(inst.jobs_of_class(0), vec![0, 2]);
        assert_eq!(inst.total_job_size(), 12);
        assert_eq!(inst.total_work_with_min_setups(), 12 + 3 + 5);
        assert_eq!(inst.total_speed(), 3);
        assert!(!inst.is_identical());
    }

    #[test]
    fn uniform_rejects_bad_input() {
        assert_eq!(UniformInstance::new(vec![], vec![1], vec![]), Err(InstanceError::NoMachines));
        assert_eq!(
            UniformInstance::new(vec![1, 0], vec![1], vec![]),
            Err(InstanceError::ZeroSpeed { machine: 1 })
        );
        assert!(matches!(
            UniformInstance::new(vec![1], vec![1], vec![Job::new(3, 1)]),
            Err(InstanceError::ClassOutOfRange { job: 0, class: 3, .. })
        ));
    }

    #[test]
    fn nonempty_classes_skips_empty() {
        let inst = UniformInstance::new(vec![1], vec![1, 2, 3], vec![Job::new(2, 5)]).unwrap();
        assert_eq!(inst.nonempty_classes(), vec![2]);
        assert_eq!(inst.total_work_with_min_setups(), 5 + 3);
    }

    #[test]
    fn identical_constructor() {
        let inst = UniformInstance::identical(4, vec![2], vec![Job::new(0, 7)]).unwrap();
        assert!(inst.is_identical());
        assert_eq!(inst.m(), 4);
    }

    #[test]
    fn scale_sizes_scales_jobs_and_setups() {
        let inst = small_uniform().scale_sizes(3);
        assert_eq!(inst.job(0).size, 12);
        assert_eq!(inst.setup(1), 15);
        assert_eq!(inst.speed(0), 2); // speeds untouched
    }

    fn small_unrelated() -> UnrelatedInstance {
        UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap()
    }

    #[test]
    fn unrelated_accessors() {
        let inst = small_unrelated();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.ptime(1, 0), 9);
        assert_eq!(inst.cost(0, 0), 4);
        assert_eq!(inst.cost(0, 1), INF); // infinite ptime
        assert_eq!(inst.cost(1, 2), INF); // infinite setup
        assert_eq!(inst.eligible_machines(2), vec![0]);
    }

    #[test]
    fn flat_rows_match_cell_accessors() {
        let inst = small_unrelated();
        for j in 0..inst.n() {
            for (i, &cell) in inst.ptimes_row(j).iter().enumerate() {
                assert_eq!(cell, inst.ptime(i, j));
            }
        }
        for k in 0..inst.num_classes() {
            for (i, &cell) in inst.setups_row(k).iter().enumerate() {
                assert_eq!(cell, inst.setup(i, k));
            }
        }
    }

    #[test]
    fn from_flat_matches_nested_constructor() {
        let nested = small_unrelated();
        let flat = UnrelatedInstance::from_flat(
            2,
            vec![0, 0, 1],
            vec![3, 9, INF, 4, 5, 5],
            vec![1, 2, 7, INF],
        )
        .unwrap();
        assert_eq!(nested, flat);
    }

    #[test]
    fn unrelated_rejects_unschedulable() {
        // Job 0 finite nowhere once setups are considered.
        let err = UnrelatedInstance::new(1, vec![0], vec![vec![5]], vec![vec![INF]]);
        assert_eq!(err, Err(InstanceError::UnschedulableJob { job: 0 }));
    }

    #[test]
    fn restricted_assignment_builder() {
        let inst = UnrelatedInstance::restricted_assignment(
            3,
            vec![0, 0, 1],
            vec![4, 6, 2],
            vec![vec![0, 1], vec![0, 1], vec![2]],
            vec![1, 1],
            None,
        )
        .unwrap();
        assert!(inst.is_restricted_assignment());
        assert!(inst.has_class_uniform_restrictions());
        assert_eq!(inst.ptime(2, 0), INF);
        assert_eq!(inst.ptime(0, 0), 4);
    }

    #[test]
    fn class_uniform_checks() {
        let inst = small_unrelated();
        // jobs 0 and 1 share class 0 but differ on machine 0 (3 vs INF).
        assert!(!inst.has_class_uniform_ptimes());
        assert!(!inst.has_class_uniform_restrictions());

        let cu =
            UnrelatedInstance::new(2, vec![0, 0], vec![vec![3, 9], vec![3, 9]], vec![vec![1, 1]])
                .unwrap();
        assert!(cu.has_class_uniform_ptimes());
        assert!(cu.has_class_uniform_restrictions());
    }

    #[test]
    fn class_workload_saturates_to_inf() {
        let inst = small_unrelated();
        assert_eq!(inst.class_workload(0, 0), INF); // job 1 infinite on machine 0
        assert_eq!(inst.class_workload(1, 0), 13);
        assert_eq!(inst.class_workload(0, 1), 5);
    }
}
