//! Descriptive statistics of instances: the quantities that predict which
//! algorithm (and which guarantee) is the right tool.
//!
//! The experiments of EXPERIMENTS.md show behaviour switching on a few
//! structural measures — setup weight relative to job work (E8/E10), class
//! population skew, machine heterogeneity (E7), eligibility density (E5).
//! This module computes them once, uniformly, for both machine models;
//! `sst info` prints them. It also hosts the *service-side* statistics: a
//! fixed-size log-bucketed [`LatencyHistogram`] that the `sst serve` worker
//! pool uses for running throughput/latency percentiles.

use crate::instance::{is_finite, UniformInstance, UnrelatedInstance};

/// A constant-space latency histogram with power-of-two buckets.
///
/// Bucket `b` counts samples `v` with `⌊log₂ v⌋ = b` (bucket 0 also takes
/// `v = 0`). Percentiles interpolate rank-weighted *within* the bucket
/// (samples assumed uniform over the bucket's range), so a quantile is off
/// by at most the in-bucket distribution skew instead of the full 2× a raw
/// bucket upper bound would give — the right trade for a hot server path:
/// `record` is a couple of arithmetic instructions, the struct is one
/// cache line of counters, and no allocation ever happens. Units are
/// whatever the caller records (`sst serve` records microseconds).
///
/// Equality is bucket-exact: two histograms compare equal iff every bucket
/// count, the sample count, the (saturating) sum and the max agree — the
/// property [`LatencyHistogram::merge`] is tested against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`, as if every sample recorded into `other`
    /// had been recorded here instead: bucket counts and sample counts add,
    /// sums add saturating (matching [`Self::record`]), the max is the max
    /// of both. Exact at bucket granularity — merging per-worker histograms
    /// is indistinguishable from recording the union of their samples into
    /// one histogram, which is what lets `sst serve` aggregate worker-local
    /// telemetry without sharing a hot lock.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), rank-weighted within its bucket:
    /// the quantile's rank is located in the cumulative counts, and the
    /// estimate interpolates linearly across the bucket's value range
    /// (samples assumed uniform inside the bucket; each of the bucket's `c`
    /// samples gets a `width/c` slice and the estimate is its slice's left
    /// edge, so a sparse bucket estimates low rather than echoing the
    /// bucket's upper bound). The top rank is the observed maximum, which
    /// is tracked exactly. The result is monotone in `q`, never below the
    /// bucket's lower bound, and capped at the observed maximum; 0 when
    /// empty. `percentile(0.5)` is the median, `percentile(0.99)` the p99.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            // The largest sample is known exactly — no bucket estimate.
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Bucket b spans [lower, upper] (bucket 0 also holds v = 0;
                // the top bucket is clipped to the observed max).
                let lower = if b == 0 { 0 } else { 1u64 << b };
                let upper = if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                let upper = upper.min(self.max);
                let width = (upper - lower).saturating_add(1);
                // `pos` is the rank's 1-based position inside the bucket:
                // the pos-th of c uniform samples sits at
                // lower + ⌊(pos−1)·width/c⌋ — pos = 1 maps to `lower`,
                // monotone in between, and c = width reproduces the dense
                // case lower + pos − 1 exactly.
                let pos = rank - seen;
                let est = ((pos - 1) as u128 * width as u128 / c as u128) as u64;
                return (lower + est).min(self.max);
            }
            seen += c;
        }
        self.max
    }
}

/// Summary statistics of a uniform instance.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformStats {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Number of classes with at least one job.
    pub nonempty_classes: usize,
    /// Total job size `Σ p_j`.
    pub total_job_size: u64,
    /// `Σ_{k nonempty} s_k / max(1, Σ p_j)` — how much of the mandatory
    /// work is setups. `> 1` means setups dominate (batching decides).
    pub setup_to_work: f64,
    /// `v_max / v_min` — speed spread (1 = identical machines).
    pub speed_spread: f64,
    /// Largest share of jobs held by a single class, in `[1/K, 1]`.
    pub class_concentration: f64,
    /// Mean jobs per nonempty class.
    pub mean_class_population: f64,
}

/// Computes [`UniformStats`]. Zero-job instances give zeroed ratios.
pub fn uniform_stats(inst: &UniformInstance) -> UniformStats {
    let nonempty = inst.nonempty_classes();
    let total = inst.total_job_size();
    let setups: u64 = nonempty.iter().map(|&k| inst.setup(k)).sum();
    let mut pop = vec![0usize; inst.num_classes()];
    for j in 0..inst.n() {
        pop[inst.job(j).class] += 1;
    }
    let max_pop = pop.iter().copied().max().unwrap_or(0);
    UniformStats {
        n: inst.n(),
        m: inst.m(),
        nonempty_classes: nonempty.len(),
        total_job_size: total,
        setup_to_work: setups as f64 / total.max(1) as f64,
        speed_spread: inst.max_speed() as f64 / inst.min_speed() as f64,
        class_concentration: if inst.n() == 0 { 0.0 } else { max_pop as f64 / inst.n() as f64 },
        mean_class_population: if nonempty.is_empty() {
            0.0
        } else {
            inst.n() as f64 / nonempty.len() as f64
        },
    }
}

/// Summary statistics of an unrelated instance.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrelatedStats {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Number of classes with at least one job.
    pub nonempty_classes: usize,
    /// Fraction of finite `(j, i)` processing-time cells, in `(0, 1]`.
    pub density: f64,
    /// Mean eligible machines per job.
    pub mean_eligibility: f64,
    /// Max over finite rows of `max p_ij / min p_ij` — how "unrelated" the
    /// matrix really is (1 on restricted-assignment instances).
    pub heterogeneity: f64,
    /// Mean over machines of `Σ_k s_ik (finite) / Σ_j p_ij (finite)`.
    pub setup_to_work: f64,
    /// Whether the three special-case structures hold (restricted
    /// assignment, class-uniform restrictions, class-uniform times).
    pub structure: (bool, bool, bool),
}

/// Computes [`UnrelatedStats`].
pub fn unrelated_stats(inst: &UnrelatedInstance) -> UnrelatedStats {
    let n = inst.n();
    let m = inst.m();
    let mut finite_cells = 0usize;
    let mut elig_sum = 0usize;
    let mut hetero: f64 = 1.0;
    for j in 0..n {
        let row: Vec<u64> = (0..m).map(|i| inst.ptime(i, j)).filter(|&p| is_finite(p)).collect();
        finite_cells += row.len();
        elig_sum += inst.eligible_machines(j).len();
        if let (Some(&max), Some(&min)) = (row.iter().max(), row.iter().min()) {
            if min > 0 {
                hetero = hetero.max(max as f64 / min as f64);
            }
        }
    }
    let mut setup_ratio = 0.0f64;
    for i in 0..m {
        let s: u64 =
            (0..inst.num_classes()).map(|k| inst.setup(i, k)).filter(|&s| is_finite(s)).sum();
        let p: u64 = (0..n).map(|j| inst.ptime(i, j)).filter(|&p| is_finite(p)).sum();
        setup_ratio += s as f64 / p.max(1) as f64;
    }
    UnrelatedStats {
        n,
        m,
        nonempty_classes: inst.nonempty_classes().len(),
        density: if n == 0 { 1.0 } else { finite_cells as f64 / (n * m) as f64 },
        mean_eligibility: if n == 0 { 0.0 } else { elig_sum as f64 / n as f64 },
        heterogeneity: hetero,
        setup_to_work: if m == 0 { 0.0 } else { setup_ratio / m as f64 },
        structure: (
            inst.is_restricted_assignment(),
            inst.has_class_uniform_restrictions(),
            inst.has_class_uniform_ptimes(),
        ),
    }
}

impl std::fmt::Display for UniformStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs/machines/classes: {}/{}/{}", self.n, self.m, self.nonempty_classes)?;
        writeln!(f, "total job size:        {}", self.total_job_size)?;
        writeln!(f, "setup-to-work ratio:   {:.3}", self.setup_to_work)?;
        writeln!(f, "speed spread:          {:.2}", self.speed_spread)?;
        writeln!(f, "class concentration:   {:.3}", self.class_concentration)?;
        write!(f, "mean class population: {:.2}", self.mean_class_population)
    }
}

impl std::fmt::Display for UnrelatedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs/machines/classes: {}/{}/{}", self.n, self.m, self.nonempty_classes)?;
        writeln!(f, "matrix density:        {:.3}", self.density)?;
        writeln!(f, "mean eligibility:      {:.2}", self.mean_eligibility)?;
        writeln!(f, "heterogeneity:         {:.2}", self.heterogeneity)?;
        writeln!(f, "setup-to-work ratio:   {:.3}", self.setup_to_work)?;
        let (ra, cur, cupt) = self.structure;
        write!(
            f,
            "structure:             restricted={ra}, class-uniform-restr={cur}, class-uniform-ptimes={cupt}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Job, INF};

    #[test]
    fn uniform_stats_basic() {
        let inst = UniformInstance::new(
            vec![1, 4],
            vec![10, 5, 99],
            vec![Job::new(0, 10), Job::new(0, 10), Job::new(1, 20)],
        )
        .unwrap();
        let s = uniform_stats(&inst);
        assert_eq!(s.n, 3);
        assert_eq!(s.nonempty_classes, 2); // class 2 empty → its setup not counted
        assert_eq!(s.total_job_size, 40);
        assert!((s.setup_to_work - 15.0 / 40.0).abs() < 1e-12);
        assert!((s.speed_spread - 4.0).abs() < 1e-12);
        assert!((s.class_concentration - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_class_population - 1.5).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("setup-to-work ratio:   0.375"), "{text}");
    }

    #[test]
    fn uniform_stats_empty_instance() {
        let inst = UniformInstance::new(vec![2], vec![3], vec![]).unwrap();
        let s = uniform_stats(&inst);
        assert_eq!(s.setup_to_work, 0.0);
        assert_eq!(s.class_concentration, 0.0);
        assert_eq!(s.mean_class_population, 0.0);
    }

    #[test]
    fn unrelated_stats_density_and_structure() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 1],
            vec![vec![4, INF], vec![6, 6]],
            vec![vec![1, 1], vec![2, 2]],
        )
        .unwrap();
        let s = unrelated_stats(&inst);
        assert!((s.density - 0.75).abs() < 1e-12);
        assert!((s.mean_eligibility - 1.5).abs() < 1e-12);
        assert!((s.heterogeneity - 1.0).abs() < 1e-12); // finite rows constant
        assert!(s.structure.0, "finite ptimes per job are constant → RA");
        let text = s.to_string();
        assert!(text.contains("restricted=true"), "{text}");
    }

    #[test]
    fn latency_histogram_percentiles_interpolate_within_buckets() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        // Hand-computed oracles. p50: rank 500 lands in bucket 8
        // ([256, 511], 256 samples, 255 before), position 245 →
        // 256 + ⌊244·256/256⌋ = 500 — exactly the true median, because the
        // samples really are uniform within the bucket. p90/p99 land in
        // bucket 9 clipped to the observed max ([512, 1000], 489 samples,
        // 511 before): 512 + ⌊388·489/489⌋ = 900 and
        // 512 + ⌊478·489/489⌋ = 990. p100 is the tracked max, exact.
        assert_eq!(h.percentile(0.5), 500);
        assert_eq!(h.percentile(0.9), 900);
        assert_eq!(h.percentile(0.99), 990);
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn latency_histogram_sparse_buckets_estimate_low_not_upper_bound() {
        // One sample deep in a wide bucket plus one far outlier: the old
        // upper-bound behavior reported the median as 1023 (≈ 2× the
        // truth); left-edge interpolation reports the bucket floor, and
        // the top rank is the exact max.
        let mut h = LatencyHistogram::new();
        h.record(513);
        h.record(5000);
        assert_eq!(h.percentile(0.5), 512, "rank 1 of 1 in [512, 1023] → left edge");
        assert_eq!(h.percentile(1.0), 5000, "top rank is the exact max");
    }

    #[test]
    fn latency_histogram_percentile_is_monotone_and_capped() {
        // Skewed data: interpolation must stay monotone in q and never
        // exceed the observed maximum.
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 2, 3, 900, 901, 5000] {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let estimates: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        assert!(estimates.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {estimates:?}");
        assert_eq!(*estimates.last().unwrap(), 5000, "p100 is the max");
        assert!(estimates.iter().all(|&e| e <= 5000));
    }

    #[test]
    fn latency_histogram_merge_equals_recording_the_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for v in [1u64, 7, 300, 4096, 0] {
            a.record(v);
            union.record(v);
        }
        for v in [2u64, 300, 9999, u64::MAX] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge must be bucket-exact");
        // Merging an empty histogram is a no-op on both sides.
        let empty = LatencyHistogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before);
        let mut fresh = LatencyHistogram::new();
        fresh.merge(&union);
        assert_eq!(fresh, union);
    }

    #[test]
    fn latency_histogram_edge_cases() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = LatencyHistogram::new();
        h.record(0); // value 0 lands in bucket 0
        h.record(u64::MAX); // top bucket must not overflow the bound
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn unrelated_heterogeneity_detects_spread() {
        let inst = UnrelatedInstance::new(2, vec![0], vec![vec![2, 10]], vec![vec![1, 1]]).unwrap();
        let s = unrelated_stats(&inst);
        assert!((s.heterogeneity - 5.0).abs() < 1e-12);
        assert!(!s.structure.0);
    }
}
