//! The [`MachineModel`] trait: one abstraction over the machine
//! environments of the paper, capturing exactly what the per-model code
//! used to duplicate.
//!
//! The paper analyzes the setup-class problem on uniformly related *and*
//! unrelated machines with one shared toolkit, and Section 3.3 builds on
//! the splittable substrate of Correa et al. \[5\]. The implementation
//! mirrors that: everything the incremental tracker
//! ([`crate::tracker::LoadTracker`]) and the generic search heuristics
//! (`sst_algos::local_search`, `sst_algos::annealing`) need from a machine
//! environment is:
//!
//! * an **instance type** and its shape accessors (`n`, `m`, `K`, job
//!   classes);
//! * the **raw load unit** — how many `u64` units a job or a setup adds to
//!   a machine (work units on uniform machines, time units on unrelated
//!   ones), with `None` encoding infeasibility (`∞` cells);
//! * the **ordered load key** the makespan is measured in — plain `u64`
//!   time for unrelated machines, the exact [`Ratio`] `work / speed` for
//!   uniform ones — i.e. the `Cost` arithmetic of the model;
//! * whether times are **machine-independent**, which decides if a
//!   whole-class move can reuse the cached departing sum for the arriving
//!   side (`O(log m)` uniform class moves vs `O(B + log m)` unrelated
//!   ones).
//!
//! Three models implement the trait:
//!
//! | marker | instance | key | notes |
//! |---|---|---|---|
//! | [`Uniform`] | [`UniformInstance`] | [`Ratio`] | machine-independent sizes |
//! | [`Unrelated`] | [`UnrelatedInstance`] | `u64` | `∞` cells allowed |
//! | [`Splittable`] | [`UnrelatedInstance`] | `u64` | integral sub-space of the split model |
//!
//! [`Splittable`] shares the unrelated instance data: in the splittable
//! model of Correa et al. a class's workload may be divided across
//! machines (each paying the full setup), and a *job-granular* schedule is
//! exactly a split schedule whose shares are job subsets — its per-machine
//! load is the same `Σ p_ij + Σ s_ik` sum. Trackers and descent therefore
//! operate on the integral sub-space of the split model through this
//! marker; fractional shares live in `sst_algos::splittable`.
//!
//! Adding machine model number four is: implement [`MachineModel`] for a
//! marker type, and the tracker, local search and annealing come for free
//! (see the "Adding a machine model" guide in the repository README).

use crate::delta::{self, DeltaError, InstanceDelta};
use crate::instance::{is_finite, ClassId, JobId, MachineId, UniformInstance, UnrelatedInstance};
use crate::ratio::Ratio;
use crate::schedule::Schedule;
use crate::ScheduleError;

/// A machine environment: the per-model behavior behind the generic
/// tracker and search heuristics. See the [module docs](self).
///
/// All methods are associated functions over marker types (no `self`), so
/// generic code monomorphizes to exactly the loops the hand-written
/// per-model implementations used to contain.
pub trait MachineModel {
    /// The instance type of this model.
    type Instance;

    /// Ordered load key — the unit makespans are measured and compared in
    /// (`u64` time for unrelated machines, exact [`Ratio`] for uniform).
    type Key: Ord + Copy + std::fmt::Debug;

    /// The protocol/file-format `kind` tag of this model.
    const KIND: &'static str;

    /// True when job and setup times do not depend on the machine (in raw
    /// load units). Lets whole-class moves reuse the cached per-slot sum
    /// for the arriving side instead of an `O(B)` re-sum.
    const MACHINE_INDEPENDENT_TIMES: bool;

    /// Number of jobs.
    fn n(inst: &Self::Instance) -> usize;
    /// Number of machines.
    fn m(inst: &Self::Instance) -> usize;
    /// Number of setup classes.
    fn num_classes(inst: &Self::Instance) -> usize;
    /// Class of job `j`.
    fn class_of(inst: &Self::Instance, j: JobId) -> ClassId;

    /// Raw load units job `j` adds to machine `i`; `None` when infeasible
    /// (infinite processing time).
    fn job_time(inst: &Self::Instance, i: MachineId, j: JobId) -> Option<u64>;

    /// Raw load units class `k`'s setup adds to machine `i`; `None` when
    /// infeasible (infinite setup time).
    fn setup_time(inst: &Self::Instance, i: MachineId, k: ClassId) -> Option<u64>;

    /// The ordered key of machine `i` carrying `load` raw units.
    fn key(inst: &Self::Instance, i: MachineId, load: u64) -> Self::Key;

    /// The key of an empty machine set — the identity of `max`.
    fn zero_key() -> Self::Key;

    /// Lossy float view of a key (temperature scales, display).
    fn key_to_f64(key: Self::Key) -> f64;

    /// Applies one [`InstanceDelta`] (see [`crate::delta`]) and returns the
    /// edited, re-validated instance. The session layer mutates instances
    /// exclusively through this hook, so delta semantics (swap-remove job
    /// ids, appended classes) are identical across machine models.
    fn apply_delta(
        inst: &Self::Instance,
        delta: &InstanceDelta,
    ) -> Result<Self::Instance, DeltaError>;

    /// Applies a whole delta batch with **one** instance rebuild (the
    /// repair path's fast variant — per-edit application would pay the
    /// `O(n·m)` reconstruction once per edit). Equivalent to folding
    /// [`Self::apply_delta`], except that validation runs on the final
    /// state only (pinned, on per-step-valid sequences, by the
    /// differential proptests).
    fn apply_deltas(
        inst: &Self::Instance,
        deltas: &[InstanceDelta],
    ) -> Result<Self::Instance, DeltaError>;
}

/// Uniformly related machines: machine `i` has speed `v_i`, loads are
/// tracked in machine-independent *work* units, and the key is the exact
/// rational `work / v_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uniform;

impl MachineModel for Uniform {
    type Instance = UniformInstance;
    type Key = Ratio;

    const KIND: &'static str = "uniform";
    const MACHINE_INDEPENDENT_TIMES: bool = true;

    #[inline]
    fn n(inst: &UniformInstance) -> usize {
        inst.n()
    }
    #[inline]
    fn m(inst: &UniformInstance) -> usize {
        inst.m()
    }
    #[inline]
    fn num_classes(inst: &UniformInstance) -> usize {
        inst.num_classes()
    }
    #[inline]
    fn class_of(inst: &UniformInstance, j: JobId) -> ClassId {
        inst.job(j).class
    }
    #[inline]
    fn job_time(inst: &UniformInstance, _i: MachineId, j: JobId) -> Option<u64> {
        Some(inst.job(j).size)
    }
    #[inline]
    fn setup_time(inst: &UniformInstance, _i: MachineId, k: ClassId) -> Option<u64> {
        Some(inst.setup(k))
    }
    #[inline]
    fn key(inst: &UniformInstance, i: MachineId, load: u64) -> Ratio {
        Ratio::new(load, inst.speed(i))
    }
    #[inline]
    fn zero_key() -> Ratio {
        Ratio::ZERO
    }
    #[inline]
    fn key_to_f64(key: Ratio) -> f64 {
        key.to_f64()
    }
    #[inline]
    fn apply_delta(
        inst: &UniformInstance,
        d: &InstanceDelta,
    ) -> Result<UniformInstance, DeltaError> {
        delta::apply_uniform(inst, d)
    }
    #[inline]
    fn apply_deltas(
        inst: &UniformInstance,
        ds: &[InstanceDelta],
    ) -> Result<UniformInstance, DeltaError> {
        delta::apply_uniform_all(inst, ds)
    }
}

/// Unrelated machines: full `p_ij` / `s_ik` matrices, `∞` cells allowed;
/// loads are plain time units and are their own key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unrelated;

impl MachineModel for Unrelated {
    type Instance = UnrelatedInstance;
    type Key = u64;

    const KIND: &'static str = "unrelated";
    const MACHINE_INDEPENDENT_TIMES: bool = false;

    #[inline]
    fn n(inst: &UnrelatedInstance) -> usize {
        inst.n()
    }
    #[inline]
    fn m(inst: &UnrelatedInstance) -> usize {
        inst.m()
    }
    #[inline]
    fn num_classes(inst: &UnrelatedInstance) -> usize {
        inst.num_classes()
    }
    #[inline]
    fn class_of(inst: &UnrelatedInstance, j: JobId) -> ClassId {
        inst.class_of(j)
    }
    #[inline]
    fn job_time(inst: &UnrelatedInstance, i: MachineId, j: JobId) -> Option<u64> {
        let p = inst.ptime(i, j);
        is_finite(p).then_some(p)
    }
    #[inline]
    fn setup_time(inst: &UnrelatedInstance, i: MachineId, k: ClassId) -> Option<u64> {
        let s = inst.setup(i, k);
        is_finite(s).then_some(s)
    }
    #[inline]
    fn key(_inst: &UnrelatedInstance, _i: MachineId, load: u64) -> u64 {
        load
    }
    #[inline]
    fn zero_key() -> u64 {
        0
    }
    #[inline]
    fn key_to_f64(key: u64) -> f64 {
        key as f64
    }
    #[inline]
    fn apply_delta(
        inst: &UnrelatedInstance,
        d: &InstanceDelta,
    ) -> Result<UnrelatedInstance, DeltaError> {
        delta::apply_unrelated(inst, d)
    }
    #[inline]
    fn apply_deltas(
        inst: &UnrelatedInstance,
        ds: &[InstanceDelta],
    ) -> Result<UnrelatedInstance, DeltaError> {
        delta::apply_unrelated_all(inst, ds)
    }
}

/// The splittable model of Correa et al. \[5\] (Section 3.3's substrate),
/// restricted to its **integral sub-space**: a job-granular schedule is a
/// split schedule whose shares are job subsets, and its per-machine load
/// is the same `Σ p_ij + Σ s_ik` sum the unrelated model uses — so the
/// trait delegates to [`Unrelated`] cell for cell. What differs is the
/// *solution space* around it: fractional shares, the split-aware solvers
/// and the `"splittable"` protocol kind (see `sst_algos::splittable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splittable;

impl MachineModel for Splittable {
    type Instance = UnrelatedInstance;
    type Key = u64;

    const KIND: &'static str = "splittable";
    const MACHINE_INDEPENDENT_TIMES: bool = false;

    #[inline]
    fn n(inst: &UnrelatedInstance) -> usize {
        Unrelated::n(inst)
    }
    #[inline]
    fn m(inst: &UnrelatedInstance) -> usize {
        Unrelated::m(inst)
    }
    #[inline]
    fn num_classes(inst: &UnrelatedInstance) -> usize {
        Unrelated::num_classes(inst)
    }
    #[inline]
    fn class_of(inst: &UnrelatedInstance, j: JobId) -> ClassId {
        Unrelated::class_of(inst, j)
    }
    #[inline]
    fn job_time(inst: &UnrelatedInstance, i: MachineId, j: JobId) -> Option<u64> {
        Unrelated::job_time(inst, i, j)
    }
    #[inline]
    fn setup_time(inst: &UnrelatedInstance, i: MachineId, k: ClassId) -> Option<u64> {
        Unrelated::setup_time(inst, i, k)
    }
    #[inline]
    fn key(inst: &UnrelatedInstance, i: MachineId, load: u64) -> u64 {
        Unrelated::key(inst, i, load)
    }
    #[inline]
    fn zero_key() -> u64 {
        Unrelated::zero_key()
    }
    #[inline]
    fn key_to_f64(key: u64) -> f64 {
        Unrelated::key_to_f64(key)
    }
    #[inline]
    fn apply_delta(
        inst: &UnrelatedInstance,
        d: &InstanceDelta,
    ) -> Result<UnrelatedInstance, DeltaError> {
        Unrelated::apply_delta(inst, d)
    }
    #[inline]
    fn apply_deltas(
        inst: &UnrelatedInstance,
        ds: &[InstanceDelta],
    ) -> Result<UnrelatedInstance, DeltaError> {
        Unrelated::apply_deltas(inst, ds)
    }
}

/// Per-machine raw loads of `sched` under model `M` — the `O(n)`
/// full-recompute evaluator, written once against the trait. Agrees with
/// [`crate::schedule::uniform_loads`] / [`crate::schedule::unrelated_loads`]
/// on their models (pinned by the tracker proptests) and backs the generic
/// full-recompute search baselines.
pub fn loads<M: MachineModel>(
    inst: &M::Instance,
    sched: &Schedule,
) -> Result<Vec<u64>, ScheduleError> {
    let (n, m, kk) = (M::n(inst), M::m(inst), M::num_classes(inst));
    if sched.n() != n {
        return Err(ScheduleError::WrongLength { expected: n, got: sched.n() });
    }
    let mut load = vec![0u64; m];
    let mut seen = vec![false; m * kk];
    for j in 0..n {
        let i = sched.machine_of(j);
        if i >= m {
            return Err(ScheduleError::MachineOutOfRange { job: j, machine: i, m });
        }
        let p = M::job_time(inst, i, j)
            .ok_or(ScheduleError::InfiniteProcessingTime { job: j, machine: i })?;
        let k = M::class_of(inst, j);
        if !seen[i * kk + k] {
            seen[i * kk + k] = true;
            load[i] += M::setup_time(inst, i, k)
                .ok_or(ScheduleError::InfiniteSetup { class: k, machine: i })?;
        }
        load[i] += p;
    }
    Ok(load)
}

/// Makespan key of `sched` under model `M` (max over [`loads`]).
pub fn makespan_key<M: MachineModel>(
    inst: &M::Instance,
    sched: &Schedule,
) -> Result<M::Key, ScheduleError> {
    let loads = loads::<M>(inst, sched)?;
    Ok(loads.iter().enumerate().map(|(i, &l)| M::key(inst, i, l)).max().unwrap_or_else(M::zero_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Job, INF};
    use crate::schedule::{uniform_loads, unrelated_loads};

    #[test]
    fn generic_loads_match_the_per_model_evaluators() {
        let u = UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap();
        let sched = Schedule::new(vec![0, 1, 0]);
        assert_eq!(loads::<Uniform>(&u, &sched).unwrap(), uniform_loads(&u, &sched).unwrap());

        let r = UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap();
        let sched = Schedule::new(vec![0, 1, 0]);
        assert_eq!(loads::<Unrelated>(&r, &sched).unwrap(), unrelated_loads(&r, &sched).unwrap());
        // The splittable integral view evaluates identically.
        assert_eq!(loads::<Splittable>(&r, &sched).unwrap(), unrelated_loads(&r, &sched).unwrap());
        // Infeasible placements error like the per-model evaluators.
        let bad = Schedule::new(vec![0, 0, 0]);
        assert_eq!(
            loads::<Unrelated>(&r, &bad).unwrap_err(),
            unrelated_loads(&r, &bad).unwrap_err()
        );
    }

    #[test]
    fn keys_order_like_the_model_arithmetic() {
        let u = UniformInstance::new(vec![2, 1], vec![0], vec![Job::new(0, 4)]).unwrap();
        // 5 work units on speed 2 (5/2) < 3 work units on speed 1 (3/1).
        assert!(Uniform::key(&u, 0, 5) < Uniform::key(&u, 1, 3));
        assert_eq!(Uniform::key_to_f64(Ratio::new(5, 2)), 2.5);
        assert_eq!(Unrelated::zero_key(), 0);
        assert_eq!(Splittable::KIND, "splittable");
    }
}
