//! Fluent builders for instances.
//!
//! The positional constructors ([`UniformInstance::new`],
//! [`UnrelatedInstance::new`]) are exact mirrors of the paper's notation,
//! which is right for the algorithms but awkward for application code that
//! thinks in terms of "machines", "job families" and "jobs". The builders
//! let a downstream user assemble instances incrementally, with class
//! handles instead of raw indices:
//!
//! ```
//! use sst_core::builder::UniformBuilder;
//!
//! let mut b = UniformBuilder::new();
//! b.machine(2).machine(1);                   // speeds
//! let paint = b.class(3);                    // setup size 3
//! let weld = b.class(5);
//! b.job(paint, 4).job(weld, 6).job(paint, 2);
//! let inst = b.build().unwrap();
//! assert_eq!(inst.n(), 3);
//! assert_eq!(inst.m(), 2);
//! assert_eq!(inst.setup(paint.id()), 3);
//! ```

use crate::error::InstanceError;
use crate::instance::{ClassId, Job, UniformInstance, UnrelatedInstance, INF};

/// Typed handle to a class added through a builder; prevents mixing up raw
/// class indices with job or machine indices at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassHandle(ClassId);

impl ClassHandle {
    /// The underlying class id in the built instance.
    pub fn id(self) -> ClassId {
        self.0
    }
}

/// Incremental builder for [`UniformInstance`]s.
#[derive(Debug, Clone, Default)]
pub struct UniformBuilder {
    speeds: Vec<u64>,
    setups: Vec<u64>,
    jobs: Vec<Job>,
}

impl UniformBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a machine with the given speed.
    pub fn machine(&mut self, speed: u64) -> &mut Self {
        self.speeds.push(speed);
        self
    }

    /// Adds `count` identical machines of the given speed.
    pub fn machines(&mut self, count: usize, speed: u64) -> &mut Self {
        self.speeds.extend(std::iter::repeat_n(speed, count));
        self
    }

    /// Declares a setup class with the given setup size.
    pub fn class(&mut self, setup: u64) -> ClassHandle {
        self.setups.push(setup);
        ClassHandle(self.setups.len() - 1)
    }

    /// Adds one job of the given class and size.
    pub fn job(&mut self, class: ClassHandle, size: u64) -> &mut Self {
        self.jobs.push(Job::new(class.0, size));
        self
    }

    /// Adds a batch of jobs of one class.
    pub fn jobs(&mut self, class: ClassHandle, sizes: &[u64]) -> &mut Self {
        self.jobs.extend(sizes.iter().map(|&p| Job::new(class.0, p)));
        self
    }

    /// Validates and builds the instance.
    pub fn build(&self) -> Result<UniformInstance, InstanceError> {
        UniformInstance::new(self.speeds.clone(), self.setups.clone(), self.jobs.clone())
    }
}

/// Incremental builder for [`UnrelatedInstance`]s. Machines are declared
/// first; jobs and classes then provide their per-machine time rows (or
/// eligibility lists for restricted assignment).
#[derive(Debug, Clone, Default)]
pub struct UnrelatedBuilder {
    m: usize,
    setups: Vec<Vec<u64>>,
    job_class: Vec<ClassId>,
    ptimes: Vec<Vec<u64>>,
}

impl UnrelatedBuilder {
    /// A builder for `m` machines.
    pub fn new(m: usize) -> Self {
        UnrelatedBuilder { m, ..Default::default() }
    }

    /// Declares a class with per-machine setup times (`row.len()` must be
    /// `m`; use [`INF`] for machines that cannot host the class).
    ///
    /// # Panics
    /// Panics if the row length differs from `m`.
    pub fn class(&mut self, setup_row: Vec<u64>) -> ClassHandle {
        assert_eq!(setup_row.len(), self.m, "setup row must cover every machine");
        self.setups.push(setup_row);
        ClassHandle(self.setups.len() - 1)
    }

    /// Declares a class with the same setup time everywhere.
    pub fn class_uniform_setup(&mut self, setup: u64) -> ClassHandle {
        self.setups.push(vec![setup; self.m]);
        ClassHandle(self.setups.len() - 1)
    }

    /// Adds a job with per-machine processing times.
    ///
    /// # Panics
    /// Panics if the row length differs from `m`.
    pub fn job(&mut self, class: ClassHandle, ptime_row: Vec<u64>) -> &mut Self {
        assert_eq!(ptime_row.len(), self.m, "ptime row must cover every machine");
        self.job_class.push(class.0);
        self.ptimes.push(ptime_row);
        self
    }

    /// Adds a restricted-assignment job: size `p` on the listed machines,
    /// [`INF`] elsewhere.
    pub fn job_restricted(&mut self, class: ClassHandle, p: u64, eligible: &[usize]) -> &mut Self {
        let mut row = vec![INF; self.m];
        for &i in eligible {
            row[i] = p;
        }
        self.job_class.push(class.0);
        self.ptimes.push(row);
        self
    }

    /// Validates and builds the instance.
    pub fn build(&self) -> Result<UnrelatedInstance, InstanceError> {
        UnrelatedInstance::new(
            self.m,
            self.job_class.clone(),
            self.ptimes.clone(),
            self.setups.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builder_matches_direct_construction() {
        let mut b = UniformBuilder::new();
        b.machines(2, 1).machine(4);
        let a = b.class(3);
        let c = b.class(5);
        b.jobs(a, &[4, 2]).job(c, 6);
        let built = b.build().unwrap();
        let direct = UniformInstance::new(
            vec![1, 1, 4],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(0, 2), Job::new(1, 6)],
        )
        .unwrap();
        assert_eq!(built, direct);
    }

    #[test]
    fn uniform_builder_propagates_validation() {
        let mut b = UniformBuilder::new();
        b.machine(0);
        let k = b.class(1);
        b.job(k, 1);
        assert!(matches!(b.build(), Err(InstanceError::ZeroSpeed { machine: 0 })));
        assert!(matches!(UniformBuilder::new().build(), Err(InstanceError::NoMachines)));
    }

    #[test]
    fn unrelated_builder_full_rows() {
        let mut b = UnrelatedBuilder::new(2);
        let k = b.class(vec![1, 2]);
        b.job(k, vec![3, 9]).job(k, vec![5, 5]);
        let inst = b.build().unwrap();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.setup(1, k.id()), 2);
        assert_eq!(inst.ptime(0, 0), 3);
    }

    #[test]
    fn unrelated_builder_restricted_jobs() {
        let mut b = UnrelatedBuilder::new(3);
        let k = b.class_uniform_setup(2);
        b.job_restricted(k, 7, &[0, 2]);
        let inst = b.build().unwrap();
        assert!(inst.is_restricted_assignment());
        assert_eq!(inst.ptime(1, 0), INF);
        assert_eq!(inst.eligible_machines(0), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "every machine")]
    fn unrelated_builder_rejects_short_rows() {
        let mut b = UnrelatedBuilder::new(3);
        b.class(vec![1, 2]);
    }

    #[test]
    fn unrelated_builder_detects_unschedulable() {
        let mut b = UnrelatedBuilder::new(1);
        let k = b.class(vec![INF]);
        b.job(k, vec![5]); // finite p but infinite setup → unschedulable
        assert!(matches!(b.build(), Err(InstanceError::UnschedulableJob { job: 0 })));
    }
}
