//! Instance deltas: the small edits dynamic traffic applies to a known
//! instance — jobs arriving, finishing or changing size, setups being
//! re-measured, new classes appearing.
//!
//! A scheduling *session* (see the portfolio crate's session protocol)
//! keeps an instance alive across requests and mutates it with
//! [`InstanceDelta`]s instead of re-shipping the whole instance. One delta
//! vocabulary covers every machine model: the per-model payload is the
//! `times` vector — one machine-independent entry for uniform machines, a
//! full per-machine row for unrelated (and splittable) ones — and
//! [`crate::model::MachineModel::apply_delta`] routes each model to its
//! applier, so the session layer never matches on the model.
//!
//! ## Job-id semantics
//!
//! [`InstanceDelta::RemoveJob`] uses **swap-remove** semantics: the last
//! job takes the removed job's id, exactly like `Vec::swap_remove`. This
//! keeps ids dense (every id in `0..n` stays a job) at the cost of one
//! rename per removal — callers replaying a delta sequence (the tracker
//! repair in [`crate::tracker`], the oracle in the differential proptests)
//! apply the same rename and stay in lockstep. [`InstanceDelta::AddJob`]
//! appends: the new job's id is the *post-delta* `n - 1`.
//!
//! Application goes through the normal validating constructors, so a delta
//! can never produce an invalid in-memory instance: removing the last
//! finite machine of a job, for example, is rejected as
//! [`DeltaError::Invalid`] and the pre-delta instance stays untouched
//! (appliers take `&Instance` and return a new one).

use crate::error::InstanceError;
use crate::instance::{ClassId, Job, JobId, UniformInstance, UnrelatedInstance};

/// One structural edit to an instance. `times` payloads are
/// machine-independent singletons (`len == 1`) for uniform instances and
/// per-machine rows (`len == m`) for unrelated/splittable ones; the wrong
/// length is a [`DeltaError::WrongTimesLength`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceDelta {
    /// A job arrives: appended with id `n` (post-delta `n - 1`).
    AddJob {
        /// Setup class of the new job.
        class: ClassId,
        /// Size (uniform) or `p_ij` row (unrelated).
        times: Vec<u64>,
    },
    /// A job finishes or is cancelled (swap-remove: the last job takes
    /// this id).
    RemoveJob {
        /// Id of the removed job.
        job: JobId,
    },
    /// A job's size / processing-time row is re-estimated.
    ResizeJob {
        /// Id of the resized job.
        job: JobId,
        /// New size (uniform) or `p_ij` row (unrelated).
        times: Vec<u64>,
    },
    /// A class's setup size / setup-time row changes.
    ResizeSetup {
        /// Id of the resized class.
        class: ClassId,
        /// New setup size (uniform) or `s_ik` row (unrelated).
        times: Vec<u64>,
    },
    /// A new (initially empty) setup class appears with id `K`.
    AddClass {
        /// Setup size (uniform) or `s_ik` row (unrelated).
        times: Vec<u64>,
    },
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a job id outside `0..n`.
    JobOutOfRange {
        /// Offending job id.
        job: JobId,
        /// Current number of jobs.
        n: usize,
    },
    /// The delta names a class id outside `0..K`.
    ClassOutOfRange {
        /// Offending class id.
        class: ClassId,
        /// Current number of classes.
        num_classes: usize,
    },
    /// The `times` payload has the wrong length for the model.
    WrongTimesLength {
        /// Expected length (1 for uniform, `m` for unrelated).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The edited instance failed validation (e.g. a job left with no
    /// finite machine).
    Invalid(InstanceError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::JobOutOfRange { job, n } => {
                write!(f, "delta names job {job} but the instance has {n} jobs")
            }
            DeltaError::ClassOutOfRange { class, num_classes } => {
                write!(f, "delta names class {class} but the instance has {num_classes} classes")
            }
            DeltaError::WrongTimesLength { expected, got } => {
                write!(f, "delta times payload must have {expected} entries, got {got}")
            }
            DeltaError::Invalid(e) => write!(f, "delta produces an invalid instance: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn expect_len(times: &[u64], expected: usize) -> Result<(), DeltaError> {
    if times.len() == expected {
        Ok(())
    } else {
        Err(DeltaError::WrongTimesLength { expected, got: times.len() })
    }
}

fn check_job(job: JobId, n: usize) -> Result<(), DeltaError> {
    if job < n {
        Ok(())
    } else {
        Err(DeltaError::JobOutOfRange { job, n })
    }
}

fn check_class(class: ClassId, num_classes: usize) -> Result<(), DeltaError> {
    if class < num_classes {
        Ok(())
    } else {
        Err(DeltaError::ClassOutOfRange { class, num_classes })
    }
}

fn edit_uniform(
    setups: &mut Vec<u64>,
    jobs: &mut Vec<Job>,
    delta: &InstanceDelta,
) -> Result<(), DeltaError> {
    match delta {
        InstanceDelta::AddJob { class, times } => {
            expect_len(times, 1)?;
            check_class(*class, setups.len())?;
            jobs.push(Job::new(*class, times[0]));
        }
        InstanceDelta::RemoveJob { job } => {
            check_job(*job, jobs.len())?;
            jobs.swap_remove(*job);
        }
        InstanceDelta::ResizeJob { job, times } => {
            expect_len(times, 1)?;
            check_job(*job, jobs.len())?;
            jobs[*job].size = times[0];
        }
        InstanceDelta::ResizeSetup { class, times } => {
            expect_len(times, 1)?;
            check_class(*class, setups.len())?;
            setups[*class] = times[0];
        }
        InstanceDelta::AddClass { times } => {
            expect_len(times, 1)?;
            setups.push(times[0]);
        }
    }
    Ok(())
}

/// Applies one delta to a uniform instance, returning the edited instance
/// (re-validated through [`UniformInstance::new`]).
pub fn apply_uniform(
    inst: &UniformInstance,
    delta: &InstanceDelta,
) -> Result<UniformInstance, DeltaError> {
    apply_uniform_all(inst, std::slice::from_ref(delta))
}

/// Applies a whole delta batch to a uniform instance with **one**
/// decompose/rebuild: per-edit work is `O(1)`, the `O(n + m + K)`
/// reconstruction (and its validation) is paid once for the batch.
/// Id/length checks still run per edit against the evolving shape.
pub fn apply_uniform_all(
    inst: &UniformInstance,
    deltas: &[InstanceDelta],
) -> Result<UniformInstance, DeltaError> {
    let mut setups = inst.setups().to_vec();
    let mut jobs = inst.jobs().to_vec();
    for delta in deltas {
        edit_uniform(&mut setups, &mut jobs, delta)?;
    }
    UniformInstance::new(inst.speeds().to_vec(), setups, jobs).map_err(DeltaError::Invalid)
}

fn edit_unrelated(
    m: usize,
    job_class: &mut Vec<ClassId>,
    ptimes: &mut Vec<u64>,
    setups: &mut Vec<u64>,
    delta: &InstanceDelta,
) -> Result<(), DeltaError> {
    let n = job_class.len();
    let kk = setups.len() / m;
    match delta {
        InstanceDelta::AddJob { class, times } => {
            expect_len(times, m)?;
            check_class(*class, kk)?;
            job_class.push(*class);
            ptimes.extend_from_slice(times);
        }
        InstanceDelta::RemoveJob { job } => {
            check_job(*job, n)?;
            job_class.swap_remove(*job);
            if *job + 1 < n {
                ptimes.copy_within((n - 1) * m..n * m, *job * m);
            }
            ptimes.truncate((n - 1) * m);
        }
        InstanceDelta::ResizeJob { job, times } => {
            expect_len(times, m)?;
            check_job(*job, n)?;
            ptimes[*job * m..(*job + 1) * m].copy_from_slice(times);
        }
        InstanceDelta::ResizeSetup { class, times } => {
            expect_len(times, m)?;
            check_class(*class, kk)?;
            setups[*class * m..(*class + 1) * m].copy_from_slice(times);
        }
        InstanceDelta::AddClass { times } => {
            expect_len(times, m)?;
            setups.extend_from_slice(times);
        }
    }
    Ok(())
}

/// Applies one delta to an unrelated-shaped instance (also the splittable
/// model's data), returning the edited instance (re-validated through
/// [`UnrelatedInstance::from_flat`]).
pub fn apply_unrelated(
    inst: &UnrelatedInstance,
    delta: &InstanceDelta,
) -> Result<UnrelatedInstance, DeltaError> {
    apply_unrelated_all(inst, std::slice::from_ref(delta))
}

/// Applies a whole delta batch to an unrelated-shaped instance with
/// **one** decompose/rebuild (see [`apply_uniform_all`]): per-edit work is
/// `O(m)` row copies, and the `O(n·m)` reconstruction — including the
/// class and eligibility index tables and the unschedulable-job check —
/// is paid once for the batch, not once per edit. Schedulability is
/// therefore validated on the **final** state; a batch may pass through
/// transiently-unschedulable intermediate states as long as the end state
/// is valid (per-edit application via [`apply_unrelated`] rejects such
/// states instead).
pub fn apply_unrelated_all(
    inst: &UnrelatedInstance,
    deltas: &[InstanceDelta],
) -> Result<UnrelatedInstance, DeltaError> {
    let m = inst.m();
    let n = inst.n();
    let kk = inst.num_classes();
    let mut job_class: Vec<ClassId> = inst.job_classes().to_vec();
    let mut ptimes: Vec<u64> = Vec::with_capacity((n + 1) * m);
    for j in 0..n {
        ptimes.extend_from_slice(inst.ptimes_row(j));
    }
    let mut setups: Vec<u64> = Vec::with_capacity((kk + 1) * m);
    for k in 0..kk {
        setups.extend_from_slice(inst.setups_row(k));
    }
    for delta in deltas {
        edit_unrelated(m, &mut job_class, &mut ptimes, &mut setups, delta)?;
    }
    UnrelatedInstance::from_flat(m, job_class, ptimes, setups).map_err(DeltaError::Invalid)
}

#[cfg(feature = "serde")]
mod codec {
    //! JSON codec for deltas — the wire format of the session protocol's
    //! `delta` verb and the `dynamic-queue` trace files of `sst-gen`:
    //! `{"add_job": {"class": K, "times": [..]}}`, `{"remove_job": J}`,
    //! `{"resize_job": {"job": J, "times": [..]}}`,
    //! `{"resize_setup": {"class": K, "times": [..]}}`,
    //! `{"add_class": {"times": [..]}}`.

    use super::InstanceDelta;
    use crate::io::json::{self, JsonValue};
    use crate::io::IoError;

    /// Serializes one delta to a compact JSON object.
    pub fn delta_to_json(delta: &InstanceDelta) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let with_times = |out: &mut String, head: String, times: &[u64]| {
            out.push_str(&head);
            json::write_u64_array(out, times);
            out.push_str("}}");
        };
        match delta {
            InstanceDelta::AddJob { class, times } => {
                with_times(
                    &mut out,
                    format!("{{\"add_job\": {{\"class\": {class}, \"times\": "),
                    times,
                );
            }
            InstanceDelta::RemoveJob { job } => {
                let _ = write!(out, "{{\"remove_job\": {job}}}");
            }
            InstanceDelta::ResizeJob { job, times } => {
                with_times(
                    &mut out,
                    format!("{{\"resize_job\": {{\"job\": {job}, \"times\": "),
                    times,
                );
            }
            InstanceDelta::ResizeSetup { class, times } => with_times(
                &mut out,
                format!("{{\"resize_setup\": {{\"class\": {class}, \"times\": "),
                times,
            ),
            InstanceDelta::AddClass { times } => {
                with_times(&mut out, "{\"add_class\": {\"times\": ".to_string(), times);
            }
        }
        out
    }

    /// Serializes a delta sequence to a compact JSON array.
    pub fn deltas_to_json(deltas: &[InstanceDelta]) -> String {
        let mut out = String::from("[");
        for (i, d) in deltas.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&delta_to_json(d));
        }
        out.push(']');
        out
    }

    fn uint(v: &JsonValue, what: &str) -> Result<u64, IoError> {
        match v {
            JsonValue::Uint(u) => Ok(*u),
            _ => Err(IoError::Json(format!("delta field '{what}' must be an unsigned integer"))),
        }
    }

    fn usize_field(
        map: &std::collections::BTreeMap<String, JsonValue>,
        what: &str,
    ) -> Result<usize, IoError> {
        let v = map.get(what).ok_or_else(|| IoError::Json(format!("delta missing '{what}'")))?;
        usize::try_from(uint(v, what)?)
            .map_err(|_| IoError::Json(format!("delta field '{what}' out of range")))
    }

    fn times_field(
        map: &std::collections::BTreeMap<String, JsonValue>,
    ) -> Result<Vec<u64>, IoError> {
        match map.get("times") {
            Some(JsonValue::Array(items)) => items.iter().map(|x| uint(x, "times")).collect(),
            _ => Err(IoError::Json("delta missing 'times' array".into())),
        }
    }

    /// Parses one delta from an already-parsed [`JsonValue`].
    pub fn delta_from_value(v: &JsonValue) -> Result<InstanceDelta, IoError> {
        let JsonValue::Object(map) = v else {
            return Err(IoError::Json("delta must be a JSON object".into()));
        };
        if let Some(v) = map.get("remove_job") {
            let job = usize::try_from(uint(v, "remove_job")?)
                .map_err(|_| IoError::Json("remove_job out of range".into()))?;
            return Ok(InstanceDelta::RemoveJob { job });
        }
        let payload = |key: &str| -> Option<&std::collections::BTreeMap<String, JsonValue>> {
            match map.get(key) {
                Some(JsonValue::Object(inner)) => Some(inner),
                _ => None,
            }
        };
        if let Some(inner) = payload("add_job") {
            return Ok(InstanceDelta::AddJob {
                class: usize_field(inner, "class")?,
                times: times_field(inner)?,
            });
        }
        if let Some(inner) = payload("resize_job") {
            return Ok(InstanceDelta::ResizeJob {
                job: usize_field(inner, "job")?,
                times: times_field(inner)?,
            });
        }
        if let Some(inner) = payload("resize_setup") {
            return Ok(InstanceDelta::ResizeSetup {
                class: usize_field(inner, "class")?,
                times: times_field(inner)?,
            });
        }
        if let Some(inner) = payload("add_class") {
            return Ok(InstanceDelta::AddClass { times: times_field(inner)? });
        }
        Err(IoError::Json(
            "delta must be one of add_job | remove_job | resize_job | resize_setup | add_class"
                .into(),
        ))
    }

    /// Parses a delta array from an already-parsed [`JsonValue`].
    pub fn deltas_from_value(v: &JsonValue) -> Result<Vec<InstanceDelta>, IoError> {
        match v {
            JsonValue::Array(items) => items.iter().map(delta_from_value).collect(),
            _ => Err(IoError::Json("'deltas' must be an array".into())),
        }
    }
}

#[cfg(feature = "serde")]
pub use codec::{delta_from_value, delta_to_json, deltas_from_value, deltas_to_json};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::INF;

    fn uniform_fixture() -> UniformInstance {
        UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap()
    }

    fn unrelated_fixture() -> UnrelatedInstance {
        UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap()
    }

    #[test]
    fn uniform_add_remove_resize() {
        let inst = uniform_fixture();
        let added =
            apply_uniform(&inst, &InstanceDelta::AddJob { class: 1, times: vec![9] }).unwrap();
        assert_eq!(added.n(), 4);
        assert_eq!(added.job(3), Job::new(1, 9));

        // Swap-remove: job 2 takes id 0.
        let removed = apply_uniform(&inst, &InstanceDelta::RemoveJob { job: 0 }).unwrap();
        assert_eq!(removed.n(), 2);
        assert_eq!(removed.job(0), Job::new(0, 2));
        assert_eq!(removed.job(1), Job::new(1, 6));

        let resized =
            apply_uniform(&inst, &InstanceDelta::ResizeJob { job: 1, times: vec![11] }).unwrap();
        assert_eq!(resized.job(1), Job::new(1, 11));

        let setup =
            apply_uniform(&inst, &InstanceDelta::ResizeSetup { class: 0, times: vec![8] }).unwrap();
        assert_eq!(setup.setup(0), 8);

        let grown = apply_uniform(&inst, &InstanceDelta::AddClass { times: vec![4] }).unwrap();
        assert_eq!(grown.num_classes(), 3);
        assert_eq!(grown.setup(2), 4);
        assert!(grown.jobs_of_class(2).is_empty());
    }

    #[test]
    fn unrelated_add_remove_resize() {
        let inst = unrelated_fixture();
        let added =
            apply_unrelated(&inst, &InstanceDelta::AddJob { class: 0, times: vec![2, 7] }).unwrap();
        assert_eq!(added.n(), 4);
        assert_eq!(added.ptimes_row(3), &[2, 7]);
        assert_eq!(added.class_of(3), 0);

        // Swap-remove: job 2's row lands at id 0.
        let removed = apply_unrelated(&inst, &InstanceDelta::RemoveJob { job: 0 }).unwrap();
        assert_eq!(removed.n(), 2);
        assert_eq!(removed.ptimes_row(0), &[5, 5]);
        assert_eq!(removed.class_of(0), 1);

        let setup =
            apply_unrelated(&inst, &InstanceDelta::ResizeSetup { class: 1, times: vec![2, 3] })
                .unwrap();
        assert_eq!(setup.setups_row(1), &[2, 3]);

        let grown = apply_unrelated(&inst, &InstanceDelta::AddClass { times: vec![4, 4] }).unwrap();
        assert_eq!(grown.num_classes(), 3);
    }

    #[test]
    fn invalid_deltas_are_rejected_without_mutation() {
        let inst = unrelated_fixture();
        assert!(matches!(
            apply_unrelated(&inst, &InstanceDelta::RemoveJob { job: 9 }),
            Err(DeltaError::JobOutOfRange { job: 9, n: 3 })
        ));
        assert!(matches!(
            apply_unrelated(&inst, &InstanceDelta::AddJob { class: 7, times: vec![1, 1] }),
            Err(DeltaError::ClassOutOfRange { class: 7, .. })
        ));
        assert!(matches!(
            apply_unrelated(&inst, &InstanceDelta::AddJob { class: 0, times: vec![1] }),
            Err(DeltaError::WrongTimesLength { expected: 2, got: 1 })
        ));
        // Resizing job 0 to all-INF leaves it unschedulable: rejected by
        // the validating constructor, original untouched.
        assert!(matches!(
            apply_unrelated(&inst, &InstanceDelta::ResizeJob { job: 0, times: vec![INF, INF] }),
            Err(DeltaError::Invalid(InstanceError::UnschedulableJob { job: 0 }))
        ));
        assert_eq!(inst, unrelated_fixture());

        let u = uniform_fixture();
        assert!(matches!(
            apply_uniform(&u, &InstanceDelta::AddJob { class: 0, times: vec![1, 2] }),
            Err(DeltaError::WrongTimesLength { expected: 1, got: 2 })
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn delta_json_roundtrip() {
        use crate::io::json;
        let deltas = vec![
            InstanceDelta::AddJob { class: 2, times: vec![3, 4, 5] },
            InstanceDelta::RemoveJob { job: 7 },
            InstanceDelta::ResizeJob { job: 1, times: vec![9] },
            InstanceDelta::ResizeSetup { class: 0, times: vec![1, 2, 3] },
            InstanceDelta::AddClass { times: vec![6] },
        ];
        let text = deltas_to_json(&deltas);
        assert!(!text.contains('\n'));
        let value = json::parse(&text).unwrap();
        assert_eq!(deltas_from_value(&value).unwrap(), deltas);
        assert!(delta_from_value(&json::parse("{\"nope\": 1}").unwrap()).is_err());
    }
}
