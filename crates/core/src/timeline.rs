//! Explicit batched timelines: from an assignment `σ : J → M` to concrete
//! start/end times for every setup and every job.
//!
//! The paper's load formula (Section 1.1) "reflects problems where a machine
//! processes all jobs belonging to the same class in a batch (a contiguous
//! time interval) and before switching [...] has to perform a setup". This
//! module makes that reading executable: it lays the batches out on the time
//! axis, validates the batching invariants, and renders ASCII Gantt charts.
//!
//! Times are generic over [`TimeUnit`] so that uniform instances get exact
//! rational timelines ([`Ratio`]; a machine of speed `v` runs a size-`p` job
//! in `p/v` time) while unrelated instances stay in integer ticks (`u64`).
//!
//! ```
//! use sst_core::{UniformInstance, Job, Schedule};
//! use sst_core::timeline::Timeline;
//!
//! let inst = UniformInstance::new(
//!     vec![2, 1],
//!     vec![3, 5],
//!     vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
//! ).unwrap();
//! let sched = Schedule::new(vec![0, 1, 0]);
//! let tl = Timeline::from_uniform(&inst, &sched).unwrap();
//! assert_eq!(tl.makespan(), sst_core::Ratio::new(11, 1)); // machine 1: 5+6
//! tl.validate().unwrap();
//! ```

use std::fmt;

use crate::error::ScheduleError;
use crate::instance::{is_finite, ClassId, JobId, MachineId, UniformInstance, UnrelatedInstance};
use crate::ratio::Ratio;
use crate::schedule::Schedule;

/// Arithmetic a timeline needs from its time type: a zero, addition and a
/// float view for rendering. Implemented for `u64` (unrelated instances)
/// and [`Ratio`] (uniform instances, exact).
pub trait TimeUnit: Copy + Ord + fmt::Display {
    /// The additive identity (time origin).
    fn zero() -> Self;
    /// `self + rhs` (must not overflow for valid instances).
    fn plus(self, rhs: Self) -> Self;
    /// Lossy float view, used only for proportional rendering.
    fn as_f64(self) -> f64;
}

impl TimeUnit for u64 {
    fn zero() -> Self {
        0
    }
    fn plus(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl TimeUnit for Ratio {
    fn zero() -> Self {
        Ratio::ZERO
    }
    fn plus(self, rhs: Self) -> Self {
        self.add(rhs)
    }
    fn as_f64(self) -> f64 {
        self.to_f64()
    }
}

/// What occupies a slice of machine time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// The machine performs the setup of a class.
    Setup(ClassId),
    /// The machine processes a job.
    Job(JobId),
}

/// One contiguous occupied interval `[start, end)` on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot<T> {
    /// Start time of the interval.
    pub start: T,
    /// End time of the interval (`start + duration`).
    pub end: T,
    /// What happens during the interval.
    pub what: Span,
}

/// The timeline of a single machine: slots packed back-to-back from time 0,
/// grouped into class batches, each batch led by its setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineTimeline<T> {
    /// The machine this timeline belongs to.
    pub machine: MachineId,
    /// Occupied slots in time order (contiguous, no idle gaps).
    pub slots: Vec<Slot<T>>,
}

impl<T: TimeUnit> MachineTimeline<T> {
    /// Completion time of the machine (end of its last slot, or 0).
    pub fn finish(&self) -> T {
        self.slots.last().map_or(T::zero(), |s| s.end)
    }

    /// Class batches in time order: `(class, slots of the batch incl. setup)`.
    pub fn batches(&self) -> Vec<(ClassId, &[Slot<T>])> {
        let mut out = Vec::new();
        let mut begin = 0usize;
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Span::Setup(k) = slot.what {
                if idx > begin {
                    // close the previous batch
                    if let Span::Setup(prev) = self.slots[begin].what {
                        out.push((prev, &self.slots[begin..idx]));
                    }
                }
                begin = idx;
                let _ = k;
            }
        }
        if begin < self.slots.len() {
            if let Span::Setup(k) = self.slots[begin].what {
                out.push((k, &self.slots[begin..]));
            }
        }
        out
    }
}

/// A full timeline: one [`MachineTimeline`] per machine.
///
/// Construct with [`Timeline::from_uniform`] or [`Timeline::from_unrelated`];
/// both lay out each machine's classes in first-job-id order, each class as
/// one batch (setup first, then its jobs in job-id order), with no idle time.
/// Any makespan-optimal ordering is batch-per-class, so this canonical order
/// realizes exactly the load formula of Section 1.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline<T> {
    machines: Vec<MachineTimeline<T>>,
    n_jobs: usize,
}

impl<T: TimeUnit> Timeline<T> {
    /// Per-machine timelines, indexed by machine id.
    pub fn machines(&self) -> &[MachineTimeline<T>] {
        &self.machines
    }

    /// Number of jobs placed on the timeline.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// The makespan: the latest finish time over all machines.
    pub fn makespan(&self) -> T {
        self.machines.iter().map(|m| m.finish()).max().unwrap_or_else(T::zero)
    }

    /// Start time of job `j`, if it appears on the timeline.
    pub fn start_of(&self, j: JobId) -> Option<T> {
        for m in &self.machines {
            for slot in &m.slots {
                if slot.what == Span::Job(j) {
                    return Some(slot.start);
                }
            }
        }
        None
    }

    /// Checks the batching invariants the construction promises:
    ///
    /// 1. slots are contiguous from time 0 (no idle, no overlap);
    /// 2. every batch starts with a setup, and no class has two batches on
    ///    the same machine;
    /// 3. every job id in `0..n` appears exactly once across all machines.
    pub fn validate(&self) -> Result<(), TimelineError> {
        let mut seen_job = vec![false; self.n_jobs];
        for m in &self.machines {
            let mut clock = T::zero();
            let mut seen_class: Vec<ClassId> = Vec::new();
            let mut in_batch = false;
            for slot in &m.slots {
                if slot.start != clock {
                    return Err(TimelineError::GapOrOverlap { machine: m.machine });
                }
                if slot.end < slot.start {
                    return Err(TimelineError::NegativeDuration { machine: m.machine });
                }
                clock = slot.end;
                match slot.what {
                    Span::Setup(k) => {
                        if seen_class.contains(&k) {
                            return Err(TimelineError::SplitBatch { machine: m.machine, class: k });
                        }
                        seen_class.push(k);
                        in_batch = true;
                    }
                    Span::Job(j) => {
                        if !in_batch {
                            return Err(TimelineError::JobBeforeSetup {
                                machine: m.machine,
                                job: j,
                            });
                        }
                        if j >= self.n_jobs || seen_job[j] {
                            return Err(TimelineError::JobMultiplicity { job: j });
                        }
                        seen_job[j] = true;
                    }
                }
            }
        }
        if let Some(j) = seen_job.iter().position(|&s| !s) {
            return Err(TimelineError::JobMultiplicity { job: j });
        }
        Ok(())
    }
}

impl Timeline<Ratio> {
    /// Lays out a schedule on a uniform instance as an exact rational
    /// timeline. Fails with the same errors as schedule evaluation.
    pub fn from_uniform(
        inst: &UniformInstance,
        sched: &Schedule,
    ) -> Result<Timeline<Ratio>, ScheduleError> {
        // Reuse the evaluator for shape validation.
        crate::schedule::uniform_loads(inst, sched)?;
        let mut machines = Vec::with_capacity(inst.m());
        let by_machine = sched.by_machine(inst.m());
        for (i, jobs) in by_machine.iter().enumerate() {
            let v = inst.speed(i);
            let mut slots = Vec::new();
            let mut clock = Ratio::ZERO;
            for (k, batch_jobs) in batch_order(jobs, |j| inst.job(j).class) {
                let end = clock.add(Ratio::new(inst.setup(k), v));
                slots.push(Slot { start: clock, end, what: Span::Setup(k) });
                clock = end;
                for &j in &batch_jobs {
                    let end = clock.add(Ratio::new(inst.job(j).size, v));
                    slots.push(Slot { start: clock, end, what: Span::Job(j) });
                    clock = end;
                }
            }
            machines.push(MachineTimeline { machine: i, slots });
        }
        Ok(Timeline { machines, n_jobs: inst.n() })
    }
}

impl Timeline<u64> {
    /// Lays out a schedule on an unrelated instance as an integer timeline.
    /// Fails if any assigned job or required setup is infinite.
    pub fn from_unrelated(
        inst: &UnrelatedInstance,
        sched: &Schedule,
    ) -> Result<Timeline<u64>, ScheduleError> {
        crate::schedule::unrelated_loads(inst, sched)?;
        let mut machines = Vec::with_capacity(inst.m());
        let by_machine = sched.by_machine(inst.m());
        for (i, jobs) in by_machine.iter().enumerate() {
            let mut slots = Vec::new();
            let mut clock: u64 = 0;
            for (k, batch_jobs) in batch_order(jobs, |j| inst.class_of(j)) {
                let s = inst.setup(i, k);
                debug_assert!(is_finite(s), "checked by unrelated_loads");
                let end = clock + s;
                slots.push(Slot { start: clock, end, what: Span::Setup(k) });
                clock = end;
                for &j in &batch_jobs {
                    let end = clock + inst.ptime(i, j);
                    slots.push(Slot { start: clock, end, what: Span::Job(j) });
                    clock = end;
                }
            }
            machines.push(MachineTimeline { machine: i, slots });
        }
        Ok(Timeline { machines, n_jobs: inst.n() })
    }
}

/// Groups a machine's jobs (job-id order) into class batches in order of
/// first appearance; within a batch, jobs keep job-id order.
fn batch_order(jobs: &[JobId], class_of: impl Fn(JobId) -> ClassId) -> Vec<(ClassId, Vec<JobId>)> {
    let mut batches: Vec<(ClassId, Vec<JobId>)> = Vec::new();
    for &j in jobs {
        let k = class_of(j);
        match batches.iter_mut().find(|(c, _)| *c == k) {
            Some((_, v)) => v.push(j),
            None => batches.push((k, vec![j])),
        }
    }
    batches
}

/// Violations of the batching invariants (see [`Timeline::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// Slots on a machine are not contiguous from time 0.
    GapOrOverlap {
        /// Offending machine.
        machine: MachineId,
    },
    /// A slot ends before it starts.
    NegativeDuration {
        /// Offending machine.
        machine: MachineId,
    },
    /// A class has two batches on the same machine.
    SplitBatch {
        /// Offending machine.
        machine: MachineId,
        /// The class that was set up twice.
        class: ClassId,
    },
    /// A job slot appears before any setup on its machine.
    JobBeforeSetup {
        /// Offending machine.
        machine: MachineId,
        /// The job that ran without a preceding setup.
        job: JobId,
    },
    /// A job is missing, duplicated, or out of range.
    JobMultiplicity {
        /// Offending job id.
        job: JobId,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::GapOrOverlap { machine } => {
                write!(f, "machine {machine}: slots not contiguous from time 0")
            }
            TimelineError::NegativeDuration { machine } => {
                write!(f, "machine {machine}: slot with end < start")
            }
            TimelineError::SplitBatch { machine, class } => {
                write!(f, "machine {machine}: class {class} set up twice")
            }
            TimelineError::JobBeforeSetup { machine, job } => {
                write!(f, "machine {machine}: job {job} scheduled before any setup")
            }
            TimelineError::JobMultiplicity { job } => {
                write!(f, "job {job} missing or duplicated on the timeline")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// Renders a timeline as an ASCII Gantt chart, `width` columns wide.
///
/// Setups render as `#`, jobs as the last digit of their class id (so
/// batches of one class form visually uniform blocks); `.` is idle tail.
/// Every machine row is scaled by the same factor (global makespan ↦
/// `width` columns), so rows are directly comparable.
///
/// ```text
/// m0 |###000001111......| 13
/// m1 |##22222222222#####| 18  <- makespan
/// ```
pub fn render_gantt<T: TimeUnit>(
    tl: &Timeline<T>,
    class_of_job: impl Fn(JobId) -> ClassId,
    width: usize,
) -> String {
    let width = width.max(8);
    let horizon = tl.makespan().as_f64();
    let makespan = tl.makespan();
    let scale = if horizon > 0.0 { width as f64 / horizon } else { 0.0 };
    let mut out = String::new();
    for m in tl.machines() {
        let mut row = vec!['.'; width];
        for slot in &m.slots {
            let a = (slot.start.as_f64() * scale).floor() as usize;
            let b = ((slot.end.as_f64() * scale).ceil() as usize).min(width);
            let ch = match slot.what {
                Span::Setup(_) => '#',
                Span::Job(j) => {
                    let k = class_of_job(j);
                    char::from_digit((k % 10) as u32, 10).unwrap_or('?')
                }
            };
            for cell in row.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
                *cell = ch;
            }
        }
        let finish = m.finish();
        let marker = if !m.slots.is_empty() && finish == makespan { "  <- makespan" } else { "" };
        let bar: String = row.into_iter().collect();
        out.push_str(&format!("m{:<3}|{}| {}{}\n", m.machine, bar, finish, marker));
    }
    out
}

/// Renders a timeline as a standalone SVG document (no dependencies; plain
/// string assembly). Setups draw as gray blocks, jobs as class-colored
/// blocks (golden-angle hue per class id), one row per machine, with a
/// dashed line marking the makespan.
pub fn render_gantt_svg<T: TimeUnit>(
    tl: &Timeline<T>,
    class_of_job: impl Fn(JobId) -> ClassId,
    width_px: u32,
) -> String {
    let width_px = width_px.max(100);
    let row_h = 24u32;
    let pad = 4u32;
    let label_w = 48u32;
    let rows = tl.machines().len() as u32;
    let height = rows * (row_h + pad) + pad + 18;
    let horizon = tl.makespan().as_f64().max(f64::MIN_POSITIVE);
    let scale = (width_px - label_w - 8) as f64 / horizon;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    for (r, m) in tl.machines().iter().enumerate() {
        let y = pad + r as u32 * (row_h + pad);
        svg.push_str(&format!(
            "  <text x=\"2\" y=\"{}\" fill=\"#333\">m{}</text>\n",
            y + row_h / 2 + 4,
            m.machine
        ));
        for slot in &m.slots {
            let x = label_w as f64 + slot.start.as_f64() * scale;
            let w = ((slot.end.as_f64() - slot.start.as_f64()) * scale).max(0.5);
            let (fill, title) = match slot.what {
                Span::Setup(k) => ("#9e9e9e".to_string(), format!("setup class {k}")),
                Span::Job(j) => {
                    let k = class_of_job(j);
                    // Golden-angle hue spacing keeps adjacent classes apart.
                    let hue = (k as f64 * 137.508) % 360.0;
                    (format!("hsl({hue:.0},65%,60%)"), format!("job {j} (class {k})"))
                }
            };
            svg.push_str(&format!(
                "  <rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{row_h}\" \
                 fill=\"{fill}\" stroke=\"#444\" stroke-width=\"0.5\">\
                 <title>{title}</title></rect>\n"
            ));
        }
    }
    // Makespan marker and axis label.
    let x_end = label_w as f64 + horizon * scale;
    svg.push_str(&format!(
        "  <line x1=\"{x_end:.1}\" y1=\"0\" x2=\"{x_end:.1}\" y2=\"{}\" \
         stroke=\"#d32f2f\" stroke-dasharray=\"4 3\"/>\n",
        height - 16
    ));
    svg.push_str(&format!(
        "  <text x=\"{:.1}\" y=\"{}\" fill=\"#d32f2f\" text-anchor=\"end\">makespan {}</text>\n",
        x_end,
        height - 4,
        tl.makespan()
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Job, INF};
    use crate::schedule::{uniform_makespan, unrelated_makespan};

    fn uniform() -> UniformInstance {
        UniformInstance::new(
            vec![2, 1],
            vec![3, 5],
            vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn uniform_timeline_matches_makespan_evaluator() {
        let inst = uniform();
        for assignment in [vec![0, 0, 0], vec![0, 1, 0], vec![1, 0, 1], vec![0, 1, 1]] {
            let sched = Schedule::new(assignment);
            let tl = Timeline::from_uniform(&inst, &sched).unwrap();
            tl.validate().unwrap();
            assert_eq!(tl.makespan(), uniform_makespan(&inst, &sched).unwrap());
        }
    }

    #[test]
    fn uniform_timeline_slot_structure() {
        let inst = uniform();
        let sched = Schedule::new(vec![0, 1, 0]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        // Machine 0 (speed 2): setup0 [0, 3/2), job0 [3/2, 7/2), job2 [7/2, 9/2).
        let m0 = &tl.machines()[0];
        assert_eq!(m0.slots.len(), 3);
        assert_eq!(m0.slots[0].what, Span::Setup(0));
        assert_eq!(m0.slots[0].end, Ratio::new(3, 2));
        assert_eq!(m0.slots[1].what, Span::Job(0));
        assert_eq!(m0.slots[2].what, Span::Job(2));
        assert_eq!(m0.finish(), Ratio::new(9, 2));
        // Machine 1 (speed 1): setup1 [0,5), job1 [5,11).
        let m1 = &tl.machines()[1];
        assert_eq!(m1.finish(), Ratio::new(11, 1));
        assert_eq!(tl.start_of(1), Some(Ratio::new(5, 1)));
        assert_eq!(tl.start_of(99), None);
    }

    #[test]
    fn batches_group_by_class_in_first_seen_order() {
        let inst = UniformInstance::new(
            vec![1],
            vec![1, 1],
            vec![Job::new(1, 2), Job::new(0, 2), Job::new(1, 2)],
        )
        .unwrap();
        let sched = Schedule::new(vec![0, 0, 0]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        let batches = tl.machines()[0].batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, 1); // class 1 seen first (job 0)
        assert_eq!(batches[0].1.len(), 3); // setup + jobs 0 and 2
        assert_eq!(batches[1].0, 0);
        tl.validate().unwrap();
    }

    #[test]
    fn unrelated_timeline_matches_makespan_evaluator() {
        let inst = UnrelatedInstance::new(
            2,
            vec![0, 0, 1],
            vec![vec![3, 9], vec![INF, 4], vec![5, 5]],
            vec![vec![1, 2], vec![7, INF]],
        )
        .unwrap();
        let sched = Schedule::new(vec![0, 1, 0]);
        let tl = Timeline::from_unrelated(&inst, &sched).unwrap();
        tl.validate().unwrap();
        assert_eq!(tl.makespan(), unrelated_makespan(&inst, &sched).unwrap());
        // Infinite assignment propagates the evaluator's error.
        let bad = Schedule::new(vec![0, 0, 0]);
        assert!(Timeline::from_unrelated(&inst, &bad).is_err());
    }

    #[test]
    fn empty_machines_have_empty_timelines() {
        let inst = uniform();
        let sched = Schedule::new(vec![0, 0, 0]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        assert!(tl.machines()[1].slots.is_empty());
        assert_eq!(tl.machines()[1].finish(), Ratio::ZERO);
        tl.validate().unwrap();
    }

    #[test]
    fn validate_rejects_gap() {
        let tl = Timeline {
            machines: vec![MachineTimeline {
                machine: 0,
                slots: vec![
                    Slot { start: 1u64, end: 2, what: Span::Setup(0) },
                    Slot { start: 2, end: 3, what: Span::Job(0) },
                ],
            }],
            n_jobs: 1,
        };
        assert_eq!(tl.validate(), Err(TimelineError::GapOrOverlap { machine: 0 }));
    }

    #[test]
    fn validate_rejects_job_before_setup() {
        let tl = Timeline {
            machines: vec![MachineTimeline {
                machine: 0,
                slots: vec![Slot { start: 0u64, end: 3, what: Span::Job(0) }],
            }],
            n_jobs: 1,
        };
        assert_eq!(tl.validate(), Err(TimelineError::JobBeforeSetup { machine: 0, job: 0 }));
    }

    #[test]
    fn validate_rejects_split_batch_and_duplicates() {
        let split = Timeline {
            machines: vec![MachineTimeline {
                machine: 0,
                slots: vec![
                    Slot { start: 0u64, end: 1, what: Span::Setup(0) },
                    Slot { start: 1, end: 2, what: Span::Job(0) },
                    Slot { start: 2, end: 3, what: Span::Setup(0) },
                ],
            }],
            n_jobs: 1,
        };
        assert_eq!(split.validate(), Err(TimelineError::SplitBatch { machine: 0, class: 0 }));

        let dup = Timeline {
            machines: vec![MachineTimeline {
                machine: 0,
                slots: vec![
                    Slot { start: 0u64, end: 1, what: Span::Setup(0) },
                    Slot { start: 1, end: 2, what: Span::Job(0) },
                    Slot { start: 2, end: 3, what: Span::Job(0) },
                ],
            }],
            n_jobs: 1,
        };
        assert_eq!(dup.validate(), Err(TimelineError::JobMultiplicity { job: 0 }));
    }

    #[test]
    fn validate_detects_missing_job() {
        let tl: Timeline<u64> =
            Timeline { machines: vec![MachineTimeline { machine: 0, slots: vec![] }], n_jobs: 1 };
        assert_eq!(tl.validate(), Err(TimelineError::JobMultiplicity { job: 0 }));
    }

    #[test]
    fn gantt_render_shape() {
        let inst = uniform();
        let sched = Schedule::new(vec![0, 1, 0]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        let chart = render_gantt(&tl, |j| inst.job(j).class, 22);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("m0  |"));
        assert!(lines[0].contains('#'), "setup block missing: {chart}");
        assert!(lines[0].contains('0'), "class-0 job block missing: {chart}");
        assert!(lines[1].contains("<- makespan"), "makespan marker: {chart}");
        // Machine 0 finishes at 9/2 < 11, so its row must have idle tail.
        assert!(lines[0].contains('.'), "idle tail missing: {chart}");
    }

    #[test]
    fn svg_render_structure() {
        let inst = uniform();
        let sched = Schedule::new(vec![0, 1, 0]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        let svg = render_gantt_svg(&tl, |j| inst.job(j).class, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per slot: m0 has 3 slots, m1 has 2.
        assert_eq!(svg.matches("<rect").count(), 5);
        // Setups are gray; jobs carry class hues; makespan marker present.
        assert!(svg.contains("#9e9e9e"));
        assert!(svg.contains("hsl("));
        assert!(svg.contains("makespan"));
        // Titles identify jobs for hover inspection.
        assert!(svg.contains("<title>job 1 (class 1)</title>"));
    }

    #[test]
    fn svg_render_empty_timeline_is_wellformed() {
        let inst = UniformInstance::new(vec![1, 1], vec![1], vec![]).unwrap();
        let tl = Timeline::from_uniform(&inst, &Schedule::new(vec![])).unwrap();
        let svg = render_gantt_svg(&tl, |_| 0, 50);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 0);
        assert_eq!(svg.matches("<text").count(), 3); // 2 labels + makespan
    }

    #[test]
    fn gantt_render_handles_empty_and_zero() {
        let inst = UniformInstance::new(vec![1], vec![0], vec![]).unwrap();
        let sched = Schedule::new(vec![]);
        let tl = Timeline::from_uniform(&inst, &sched).unwrap();
        let chart = render_gantt(&tl, |_| 0, 10);
        assert!(chart.starts_with("m0  |"));
    }
}
