//! Property tests for the exact arithmetic and the speed-group machinery.

use proptest::prelude::*;
use sst_core::groups::{geometric_speed_buckets, SpeedGroups};
use sst_core::instance::{Job, UniformInstance};
use sst_core::ratio::Ratio;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ratio_field_laws_sampled(
        (a, b) in (1u64..1_000_000, 1u64..1_000_000),
        (c, d) in (1u64..1_000_000, 1u64..1_000_000),
        (e, f) in (1u64..1_000, 1u64..1_000),
    ) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        let z = Ratio::new(e, f);
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert_eq!(x.mul(y), y.mul(x));
        prop_assert_eq!(x.add(y).add(z), x.add(y.add(z)));
        prop_assert_eq!(x.mul(y).mul(z), x.mul(y.mul(z)));
        // Distributivity.
        prop_assert_eq!(x.mul(y.add(z)), x.mul(y).add(x.mul(z)));
        // Sub/add inverse.
        prop_assert_eq!(x.add(y).checked_sub(y), Some(x));
        // Division inverse.
        prop_assert_eq!(x.mul(y).div(y), x);
    }

    #[test]
    fn ratio_ordering_total_and_consistent(
        (a, b) in (0u64..1_000_000, 1u64..1_000_000),
        (c, d) in (0u64..1_000_000, 1u64..1_000_000),
    ) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        // Exact cross-multiplication ground truth.
        let truth = (a as u128 * d as u128).cmp(&(c as u128 * b as u128));
        prop_assert_eq!(x.cmp(&y), truth);
        prop_assert_eq!(y.cmp(&x), truth.reverse());
        // floor ≤ value ≤ ceil.
        prop_assert!(Ratio::from_int(x.floor()) <= x);
        prop_assert!(x <= Ratio::from_int(x.ceil()));
    }

    #[test]
    fn every_speed_in_exactly_two_groups(
        speeds in proptest::collection::vec(1u64..100_000, 1..12),
        q_exp in 1u32..3,
        t_num in 1u64..1000,
        t_den in 1u64..1000,
    ) {
        let q = 2u64.pow(q_exp);
        let inst = UniformInstance::new(
            speeds.clone(),
            vec![1],
            vec![Job::new(0, 1)],
        ).unwrap();
        let t = Ratio::new(t_num, t_den);
        let groups = SpeedGroups::new(&inst, q, t);
        let g_max = groups.max_group();
        let mut counts = vec![0usize; speeds.len()];
        for g in 0..=g_max {
            for i in groups.machines_of_group(g) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, 2, "machine {} (speed {}) in {} groups", i, speeds[i], c);
        }
    }

    #[test]
    fn native_group_contains_big_speed_interval(
        p in 1u64..1_000_000,
        v_min in 1u64..1000,
        q_exp in 1u32..3,
    ) {
        let q = 2u64.pow(q_exp);
        let inst = UniformInstance::new(
            vec![v_min, v_min * 8],
            vec![1],
            vec![Job::new(0, 1)],
        ).unwrap();
        let groups = SpeedGroups::new(&inst, q, Ratio::ONE);
        let g = groups.native_group(p).expect("p > 0");
        // [p, q·p] ⊆ [v_min·q^{3(g-1)}, v_min·q^{3(g+1)}) in exact arithmetic.
        let q3 = (q * q * q) as u128;
        let lo_ok = {
            // v̌_g ≤ p: v_min·q^{3(g-1)} ≤ p
            let e = g - 1;
            if e >= 0 {
                let mut bound = v_min as u128;
                let mut fits = true;
                for _ in 0..e { bound = match bound.checked_mul(q3) { Some(b) => b, None => { fits = false; break; } }; }
                !fits || bound <= p as u128
            } else {
                true // v̌ shrinks below 1 ≤ p
            }
        };
        prop_assert!(lo_ok, "p={p} below v̌_g for g={g}");
        let hi_ok = {
            // q·p < v̂_g = v_min·q^{3(g+1)}
            let e = g + 1;
            if e >= 0 {
                let mut bound = v_min as u128;
                let mut overflow = false;
                for _ in 0..e { bound = match bound.checked_mul(q3) { Some(b) => b, None => { overflow = true; break; } }; }
                overflow || (q as u128 * p as u128) < bound
            } else {
                false
            }
        };
        prop_assert!(hi_ok, "q·p={} not below v̂_g for g={g}", q * p);
    }

    #[test]
    fn geometric_buckets_partition_by_factor(
        speeds in proptest::collection::vec(1u64..100_000, 2..16),
        q_exp in 1u32..4,
    ) {
        let q = 2u64.pow(q_exp);
        let buckets = geometric_speed_buckets(&speeds, q);
        for i in 0..speeds.len() {
            for j in 0..speeds.len() {
                if buckets[i] == buckets[j] {
                    let (lo, hi) = (speeds[i].min(speeds[j]), speeds[i].max(speeds[j]));
                    // Same bucket ⇒ ratio < (1+ε)·(1+fp-slop).
                    prop_assert!(
                        (hi as f64) / (lo as f64) < (1.0 + 1.0 / q as f64) * (1.0 + 1e-9),
                        "speeds {lo},{hi} share bucket {}", buckets[i]
                    );
                }
            }
        }
    }
}

mod dual_search {
    use proptest::prelude::*;
    use sst_core::dual::{binary_search_u64, geometric_search, Decision};
    use sst_core::ratio::Ratio;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// For any monotone oracle, the bisection returns exactly the
        /// threshold (clamped into the search interval).
        #[test]
        fn bisection_finds_exact_threshold(
            threshold in 0u64..10_000,
            lo in 0u64..5_000,
            span in 1u64..20_000,
        ) {
            let hi = lo + span;
            let res = binary_search_u64(lo, hi, |t| {
                if t >= threshold { Decision::Feasible(t) } else { Decision::Infeasible }
            });
            if threshold > hi {
                prop_assert_eq!(res, None);
            } else {
                let expect = threshold.max(lo);
                prop_assert_eq!(res, Some((expect, expect)));
            }
        }

        /// The geometric search returns a feasible grid point within one
        /// grid factor of the true threshold.
        #[test]
        fn geometric_search_is_grid_tight(
            thr_num in 1u64..500,
            eps_num in 1u64..4u64,
        ) {
            let threshold = Ratio::new(thr_num, 3);
            let factor = Ratio::new(4 + eps_num, 4); // 5/4 .. 7/4
            let lb = Ratio::new(1, 3);
            let ub = Ratio::new(600, 1);
            let res = geometric_search(lb, ub, factor, |t| {
                if t >= threshold { Decision::Feasible(t) } else { Decision::Infeasible }
            }).expect("ub is above every threshold in range");
            prop_assert!(res.0 >= threshold);
            // One grid step below the result must be infeasible (or below lb):
            prop_assert!(
                res.0.div(factor) < threshold || res.0 == lb,
                "result {} not grid-tight for threshold {}", res.0, threshold
            );
        }
    }
}
