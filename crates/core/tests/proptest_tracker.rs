//! Differential property tests: the incremental [`sst_core::tracker`]
//! trackers must agree **bit-identically** with the full-recompute
//! evaluators in [`sst_core::schedule`] after arbitrary sequences of job
//! and whole-class moves — loads, makespan and the evaluated makespan of
//! every candidate move.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance, INF};
use sst_core::ratio::Ratio;
use sst_core::schedule::{
    uniform_loads, uniform_makespan, unrelated_loads, unrelated_makespan, Schedule,
};
use sst_core::tracker::{SplittableLoadTracker, UniformLoadTracker, UnrelatedLoadTracker};

/// A random but valid unrelated instance: every cell finite except a
/// deterministic sprinkle of INFs that never makes a job unschedulable.
fn unrelated_instance() -> impl Strategy<Value = UnrelatedInstance> {
    (2usize..5, 1usize..5, vec((0usize..100, 1u64..500, 0u64..30), 1..40)).prop_map(
        |(m, k, raw)| {
            let n = raw.len();
            let job_class: Vec<usize> = raw.iter().map(|&(c, _, _)| c % k).collect();
            let ptimes: Vec<Vec<u64>> = raw
                .iter()
                .enumerate()
                .map(|(j, &(_, p, inf_mask))| {
                    (0..m)
                        .map(|i| {
                            // Knock out some cells, but never machine j % m,
                            // so each job keeps at least one finite machine.
                            if i != j % m && (inf_mask >> i) & 1 == 1 {
                                INF
                            } else {
                                p + (i as u64) * 7 % 90
                            }
                        })
                        .collect()
                })
                .collect();
            let setups: Vec<Vec<u64>> =
                (0..k).map(|kk| (0..m).map(|i| 1 + ((kk + i) as u64 % 40)).collect()).collect();
            let _ = n;
            UnrelatedInstance::new(m, job_class, ptimes, setups).expect("constructed valid")
        },
    )
}

fn uniform_instance() -> impl Strategy<Value = UniformInstance> {
    (vec(1u64..50, 2..5), vec(0u64..100, 1..5), vec((0usize..100, 1u64..500), 1..40)).prop_map(
        |(speeds, setups, raw)| {
            let k = setups.len();
            let jobs: Vec<Job> = raw.into_iter().map(|(c, p)| Job::new(c % k, p)).collect();
            UniformInstance::new(speeds, setups, jobs).expect("constructed valid")
        },
    )
}

/// Replays `moves` on the tracker, checking every state against the
/// full-recompute oracle. Each move item is (job, target, class_move).
fn check_unrelated(
    inst: &UnrelatedInstance,
    moves: &[(usize, usize, bool)],
) -> Result<(), TestCaseError> {
    // Start: every job on its first eligible machine.
    let start = Schedule::new((0..inst.n()).map(|j| inst.eligible_machines(j)[0]).collect());
    let mut tracker = UnrelatedLoadTracker::new(inst, &start).expect("valid start");
    for &(raw_j, raw_i, class_move) in moves {
        let j = raw_j % inst.n();
        let to = raw_i % inst.m();
        if class_move {
            let from = tracker.machine_of(j);
            let k = inst.class_of(j);
            if let Some(predicted) = tracker.eval_class_move(from, k, to) {
                tracker.apply_class_move(from, k, to);
                prop_assert_eq!(tracker.makespan(), predicted);
            }
        } else if let Some(predicted) = tracker.eval_job_move(j, to) {
            tracker.apply_job_move(j, to);
            prop_assert_eq!(tracker.makespan(), predicted);
        }
        // Bit-identical agreement with the O(n) oracle, every step.
        let sched = tracker.schedule();
        let oracle_loads = unrelated_loads(inst, &sched).expect("tracker kept schedule valid");
        prop_assert_eq!(tracker.loads(), &oracle_loads[..]);
        prop_assert_eq!(tracker.makespan(), unrelated_makespan(inst, &sched).expect("valid"));
        // The O(log m) bottleneck must name a machine the oracle agrees
        // attains the maximum load.
        let b = tracker.bottleneck();
        let oracle_max = oracle_loads.iter().copied().max().expect("m >= 1");
        prop_assert_eq!(oracle_loads[b], oracle_max, "bottleneck() machine not an argmax");
    }
    // Every candidate job move the tracker evaluates must equal the oracle
    // makespan of the hypothetically moved schedule.
    let sched = tracker.schedule();
    for j in 0..inst.n().min(8) {
        for to in 0..inst.m() {
            if let Some(predicted) = tracker.eval_job_move(j, to) {
                let mut probe = sched.clone();
                probe.set(j, to);
                prop_assert_eq!(
                    predicted,
                    unrelated_makespan(inst, &probe).expect("eval said feasible"),
                    "eval_job_move({}, {}) disagrees with oracle",
                    j,
                    to
                );
            }
        }
    }
    Ok(())
}

fn check_uniform(
    inst: &UniformInstance,
    moves: &[(usize, usize, bool)],
) -> Result<(), TestCaseError> {
    let start = Schedule::new((0..inst.n()).map(|j| j % inst.m()).collect());
    let mut tracker = UniformLoadTracker::new(inst, &start).expect("valid start");
    for &(raw_j, raw_i, class_move) in moves {
        let j = raw_j % inst.n();
        let to = raw_i % inst.m();
        if class_move {
            let from = tracker.machine_of(j);
            let k = inst.job(j).class;
            if let Some(predicted) = tracker.eval_class_move(from, k, to) {
                tracker.apply_class_move(from, k, to);
                prop_assert_eq!(tracker.makespan(), predicted);
            }
        } else if let Some(predicted) = tracker.eval_job_move(j, to) {
            tracker.apply_job_move(j, to);
            prop_assert_eq!(tracker.makespan(), predicted);
        }
        let sched = tracker.schedule();
        let oracle = uniform_loads(inst, &sched).expect("valid");
        prop_assert_eq!(tracker.work(), &oracle[..]);
        prop_assert_eq!(tracker.makespan(), uniform_makespan(inst, &sched).expect("valid"));
        // O(log m) bottleneck pinned to the oracle: its work/speed ratio
        // must equal the oracle makespan exactly.
        let b = tracker.bottleneck();
        prop_assert_eq!(
            Ratio::new(oracle[b], inst.speed(b)),
            uniform_makespan(inst, &sched).expect("valid"),
            "bottleneck() machine not an argmax"
        );
    }
    let sched = tracker.schedule();
    for j in 0..inst.n().min(8) {
        for to in 0..inst.m() {
            if let Some(predicted) = tracker.eval_job_move(j, to) {
                let mut probe = sched.clone();
                probe.set(j, to);
                prop_assert_eq!(
                    predicted,
                    uniform_makespan(inst, &probe).expect("valid"),
                    "eval_job_move({}, {}) disagrees with oracle",
                    j,
                    to
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unrelated_tracker_matches_oracle_after_move_sequences(
        inst in unrelated_instance(),
        moves in vec((0usize..1000, 0usize..1000, proptest::bool::ANY), 0..60),
    ) {
        check_unrelated(&inst, &moves)?;
    }

    #[test]
    fn uniform_tracker_matches_oracle_after_move_sequences(
        inst in uniform_instance(),
        moves in vec((0usize..1000, 0usize..1000, proptest::bool::ANY), 0..60),
    ) {
        check_uniform(&inst, &moves)?;
    }

    #[test]
    fn splittable_tracker_matches_oracle_after_move_sequences(
        inst in unrelated_instance(),
        moves in vec((0usize..1000, 0usize..1000, proptest::bool::ANY), 0..60),
    ) {
        // `LoadTracker<Splittable>` works on the integral sub-space of the
        // split model, whose per-machine load is the same
        // `Σ p_ij + Σ s_ik` sum — so the O(n) full-recompute oracle is
        // `unrelated_loads`, and agreement must be bit-identical after
        // arbitrary move sequences, exactly like the unrelated tracker.
        let start = Schedule::new((0..inst.n()).map(|j| inst.eligible_machines(j)[0]).collect());
        let mut tracker = SplittableLoadTracker::new(&inst, &start).expect("valid start");
        for &(raw_j, raw_i, class_move) in &moves {
            let j = raw_j % inst.n();
            let to = raw_i % inst.m();
            if class_move {
                let from = tracker.machine_of(j);
                let k = inst.class_of(j);
                if let Some(predicted) = tracker.eval_class_move(from, k, to) {
                    tracker.apply_class_move(from, k, to);
                    prop_assert_eq!(tracker.makespan(), predicted);
                }
            } else if let Some(predicted) = tracker.eval_job_move(j, to) {
                tracker.apply_job_move(j, to);
                prop_assert_eq!(tracker.makespan(), predicted);
            }
            let sched = tracker.schedule();
            let oracle = unrelated_loads(&inst, &sched).expect("tracker kept schedule valid");
            prop_assert_eq!(tracker.loads(), &oracle[..]);
            prop_assert_eq!(tracker.makespan(), unrelated_makespan(&inst, &sched).expect("valid"));
            let b = tracker.bottleneck();
            let oracle_max = oracle.iter().copied().max().expect("m >= 1");
            prop_assert_eq!(oracle[b], oracle_max, "bottleneck() machine not an argmax");
        }
    }

    #[test]
    fn tracker_construction_matches_loads_exactly(
        inst in unrelated_instance(),
        seed in 0usize..1000,
    ) {
        // An arbitrary eligible start assignment.
        let assignment: Vec<usize> = (0..inst.n())
            .map(|j| {
                let elig = inst.eligible_machines(j);
                elig[(j + seed) % elig.len()]
            })
            .collect();
        let sched = Schedule::new(assignment);
        let tracker = UnrelatedLoadTracker::new(&inst, &sched).expect("eligible start");
        prop_assert_eq!(
            tracker.loads(),
            &unrelated_loads(&inst, &sched).expect("valid")[..]
        );
        let max = tracker.makespan();
        prop_assert_eq!(max, unrelated_makespan(&inst, &sched).expect("valid"));
        prop_assert_eq!(tracker.loads()[tracker.bottleneck()], max);
    }

    #[test]
    fn uniform_class_move_is_exact_ratio(
        inst in uniform_instance(),
        from_seed in 0usize..100,
        to_seed in 0usize..100,
    ) {
        // Everything on one machine, then one whole-class move: the
        // makespan must be the exact Ratio the oracle computes.
        let from = from_seed % inst.m();
        let to = to_seed % inst.m();
        let start = Schedule::new(vec![from; inst.n()]);
        let mut tracker = UniformLoadTracker::new(&inst, &start).expect("valid");
        let k = inst.job(0).class;
        if let Some(predicted) = tracker.eval_class_move(from, k, to) {
            tracker.apply_class_move(from, k, to);
            prop_assert_eq!(predicted, tracker.makespan());
            let oracle = uniform_makespan(&inst, &tracker.schedule()).expect("valid");
            prop_assert_eq!(predicted, oracle);
            prop_assert!(predicted >= Ratio::ZERO);
        }
    }
}
