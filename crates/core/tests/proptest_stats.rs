//! Property tests for [`sst_core::stats::LatencyHistogram::merge`]: merging
//! two histograms must be **bucket-exact** — indistinguishable (by derived
//! equality: every bucket count, the sample count, the saturating sum and
//! the max) from recording the union of their samples into one histogram.
//! This is the property that makes per-worker histograms safe to aggregate
//! into the global registry image.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_core::stats::LatencyHistogram;

/// Latency-shaped samples: mostly small values, a tail of huge ones
/// (including the u64 extremes, which exercise bucket 0 / bucket 63 and
/// the saturating sum).
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec(prop_oneof![0u64..10_000, 0u64..100_000_000, Just(0u64), Just(u64::MAX),], 0..64)
}

fn recorded(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_equals_recording_the_union(a in samples(), b in samples()) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&merged, &recorded(&union));
        // Scalar views agree with the union too.
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.max(), union.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_is_commutative_and_identity_on_empty(a in samples(), b in samples()) {
        let mut ab = recorded(&a);
        ab.merge(&recorded(&b));
        let mut ba = recorded(&b);
        ba.merge(&recorded(&a));
        prop_assert_eq!(&ab, &ba);
        let mut with_empty = recorded(&a);
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(&with_empty, &recorded(&a));
    }

    #[test]
    fn merge_preserves_percentile_semantics(a in samples(), b in samples()) {
        // Not just structural equality: the quantile estimates of the
        // merged histogram are exactly those of the union-recorded one.
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let oracle = recorded(&union);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), oracle.percentile(q));
        }
    }
}
