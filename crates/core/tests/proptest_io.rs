//! Property tests for the JSON layer: arbitrary valid instances must
//! survive serialize→parse round trips bit-exactly, and parsing always
//! re-validates (no malformed instance can be smuggled in through disk).

#![cfg(feature = "serde")]

use proptest::collection::vec;
use proptest::prelude::*;
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance, INF};
use sst_core::io::{
    schedule_from_json, schedule_to_json, uniform_from_json, uniform_to_json, unrelated_from_json,
    unrelated_to_json,
};
use sst_core::schedule::Schedule;

fn uniform_instance() -> impl Strategy<Value = UniformInstance> {
    (vec(1u64..=1000, 1..=6), vec(0u64..=1000, 1..=5), vec((0usize..5, 0u64..=10_000), 0..=20))
        .prop_map(|(speeds, setups, raw)| {
            let k = setups.len();
            let jobs: Vec<Job> = raw.into_iter().map(|(c, p)| Job::new(c % k, p)).collect();
            UniformInstance::new(speeds, setups, jobs).expect("valid")
        })
}

fn unrelated_instance() -> impl Strategy<Value = UnrelatedInstance> {
    (1usize..=4, vec((0usize..3, 1u64..=100, 0u8..8), 1..=10), vec(vec(0u64..=50, 4), 3)).prop_map(
        |(m, raw, setup_rows)| {
            let ptimes: Vec<Vec<u64>> = raw
                .iter()
                .map(|&(_, p, mask)| {
                    (0..m)
                        .map(|i| {
                            // Keep machine 0 finite so every job runs.
                            if i > 0 && mask & (1 << i) != 0 {
                                INF
                            } else {
                                p + i as u64
                            }
                        })
                        .collect()
                })
                .collect();
            let classes: Vec<usize> = raw.iter().map(|&(c, _, _)| c % 3).collect();
            let setups: Vec<Vec<u64>> = setup_rows
                .into_iter()
                .map(|row| (0..m).map(|i| row[i % row.len()]).collect())
                .collect();
            UnrelatedInstance::new(m, classes, ptimes, setups).expect("valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_roundtrip_is_identity(inst in uniform_instance()) {
        let back = uniform_from_json(&uniform_to_json(&inst))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn unrelated_roundtrip_preserves_infinities(inst in unrelated_instance()) {
        let back = unrelated_from_json(&unrelated_to_json(&inst))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn schedule_roundtrip(asg in vec(0usize..100, 0..=30)) {
        let s = Schedule::new(asg);
        let back = schedule_from_json(&schedule_to_json(&s))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(s, back);
    }

    #[test]
    fn cross_kind_parsing_always_errors(inst in uniform_instance()) {
        // A uniform file must never parse as an unrelated instance.
        prop_assert!(unrelated_from_json(&uniform_to_json(&inst)).is_err());
    }
}
