//! Differential property tests of the packed wire codec
//! (`sst_core::wire`) against the JSON codec (`sst_core::io`): for
//! arbitrary instances of all three kinds, deltas and schedules, the two
//! encodings must decode to *bit-identical* values — the packed path is a
//! perf optimisation, never a semantic fork. Plus the torn/corrupt-frame
//! contract: any strict prefix and any single flipped byte of a container
//! is rejected, never panics, never allocates unbounded.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_core::delta::InstanceDelta;
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance};
use sst_core::io;
use sst_core::schedule::Schedule;
use sst_core::wire::{
    decode_frame, encode_frame, instance_from_container, instance_to_container, read_deltas,
    read_schedule, write_deltas, write_schedule, Cursor, PackedInstance, FT_INSTANCE,
};

fn uniform_instance() -> impl Strategy<Value = UniformInstance> {
    (vec(1u64..50, 1..5), vec(0u64..60, 1..4), vec((0usize..100, 1u64..200), 0..16)).prop_map(
        |(speeds, setups, raw)| {
            let k = setups.len();
            let jobs: Vec<Job> = raw.into_iter().map(|(c, p)| Job::new(c % k, p)).collect();
            UniformInstance::new(speeds, setups, jobs).expect("constructed valid")
        },
    )
}

fn unrelated_instance() -> impl Strategy<Value = UnrelatedInstance> {
    (2usize..5, 1usize..4, vec((0usize..100, 1u64..200), 1..16)).prop_map(|(m, k, raw)| {
        let job_class: Vec<usize> = raw.iter().map(|&(c, _)| c % k).collect();
        let ptimes: Vec<Vec<u64>> =
            raw.iter().map(|&(_, p)| (0..m).map(|i| p + (i as u64) * 7 % 90).collect()).collect();
        let setups: Vec<Vec<u64>> =
            (0..k).map(|kk| (0..m).map(|i| 1 + ((kk + i) as u64 % 40)).collect()).collect();
        UnrelatedInstance::new(m, job_class, ptimes, setups).expect("constructed valid")
    })
}

fn any_packed() -> impl Strategy<Value = PackedInstance> {
    prop_oneof![
        uniform_instance().prop_map(PackedInstance::Uniform),
        unrelated_instance().prop_map(PackedInstance::Unrelated),
        unrelated_instance().prop_map(PackedInstance::Splittable),
    ]
}

fn any_delta() -> impl Strategy<Value = InstanceDelta> {
    prop_oneof![
        (0usize..8, vec(1u64..300, 1..5))
            .prop_map(|(class, times)| InstanceDelta::AddJob { class, times }),
        (0usize..64).prop_map(|job| InstanceDelta::RemoveJob { job }),
        (0usize..64, vec(1u64..300, 1..5))
            .prop_map(|(job, times)| InstanceDelta::ResizeJob { job, times }),
        (0usize..8, vec(1u64..300, 1..5))
            .prop_map(|(class, times)| InstanceDelta::ResizeSetup { class, times }),
        vec(1u64..300, 1..5).prop_map(|times| InstanceDelta::AddClass { times }),
    ]
}

/// JSON roundtrip of a kind-preserving instance, via the matching codec.
fn json_roundtrip(inst: &PackedInstance) -> PackedInstance {
    match inst {
        PackedInstance::Uniform(u) => PackedInstance::Uniform(
            io::uniform_from_json(&io::uniform_to_json_line(u)).expect("json roundtrip"),
        ),
        PackedInstance::Unrelated(u) => PackedInstance::Unrelated(
            io::unrelated_from_json(&io::unrelated_to_json_line(u)).expect("json roundtrip"),
        ),
        PackedInstance::Splittable(u) => PackedInstance::Splittable(
            io::splittable_from_json(&io::splittable_to_json_line(u)).expect("json roundtrip"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_and_json_decode_to_identical_instances(inst in any_packed()) {
        // Both codecs roundtrip; their decodes agree bit-for-bit.
        let via_json = json_roundtrip(&inst);
        let bytes = instance_to_container(&inst);
        let via_packed = instance_from_container(&bytes).expect("own container parses");
        prop_assert_eq!(&via_packed, &inst);
        prop_assert_eq!(&via_packed, &via_json);
        prop_assert_eq!(via_packed.kind(), inst.kind());
    }

    #[test]
    fn packed_and_json_decode_to_identical_deltas(deltas in vec(any_delta(), 0..8)) {
        let text = sst_core::delta::deltas_to_json(&deltas);
        let value = io::json::parse(&text).expect("own json parses");
        let via_json = sst_core::delta::deltas_from_value(&value).expect("json roundtrip");
        let mut buf = Vec::new();
        write_deltas(&mut buf, &deltas);
        let mut cur = Cursor::new(&buf);
        let via_packed = read_deltas(&mut cur).expect("own bytes parse");
        cur.finish().expect("no trailing bytes");
        prop_assert_eq!(&via_packed, &deltas);
        prop_assert_eq!(via_packed, via_json);
    }

    #[test]
    fn packed_and_json_decode_to_identical_schedules(raw in vec(0usize..8, 0..32)) {
        let sched = Schedule::new(raw);
        let via_json =
            io::schedule_from_json(&io::schedule_to_json(&sched)).expect("json roundtrip");
        let mut buf = Vec::new();
        write_schedule(&mut buf, &sched);
        let mut cur = Cursor::new(&buf);
        let via_packed = read_schedule(&mut cur).expect("own bytes parse");
        cur.finish().expect("no trailing bytes");
        prop_assert_eq!(&via_packed, &sched);
        prop_assert_eq!(via_packed, via_json);
    }

    #[test]
    fn torn_container_prefix_is_rejected_not_panicking(
        inst in any_packed(),
        cut_sel in 0usize..10_000,
    ) {
        let bytes = instance_to_container(&inst);
        let cut = cut_sel % bytes.len();
        prop_assert!(instance_from_container(&bytes[..cut]).is_err());
    }

    #[test]
    fn any_single_corrupt_byte_is_rejected(
        inst in any_packed(),
        pos_sel in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let bytes = instance_to_container(&inst);
        let pos = pos_sel % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        // Header validators catch the first 20 bytes; the FNV checksum
        // catches every payload flip.
        prop_assert!(instance_from_container(&bad).is_err(), "flip {flip:#x} at {pos} accepted");
    }

    #[test]
    fn trailing_garbage_after_a_frame_is_rejected(
        inst in any_packed(),
        extra in vec(0u8..255, 1..16),
    ) {
        let mut bytes = instance_to_container(&inst);
        bytes.extend_from_slice(&extra);
        prop_assert!(instance_from_container(&bytes).is_err());
    }

    #[test]
    fn corrupt_counts_never_drive_huge_allocations(payload in vec(0u8..255, 0..64)) {
        // A syntactically valid frame around garbage bytes must decode to
        // an error, not a panic or an absurd reservation: Cursor::len caps
        // claimed element counts by the bytes actually present.
        let frame = encode_frame(FT_INSTANCE, &payload);
        let (ft, body) = decode_frame(&frame).expect("frame layer accepts any payload");
        prop_assert_eq!(ft, FT_INSTANCE);
        prop_assert_eq!(body, &payload[..]);
        let _ = instance_from_container(&frame); // must return, not abort
    }
}
