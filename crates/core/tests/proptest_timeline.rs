//! Property tests for the timeline layer: on arbitrary valid schedules, the
//! laid-out timeline must satisfy every batching invariant and agree with
//! the load-formula evaluator of `sst_core::schedule` exactly.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance, INF};
use sst_core::schedule::{uniform_makespan, unrelated_makespan, Schedule};
use sst_core::timeline::{render_gantt, Span, Timeline};

fn uniform_case() -> impl Strategy<Value = (UniformInstance, Schedule)> {
    (vec(1u64..=6, 1..=4), vec(0u64..=20, 1..=4), vec((0usize..4, 0u64..=30), 0..=12))
        .prop_flat_map(|(speeds, setups, raw_jobs)| {
            let m = speeds.len();
            let k = setups.len();
            let jobs: Vec<Job> = raw_jobs.into_iter().map(|(c, p)| Job::new(c % k, p)).collect();
            let n = jobs.len();
            let inst = UniformInstance::new(speeds, setups, jobs).expect("valid instance");
            (Just(inst), vec(0usize..m, n..=n))
        })
        .prop_map(|(inst, asg)| (inst, Schedule::new(asg)))
}

fn unrelated_case() -> impl Strategy<Value = (UnrelatedInstance, Schedule)> {
    (
        1usize..=4,                // m
        vec(0usize..3, 1..=10),    // classes (k = 3)
        vec(vec(1u64..=25, 4), 3), // setup rows padded to m below
        proptest::num::u64::ANY,   // seed for ptimes
    )
        .prop_map(|(m, job_class, setup_rows, seed)| {
            let n = job_class.len();
            // Deterministic ptimes with occasional INF but machine 0 finite.
            let ptimes: Vec<Vec<u64>> = (0..n)
                .map(|j| {
                    (0..m)
                        .map(|i| {
                            let h = seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add((j * 31 + i * 17) as u64);
                            if i != 0 && h % 5 == 0 {
                                INF
                            } else {
                                1 + (h >> 33) % 20
                            }
                        })
                        .collect()
                })
                .collect();
            let setups: Vec<Vec<u64>> = setup_rows
                .into_iter()
                .map(|row| (0..m).map(|i| row[i % row.len()]).collect())
                .collect();
            let inst = UnrelatedInstance::new(m, job_class, ptimes, setups)
                .expect("machine 0 is always finite");
            // Schedule everything on machine 0 unless another finite
            // machine is available by the hash.
            let asg: Vec<usize> = (0..n)
                .map(|j| {
                    let cand = (seed.wrapping_add(j as u64 * 97) % m as u64) as usize;
                    if inst.ptime(cand, j) != INF {
                        cand
                    } else {
                        0
                    }
                })
                .collect();
            (inst, Schedule::new(asg))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn uniform_timeline_validates_and_matches_evaluator(
        (inst, sched) in uniform_case()
    ) {
        let tl = Timeline::from_uniform(&inst, &sched).expect("valid schedule");
        prop_assert_eq!(tl.validate(), Ok(()));
        prop_assert_eq!(tl.makespan(), uniform_makespan(&inst, &sched).expect("valid"));
        // Per machine: finish time equals work/speed of the evaluator.
        let loads = sst_core::schedule::uniform_loads(&inst, &sched).expect("valid");
        for (i, mt) in tl.machines().iter().enumerate() {
            prop_assert_eq!(
                mt.finish(),
                sst_core::Ratio::new(loads[i], inst.speed(i)),
                "machine {} finish mismatch", i
            );
        }
    }

    #[test]
    fn uniform_timeline_slots_account_every_job_once(
        (inst, sched) in uniform_case()
    ) {
        let tl = Timeline::from_uniform(&inst, &sched).expect("valid schedule");
        let mut seen = vec![0usize; inst.n()];
        for mt in tl.machines() {
            for slot in &mt.slots {
                if let Span::Job(j) = slot.what {
                    seen[j] += 1;
                    // The job sits on the machine the schedule says.
                    prop_assert_eq!(sched.machine_of(j), mt.machine);
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn uniform_batches_pay_each_class_once(
        (inst, sched) in uniform_case()
    ) {
        let tl = Timeline::from_uniform(&inst, &sched).expect("valid schedule");
        for mt in tl.machines() {
            let setups = mt.slots.iter().filter(|s| matches!(s.what, Span::Setup(_))).count();
            let classes: std::collections::BTreeSet<usize> = mt
                .slots
                .iter()
                .filter_map(|s| match s.what {
                    Span::Job(j) => Some(inst.job(j).class),
                    Span::Setup(_) => None,
                })
                .collect();
            prop_assert_eq!(setups, classes.len(), "machine {}", mt.machine);
        }
    }

    #[test]
    fn gantt_renders_all_machines_for_any_schedule(
        (inst, sched) in uniform_case()
    ) {
        let tl = Timeline::from_uniform(&inst, &sched).expect("valid schedule");
        let chart = render_gantt(&tl, |j| inst.job(j).class, 30);
        prop_assert_eq!(chart.lines().count(), inst.m());
        for line in chart.lines() {
            prop_assert!(line.contains('|'), "row shape: {}", line);
        }
    }

    #[test]
    fn unrelated_timeline_validates_and_matches_evaluator(
        (inst, sched) in unrelated_case()
    ) {
        let tl = Timeline::from_unrelated(&inst, &sched).expect("valid by construction");
        prop_assert_eq!(tl.validate(), Ok(()));
        prop_assert_eq!(
            tl.makespan(),
            unrelated_makespan(&inst, &sched).expect("valid")
        );
    }

    #[test]
    fn unrelated_start_times_are_consistent(
        (inst, sched) in unrelated_case()
    ) {
        let tl = Timeline::from_unrelated(&inst, &sched).expect("valid");
        // Every job has a start time, and job slots have the advertised
        // duration p_ij.
        for mt in tl.machines() {
            for slot in &mt.slots {
                if let Span::Job(j) = slot.what {
                    prop_assert_eq!(tl.start_of(j), Some(slot.start));
                    prop_assert_eq!(slot.end - slot.start, inst.ptime(mt.machine, j));
                }
            }
        }
    }
}
