//! Golden test pinning the trace-event JSON schema: one event of every
//! kind, encoded by [`sst_core::telemetry::TraceEvent::write_json`] and
//! round-tripped through the workspace JSON parser (`sst_core::io`). The
//! exact field *sets* are asserted — adding, renaming or dropping a field
//! is a deliberate schema change and must update this test (and the
//! README "Observability" section).

use std::collections::BTreeMap;

use sst_core::io::json::{self, JsonValue};
use sst_core::telemetry::TraceEvent;

fn encode(event: &TraceEvent, ts_us: u64) -> String {
    let mut out = String::new();
    event.write_json(ts_us, &mut out);
    out
}

fn parse_object(line: &str) -> BTreeMap<String, JsonValue> {
    match json::parse(line).unwrap_or_else(|e| panic!("unparseable event {line:?}: {e}")) {
        JsonValue::Object(map) => map,
        other => panic!("event must encode as an object, got {other:?}"),
    }
}

fn keys(map: &BTreeMap<String, JsonValue>) -> Vec<&str> {
    map.keys().map(String::as_str).collect()
}

fn uint(map: &BTreeMap<String, JsonValue>, k: &str) -> u64 {
    match map.get(k) {
        Some(JsonValue::Uint(v)) => *v,
        other => panic!("field '{k}' must be a uint, got {other:?}"),
    }
}

fn str_field<'a>(map: &'a BTreeMap<String, JsonValue>, k: &str) -> &'a str {
    match map.get(k) {
        Some(JsonValue::Str(s)) => s,
        other => panic!("field '{k}' must be a string, got {other:?}"),
    }
}

/// One exemplar of every event kind with its pinned field set.
fn golden() -> Vec<(TraceEvent, &'static str, Vec<&'static str>)> {
    vec![
        (TraceEvent::Enqueue { id: 7 }, "enqueue", vec!["event", "id", "ts_us"]),
        (
            TraceEvent::Dequeue { id: 7, worker: 2, queue_wait_us: 55 },
            "dequeue",
            vec!["event", "id", "queue_wait_us", "ts_us", "worker"],
        ),
        (
            TraceEvent::Decode { id: 7, codec: "binary".into(), micros: 12 },
            "decode",
            vec!["codec", "event", "id", "micros", "ts_us"],
        ),
        (
            TraceEvent::RaceStart { id: 7, members: 3 },
            "race_start",
            vec!["event", "id", "members", "ts_us"],
        ),
        (
            TraceEvent::SolverStart { id: 7, solver: "local-search".into() },
            "solver_start",
            vec!["event", "id", "solver", "ts_us"],
        ),
        (
            TraceEvent::SolverEnd {
                id: 7,
                solver: "local-search".into(),
                outcome: "completed".into(),
                micros: 1800,
                makespan: Some(152.5),
            },
            "solver_end",
            vec!["event", "id", "makespan", "micros", "outcome", "solver", "ts_us"],
        ),
        (
            TraceEvent::Incumbent { id: 7, solver: "anneal".into(), at_us: 900, makespan: 151.0 },
            "incumbent",
            vec!["at_us", "event", "id", "makespan", "solver", "ts_us"],
        ),
        (
            TraceEvent::CancelLatency { id: 7, solver: "exact-bb".into(), micros: 120 },
            "cancel",
            vec!["event", "id", "micros", "solver", "ts_us"],
        ),
        (
            TraceEvent::Respond { id: 7, ok: true, total_us: 2500 },
            "respond",
            vec!["event", "id", "ok", "total_us", "ts_us"],
        ),
        (
            TraceEvent::JournalAppend { sid: 4, bytes: 310, micros: 85, fsync: false },
            "journal_append",
            vec!["bytes", "event", "fsync", "micros", "sid", "ts_us"],
        ),
        (
            TraceEvent::JournalCommit { batch: 12, bytes: 3100, micros: 950, fsync: true },
            "journal_commit",
            vec!["batch", "bytes", "event", "fsync", "micros", "ts_us"],
        ),
        (
            TraceEvent::Snapshot { sid: 4, micros: 400 },
            "snapshot",
            vec!["event", "micros", "sid", "ts_us"],
        ),
        (TraceEvent::Spill { sid: 4 }, "spill", vec!["event", "sid", "ts_us"]),
        (TraceEvent::ColdReload { sid: 4 }, "cold_reload", vec!["event", "sid", "ts_us"]),
        (
            TraceEvent::Recovery {
                sessions: 3,
                snapshots_loaded: 2,
                replayed: 5,
                dropped_bytes: 0,
                micros: 9000,
            },
            "recovery",
            vec![
                "dropped_bytes",
                "event",
                "micros",
                "replayed",
                "sessions",
                "snapshots_loaded",
                "ts_us",
            ],
        ),
        (TraceEvent::SinkClose { dropped: 0 }, "sink_close", vec!["dropped", "event", "ts_us"]),
    ]
}

#[test]
fn every_event_kind_roundtrips_with_its_pinned_field_set() {
    for (event, kind, fields) in golden() {
        let line = encode(&event, 1234);
        let map = parse_object(&line);
        assert_eq!(event.kind(), kind);
        assert_eq!(str_field(&map, "event"), kind, "{line}");
        assert_eq!(uint(&map, "ts_us"), 1234, "{line}");
        assert_eq!(keys(&map), fields, "schema drift in '{kind}': {line}");
    }
}

#[test]
fn numeric_fields_parse_as_numbers_not_strings() {
    let map =
        parse_object(&encode(&TraceEvent::Dequeue { id: 9, worker: 1, queue_wait_us: 77 }, 5));
    assert_eq!(uint(&map, "id"), 9);
    assert_eq!(uint(&map, "worker"), 1);
    assert_eq!(uint(&map, "queue_wait_us"), 77);

    // Makespans are always JSON floats (decimal point even for integral
    // values), matching the serve protocol's float convention.
    let map = parse_object(&encode(
        &TraceEvent::Incumbent {
            id: 1,
            solver: "greedy-baseline".into(),
            at_us: 3,
            makespan: 42.0,
        },
        0,
    ));
    match map.get("makespan") {
        Some(JsonValue::Float(v)) => assert!((v - 42.0).abs() < 1e-12),
        other => panic!("makespan must parse as a float, got {other:?}"),
    }
}

#[test]
fn optional_and_boolean_fields_keep_their_shapes() {
    // A cancelled solver has no makespan: the field is omitted, not null.
    let map = parse_object(&encode(
        &TraceEvent::SolverEnd {
            id: 2,
            solver: "rounding".into(),
            outcome: "cancelled".into(),
            micros: 10,
            makespan: None,
        },
        0,
    ));
    assert!(!map.contains_key("makespan"));
    assert_eq!(str_field(&map, "outcome"), "cancelled");

    let map = parse_object(&encode(
        &TraceEvent::JournalAppend { sid: 1, bytes: 10, micros: 1, fsync: true },
        0,
    ));
    assert_eq!(map.get("fsync"), Some(&JsonValue::Bool(true)));
    let map = parse_object(&encode(&TraceEvent::Respond { id: 1, ok: false, total_us: 1 }, 0));
    assert_eq!(map.get("ok"), Some(&JsonValue::Bool(false)));
}

#[test]
fn solver_names_with_json_metacharacters_stay_parseable() {
    let map = parse_object(&encode(
        &TraceEvent::SolverStart { id: 1, solver: "weird \"name\"\\with\nnoise".into() },
        0,
    ));
    assert_eq!(str_field(&map, "solver"), "weird \"name\"\\with\nnoise");
}
