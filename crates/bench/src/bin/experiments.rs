//! CLI entry point regenerating the experiment tables of DESIGN.md §4.
//!
//! ```sh
//! cargo run -p sst-bench --release --bin experiments              # all, full size
//! cargo run -p sst-bench --release --bin experiments -- --quick   # trimmed grids
//! cargo run -p sst-bench --release --bin experiments -- E3 E4     # a subset
//! cargo run -p sst-bench --release --bin experiments -- --json out.json
//! ```

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--json" {
            match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: experiments [--quick] [--json FILE] [E1 E2 … E11]");
            return;
        } else {
            ids.push(arg);
        }
    }
    let t0 = std::time::Instant::now();
    let tables = sst_bench::run_experiments_with(&ids, quick, |table| {
        println!("{}", table.render());
    });
    if let Some(path) = json_path {
        let json = sst_bench::tables_to_json(&tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("tables archived to {path}");
    }
    eprintln!("total: {:.1}s", t0.elapsed().as_secs_f64());
}
