//! # sst-bench — the experiment harness
//!
//! One function per experiment of DESIGN.md §4 (E1–E8). Each returns the
//! table it prints, so integration tests can assert on the measured shapes
//! and EXPERIMENTS.md can quote exact numbers. Runtime-oriented
//! measurements live in the criterion benches (`benches/`); the functions
//! here measure *solution quality*, which criterion cannot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rayon::prelude::*;

use sst_algos::exact::{exact_uniform, exact_unrelated};
use sst_algos::list::{greedy_unrelated, oblivious_lpt_uniform};
use sst_algos::lpt::{lpt_with_setups_makespan, LPT_FACTOR};
use sst_algos::ptas::{ptas_uniform, PtasConfig};
use sst_algos::ra::solve_ra_class_uniform;
use sst_algos::rounding::{solve_unrelated_randomized, RoundingConfig};
use sst_core::bounds::uniform_lower_bound;
use sst_core::groups::SpeedGroups;
use sst_core::ratio::Ratio;
use sst_core::schedule::{uniform_makespan, unrelated_makespan};
use sst_gen::{SetupWeight, SpeedProfile, UniformParams, UnrelatedParams};

/// A generic table: header + rows of cells, pretty-printable.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("E1" …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper claim being measured.
    pub claim: &'static str,
    /// Column names.
    pub header: Vec<&'static str>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "claim: {}", self.claim);
        for (c, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[c]);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[c]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}
fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// E1 — Lemma 2.1: measured LPT ratios stay below `3(1+1/√3) ≈ 4.74`.
///
/// Ratios are against the certified combinatorial lower bound (so they
/// upper-bound the true ratio); on the small rows also against the exact
/// optimum. `quick` trims the grid.
pub fn e1_lpt(quick: bool) -> Table {
    struct Row {
        n: usize,
        m: usize,
        k: usize,
        setups: SetupWeight,
        seeds: u64,
    }
    let mut grid = vec![
        Row { n: 20, m: 3, k: 4, setups: SetupWeight::Light, seeds: 5 },
        Row { n: 20, m: 3, k: 4, setups: SetupWeight::Heavy, seeds: 5 },
        Row { n: 60, m: 6, k: 10, setups: SetupWeight::Moderate, seeds: 5 },
        Row { n: 120, m: 10, k: 20, setups: SetupWeight::Heavy, seeds: 5 },
    ];
    if !quick {
        grid.push(Row { n: 300, m: 20, k: 40, setups: SetupWeight::Moderate, seeds: 5 });
        grid.push(Row { n: 500, m: 50, k: 80, setups: SetupWeight::Heavy, seeds: 5 });
        grid.push(Row { n: 500, m: 50, k: 5, setups: SetupWeight::Light, seeds: 5 });
    }
    let mut rows: Vec<Vec<String>> = grid
        .par_iter()
        .map(|r| {
            let mut worst: f64 = 0.0;
            let mut sum = 0.0;
            for seed in 0..r.seeds {
                let inst = sst_gen::uniform(&UniformParams {
                    n: r.n,
                    m: r.m,
                    k: r.k,
                    size_range: (1, 100),
                    speeds: SpeedProfile::UniformRandom { lo: 1, hi: 8 },
                    setups: r.setups,
                    seed: 1000 + seed,
                });
                let lb = uniform_lower_bound(&inst).to_f64();
                let (_, ms) = lpt_with_setups_makespan(&inst);
                let ratio = ms.to_f64() / lb;
                worst = worst.max(ratio);
                sum += ratio;
            }
            vec![
                r.n.to_string(),
                r.m.to_string(),
                r.k.to_string(),
                format!("{:?}", r.setups),
                f3(sum / r.seeds as f64),
                f3(worst),
                f2(LPT_FACTOR),
            ]
        })
        .collect();
    // Adversarial family + exact-referenced small rows (sequential: B&B).
    for m in [3usize, 4] {
        let inst = sst_gen::lpt_adversarial(m, 7);
        let lb = uniform_lower_bound(&inst).to_f64();
        let (_, ms) = lpt_with_setups_makespan(&inst);
        rows.push(vec![
            inst.n().to_string(),
            m.to_string(),
            inst.num_classes().to_string(),
            "Adversarial".into(),
            f3(ms.to_f64() / lb),
            f3(ms.to_f64() / lb),
            f2(LPT_FACTOR),
        ]);
    }
    for seed in 0..3u64 {
        let inst = sst_gen::uniform(&UniformParams {
            n: 11,
            m: 3,
            k: 3,
            size_range: (1, 30),
            speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
            setups: SetupWeight::Moderate,
            seed: 50 + seed,
        });
        let exact = exact_uniform(&inst, 1 << 24);
        let (_, ms) = lpt_with_setups_makespan(&inst);
        let ratio = ms.to_f64() / exact.makespan.to_f64();
        rows.push(vec![
            "11".into(),
            "3".into(),
            "3".into(),
            format!("vs-exact(s{seed})"),
            f3(ratio),
            f3(ratio),
            f2(LPT_FACTOR),
        ]);
    }
    Table {
        id: "E1",
        title: "LPT with setup batching (Lemma 2.1)",
        claim: "makespan ≤ 3(1+1/√3)·Opt ≈ 4.74·Opt on uniform machines",
        header: vec!["n", "m", "K", "family", "mean-ratio", "worst-ratio", "bound"],
        rows,
    }
}

/// E2 — Section 2 PTAS: ratio vs exact optimum shrinks with ε; certified
/// `(1+O(ε))` behaviour on small instances.
pub fn e2_ptas(quick: bool) -> Table {
    let seeds: u64 = if quick { 2 } else { 4 };
    let qs: &[u64] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let mut rows = Vec::new();
    for &q in qs {
        // ε = 1/8 multiplies the DP state space; keep it tractable with a
        // smaller instance and a firm node cap (the decision degrades to
        // "infeasible" on cap — sound, see PtasConfig docs).
        let (n, node_limit) = if q >= 8 { (8usize, 2_000_000u64) } else { (10, 30_000_000) };
        let results: Vec<(f64, f64, f64)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let inst = sst_gen::uniform(&UniformParams {
                    n,
                    m: 3,
                    k: 3,
                    size_range: (1, 25),
                    speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
                    setups: SetupWeight::Moderate,
                    seed: 300 + seed,
                });
                let t0 = std::time::Instant::now();
                let res = ptas_uniform(&inst, &PtasConfig { q, node_limit });
                let dt = t0.elapsed().as_secs_f64();
                let exact = exact_uniform(&inst, 1 << 26);
                assert!(exact.complete, "exact reference must finish");
                (res.makespan.to_f64() / exact.makespan.to_f64(), dt, 0.0)
            })
            .collect();
        let mean: f64 = results.iter().map(|r| r.0).sum::<f64>() / results.len() as f64;
        let worst: f64 = results.iter().map(|r| r.0).fold(0.0, f64::max);
        let time: f64 = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
        rows.push(vec![
            format!("1/{q}"),
            format!("{n}×3"),
            f3(mean),
            f3(worst),
            format!("{:.0}", 1.0 + 3.0 / q as f64 * 100.0 - 100.0 + 100.0), // placeholder replaced below
            format!("{:.1}ms", time * 1e3),
        ]);
        let last = rows.last_mut().expect("just pushed");
        last[4] = f3(1.0 + 3.0 / q as f64);
    }
    Table {
        id: "E2",
        title: "PTAS for uniform machines (Section 2)",
        claim: "ratio ≤ 1+O(ε), shrinking with ε; runtime grows in 1/ε",
        header: vec!["eps", "n×m", "mean-ratio", "worst-ratio", "1+3eps", "mean-time"],
        rows,
    }
}

/// E3 — Theorem 3.3: rounding ratio grows at most like `log n + log m`;
/// includes the `c`-parameter ablation.
pub fn e3_rounding(quick: bool) -> Table {
    let grid: Vec<(usize, usize)> =
        if quick { vec![(20, 4), (40, 6)] } else { vec![(20, 4), (40, 6), (80, 8), (120, 10)] };
    let mut rows: Vec<Vec<String>> = grid
        .par_iter()
        .map(|&(n, m)| {
            let seeds = 3u64;
            let mut worst = 0.0f64;
            let mut sum = 0.0;
            let mut fallbacks = 0usize;
            for seed in 0..seeds {
                let inst = sst_gen::unrelated(&UnrelatedParams {
                    n,
                    m,
                    k: (n / 5).max(2),
                    seed: 700 + seed,
                    ..Default::default()
                });
                let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed });
                let ratio = res.makespan as f64 / res.t_star as f64;
                worst = worst.max(ratio);
                sum += ratio;
                fallbacks += res.fallback_jobs;
            }
            let env = (n as f64).ln() + (m as f64).ln();
            vec![
                n.to_string(),
                m.to_string(),
                "2.0".into(),
                f3(sum / seeds as f64),
                f3(worst),
                f3(env),
                f3(worst / env),
                fallbacks.to_string(),
            ]
        })
        .collect();
    // Ablation on c at fixed size: the failure probability of step 2 is
    // n^{-c}; frugal c leaves jobs to the guarantee-less fallback.
    for c in [0.05f64, 0.5, 2.0, 4.0] {
        let (n, m) = (40usize, 6usize);
        let mut worst = 0.0f64;
        let mut sum = 0.0;
        let mut fallbacks = 0usize;
        let seeds = 3u64;
        for seed in 0..seeds {
            let inst = sst_gen::unrelated(&UnrelatedParams {
                n,
                m,
                k: 8,
                seed: 900 + seed,
                ..Default::default()
            });
            let res = solve_unrelated_randomized(&inst, &RoundingConfig { c, seed });
            let ratio = res.makespan as f64 / res.t_star as f64;
            worst = worst.max(ratio);
            sum += ratio;
            fallbacks += res.fallback_jobs;
        }
        let env = (n as f64).ln() + (m as f64).ln();
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            format!("{c}"),
            f3(sum / seeds as f64),
            f3(worst),
            f3(env),
            f3(worst / env),
            fallbacks.to_string(),
        ]);
    }
    Table {
        id: "E3",
        title: "Randomized rounding on unrelated machines (Theorem 3.3)",
        claim: "makespan = O(T*·(log n + log m)) whp; T* is the LP lower bound",
        header: vec![
            "n",
            "m",
            "c",
            "mean-ratio",
            "worst-ratio",
            "ln n+ln m",
            "worst/env",
            "fallbacks",
        ],
        rows,
    }
}

/// E4 — Corollary 3.4 / Theorem 3.5: the reduction's integral-vs-fractional
/// gap grows linearly in `log N` on the GF(2) family.
pub fn e4_hardness(quick: bool) -> Table {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sst_setcover::{
        gf2_basis_cover, gf2_fractional_optimum, gf2_gap_instance, gf2_integral_optimum, reduce,
        reduction_makespan_lower_bound, schedule_from_cover,
    };
    let ks: Vec<u32> = if quick { vec![2, 3, 4] } else { vec![2, 3, 4, 5, 6] };
    let rows = ks
        .iter()
        .map(|&k| {
            let sc = gf2_gap_instance(k);
            let t = gf2_fractional_optimum(k).ceil() as usize;
            let mut rng = StdRng::seed_from_u64(42 + k as u64);
            let red = reduce(&sc, t, &mut rng);
            let lb = reduction_makespan_lower_bound(&red, gf2_integral_optimum(k));
            let sched = schedule_from_cover(&sc, &red, &gf2_basis_cover(k));
            let yes = unrelated_makespan(&red.instance, &sched).expect("valid");
            let frac_per_machine =
                red.num_classes as f64 * gf2_fractional_optimum(k) / red.instance.m() as f64;
            vec![
                k.to_string(),
                sc.num_sets().to_string(),
                red.num_classes.to_string(),
                red.instance.n().to_string(),
                lb.to_string(),
                yes.to_string(),
                f2(frac_per_machine),
                f2(lb as f64 / frac_per_machine),
            ]
        })
        .collect();
    Table {
        id: "E4",
        title: "Integrality gap via the Theorem 3.5 reduction (GF(2) family)",
        claim: "integral/fractional gap grows like k/2 = Θ(log N) = Θ(log n + log m)",
        header: vec!["k", "m=N", "K", "n", "int-LB", "schedule", "frac/machine", "gap"],
        rows,
    }
}

/// E5 — Theorem 3.10: the 2-approximation for RA with class-uniform
/// restrictions never exceeds `2·T*`, and tracks the exact optimum closely.
pub fn e5_ra(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 6 };
    let mut rows: Vec<Vec<String>> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let inst =
                sst_gen::ra_class_uniform(40, 6, 7, 3, (1, 40), SetupWeight::Moderate, 1300 + seed);
            let res = solve_ra_class_uniform(&inst);
            vec![
                format!("40×6 (s{seed})"),
                res.t_star.to_string(),
                res.makespan.to_string(),
                f3(res.makespan as f64 / res.t_star as f64),
                "2.00".into(),
            ]
        })
        .collect();
    // Exact-referenced small rows.
    for seed in 0..2u64 {
        let inst =
            sst_gen::ra_class_uniform(10, 3, 3, 2, (1, 20), SetupWeight::Moderate, 1400 + seed);
        let res = solve_ra_class_uniform(&inst);
        let exact = exact_unrelated(&inst, 1 << 24);
        rows.push(vec![
            format!("10×3 vs-exact (s{seed})"),
            exact.makespan.to_string(),
            res.makespan.to_string(),
            f3(res.makespan as f64 / exact.makespan as f64),
            "2.00".into(),
        ]);
    }
    Table {
        id: "E5",
        title: "RA with class-uniform restrictions (Theorem 3.10)",
        claim: "makespan ≤ 2·T* ≤ 2·Opt",
        header: vec!["instance", "T*/Opt", "makespan", "ratio", "bound"],
        rows,
    }
}

/// E6 — Theorem 3.11: the 3-approximation for class-uniform processing
/// times never exceeds `3·T*`.
pub fn e6_cupt(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 6 };
    let mut rows: Vec<Vec<String>> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let inst = sst_gen::class_uniform_ptimes(
                40,
                5,
                6,
                (1, 30),
                SetupWeight::Moderate,
                1500 + seed,
            );
            let res = sst_algos::cupt::solve_class_uniform_ptimes(&inst);
            vec![
                format!("40×5 (s{seed})"),
                res.t_star.to_string(),
                res.makespan.to_string(),
                f3(res.makespan as f64 / res.t_star as f64),
                "3.00".into(),
            ]
        })
        .collect();
    for seed in 0..2u64 {
        let inst =
            sst_gen::class_uniform_ptimes(10, 3, 3, (1, 15), SetupWeight::Moderate, 1600 + seed);
        let res = sst_algos::cupt::solve_class_uniform_ptimes(&inst);
        let exact = exact_unrelated(&inst, 1 << 24);
        rows.push(vec![
            format!("10×3 vs-exact (s{seed})"),
            exact.makespan.to_string(),
            res.makespan.to_string(),
            f3(res.makespan as f64 / exact.makespan as f64),
            "3.00".into(),
        ]);
    }
    Table {
        id: "E6",
        title: "Class-uniform processing times (Theorem 3.11)",
        claim: "makespan ≤ 3·T* ≤ 3·Opt",
        header: vec!["instance", "T*/Opt", "makespan", "ratio", "bound"],
        rows,
    }
}

/// E7 — Figure 1: speed-group structure across speed profiles. Verifies
/// each speed lies in exactly two groups, counts nonempty groups `G`, and
/// summarizes core-group coverage of the classes.
pub fn e7_groups(_quick: bool) -> Table {
    let profiles: Vec<(&'static str, SpeedProfile)> = vec![
        ("identical", SpeedProfile::Identical),
        ("uniform(1..8)", SpeedProfile::UniformRandom { lo: 1, hi: 8 }),
        ("geometric(4^0..4^4)", SpeedProfile::GeometricSpread { base: 4, tiers: 5 }),
        ("bimodal(1|64)", SpeedProfile::Bimodal { slow: 1, fast: 64, fast_per_8: 2 }),
    ];
    let rows = profiles
        .iter()
        .map(|(name, profile)| {
            let inst = sst_gen::uniform(&UniformParams {
                n: 40,
                m: 16,
                k: 8,
                speeds: *profile,
                seed: 77,
                ..Default::default()
            });
            let t = uniform_lower_bound(&inst);
            let q = 2u64;
            let groups = SpeedGroups::new(&inst, q, t);
            let g_max = groups.max_group();
            // Every machine in exactly two groups; group sizes.
            let mut sizes = Vec::new();
            for g in 0..=g_max {
                sizes.push(groups.machines_of_group(g).len());
            }
            let total: usize = sizes.iter().sum();
            assert_eq!(total, 2 * inst.m(), "each machine counted twice");
            // Core groups of the classes (Remark: every class has one).
            let core_groups: Vec<i64> =
                (0..inst.num_classes()).filter_map(|k| groups.core_group(inst.setup(k))).collect();
            let span =
                core_groups.iter().max().unwrap_or(&0) - core_groups.iter().min().unwrap_or(&0);
            vec![
                (*name).to_string(),
                inst.m().to_string(),
                format!("{}", g_max + 1),
                format!("{sizes:?}"),
                span.to_string(),
            ]
        })
        .collect();
    Table {
        id: "E7",
        title: "Speed groups of Figure 1 (ε = 1/2, γ = 1/8)",
        claim: "overlapping groups; every speed in exactly 2; G = O(log_{1/γ}(v_max/v_min))",
        header: vec!["profile", "m", "#groups", "|M_g| per group", "core-group span"],
        rows,
    }
}

/// E8 — setup-awareness matters: paper algorithms vs oblivious baselines
/// across setup weights, both environments.
pub fn e8_baselines(quick: bool) -> Table {
    let weights = [SetupWeight::Light, SetupWeight::Moderate, SetupWeight::Heavy];
    let seeds: u64 = if quick { 2 } else { 4 };
    let mut rows = Vec::new();
    for &w in &weights {
        // Uniform environment.
        let mut obl = 0.0f64;
        let mut lpt = 0.0f64;
        for seed in 0..seeds {
            let inst = sst_gen::uniform(&UniformParams {
                n: 80,
                m: 8,
                k: 16,
                setups: w,
                seed: 1700 + seed,
                ..Default::default()
            });
            let lb = uniform_lower_bound(&inst).to_f64();
            obl += uniform_makespan(&inst, &oblivious_lpt_uniform(&inst)).expect("valid").to_f64()
                / lb;
            lpt += lpt_with_setups_makespan(&inst).1.to_f64() / lb;
        }
        rows.push(vec![
            "uniform".into(),
            format!("{w:?}"),
            f3(obl / seeds as f64),
            f3(lpt / seeds as f64),
            "-".into(),
        ]);
        // Unrelated environment.
        let mut grd = 0.0f64;
        let mut rr = 0.0f64;
        for seed in 0..seeds {
            let inst = sst_gen::unrelated(&UnrelatedParams {
                n: 40,
                m: 5,
                k: 8,
                setups: w,
                seed: 1800 + seed,
                ..Default::default()
            });
            let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed });
            let t = res.t_star as f64;
            grd += unrelated_makespan(&inst, &greedy_unrelated(&inst)).expect("valid") as f64 / t;
            rr += res.makespan as f64 / t;
        }
        rows.push(vec![
            "unrelated".into(),
            format!("{w:?}"),
            f3(grd / seeds as f64),
            "-".into(),
            f3(rr / seeds as f64),
        ]);
    }
    Table {
        id: "E8",
        title: "Setup-awareness ablation (baselines vs paper algorithms)",
        claim: "oblivious baselines degrade with setup weight; guarantees hold throughout",
        header: vec!["env", "setups", "oblivious/greedy", "Lemma 2.1", "Thm 3.3"],
        rows,
    }
}

/// E9 — the splittable model of Correa et al. \[5\] (Section 3.3's
/// substrate): on heavy-class instances the split schedule beats the best
/// non-splittable one, and both certify against the same `T*`.
pub fn e9_splittable(quick: bool) -> Table {
    use sst_algos::splittable::{
        solve_splittable_class_uniform_ptimes, solve_splittable_ra_class_uniform,
    };
    let seeds: u64 = if quick { 3 } else { 6 };
    let mut rows: Vec<Vec<String>> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let inst = sst_gen::splittable_stress(4, 6, 12, 2100 + seed);
            let unsplit = solve_ra_class_uniform(&inst);
            let split = solve_splittable_ra_class_uniform(&inst);
            assert!(split.makespan <= 2.0 * split.t_star as f64 + 1e-6, "2T* violated");
            split.schedule.validate(&inst).expect("split invariants");
            let degree =
                (0..inst.num_classes()).map(|k| split.schedule.split_degree(k)).max().unwrap_or(0);
            vec![
                format!("ra-stress (s{seed})"),
                split.t_star.to_string(),
                unsplit.makespan.to_string(),
                format!("{:.1}", split.makespan),
                f3(split.makespan / split.t_star as f64),
                "2.00".into(),
                degree.to_string(),
            ]
        })
        .collect();
    for seed in 0..if quick { 2u64 } else { 4 } {
        let inst =
            sst_gen::class_uniform_ptimes(30, 5, 4, (1, 30), SetupWeight::Moderate, 2200 + seed);
        let unsplit = sst_algos::cupt::solve_class_uniform_ptimes(&inst);
        let split = solve_splittable_class_uniform_ptimes(&inst);
        assert!(split.makespan <= 3.0 * split.t_star as f64 + 1e-6, "3T* violated");
        split.schedule.validate(&inst).expect("split invariants");
        let degree =
            (0..inst.num_classes()).map(|k| split.schedule.split_degree(k)).max().unwrap_or(0);
        rows.push(vec![
            format!("cupt (s{seed})"),
            split.t_star.to_string(),
            unsplit.makespan.to_string(),
            format!("{:.1}", split.makespan),
            f3(split.makespan / split.t_star as f64),
            "3.00".into(),
            degree.to_string(),
        ]);
    }
    Table {
        id: "E9",
        title: "Splittable classes (Correa et al. [5], Section 3.3 substrate)",
        claim: "split makespan ≤ bound·T*, never above the unsplit rounding",
        header: vec!["family", "T*", "unsplit", "split", "ratio", "bound", "max-degree"],
        rows,
    }
}

/// E10 — the identical-machines lineage (\[24\]) plus the OR metaheuristic:
/// wrap rule and batch-LPT stay inside factor 4 while the setup-oblivious
/// baseline degrades; annealing polishes but certifies nothing.
pub fn e10_identical(quick: bool) -> Table {
    use sst_algos::annealing::{anneal_uniform, AnnealConfig};
    use sst_algos::identical::{wrap_capacity, wrap_identical};
    let weights = [SetupWeight::Light, SetupWeight::Moderate, SetupWeight::Heavy];
    let seeds: u64 = if quick { 2 } else { 4 };
    let rows: Vec<Vec<String>> = weights
        .par_iter()
        .map(|&w| {
            let mut obl = 0.0f64;
            let mut wrap = 0.0f64;
            let mut blpt = 0.0f64;
            let mut sa = 0.0f64;
            for seed in 0..seeds {
                let inst = sst_gen::uniform(&UniformParams {
                    n: 80,
                    m: 8,
                    k: 16,
                    setups: w,
                    seed: 2300 + seed,
                    speeds: SpeedProfile::Identical,
                    ..Default::default()
                });
                let lb = uniform_lower_bound(&inst).to_f64();
                obl +=
                    uniform_makespan(&inst, &oblivious_lpt_uniform(&inst)).expect("valid").to_f64()
                        / lb;
                let wrapped = wrap_identical(&inst);
                let wms = uniform_makespan(&inst, &wrapped).expect("valid");
                assert!(
                    wms.to_f64() <= wrap_capacity(&inst) as f64 + 1e-9,
                    "wrap exceeded its own capacity bound"
                );
                wrap += wms.to_f64() / lb;
                let (batch, bms) = lpt_with_setups_makespan(&inst);
                blpt += bms.to_f64() / lb;
                let res = anneal_uniform(
                    &inst,
                    &batch,
                    &AnnealConfig { iterations: 15_000, seed, ..AnnealConfig::default() },
                );
                sa += uniform_makespan(&inst, &res.schedule).expect("valid").to_f64() / lb;
            }
            let s = seeds as f64;
            vec![
                format!("{w:?}"),
                f3(obl / s),
                f3(wrap / s),
                f3(blpt / s),
                f3(sa / s),
                "4.00".into(),
            ]
        })
        .collect();
    Table {
        id: "E10",
        title: "Identical machines ([24] lineage) + annealing baseline",
        claim: "wrap/batch-LPT ≤ 4·Opt throughout; oblivious degrades; SA certifies nothing",
        header: vec!["setups", "oblivious", "wrap", "batch-LPT", "annealed", "bound"],
        rows,
    }
}

/// E11 — lower-bound strength: combinatorial bound ≤ assignment-LP `T*`
/// (Section 3.1's relaxation) ≤ configuration-LP bound (the \[19,20\]
/// lineage) ≤ exact optimum, with the configuration LP visibly tighter.
pub fn e11_bounds(quick: bool) -> Table {
    use sst_algos::configlp::{config_lp_lower_bound, ConfigLpLimits};
    use sst_algos::lp_relax::lp_makespan_lower_bound;
    use sst_core::bounds::unrelated_lower_bound;
    let seeds: u64 = if quick { 3 } else { 6 };
    let rows: Vec<Vec<String>> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let inst = sst_gen::unrelated(&UnrelatedParams {
                n: 10,
                m: 3,
                k: 3,
                size_range: (1, 20),
                setups: SetupWeight::Moderate,
                seed: 2500 + seed,
                ..Default::default()
            });
            let comb = unrelated_lower_bound(&inst);
            let assign = lp_makespan_lower_bound(&inst);
            let config = config_lp_lower_bound(&inst, &ConfigLpLimits::default());
            let exact = exact_unrelated(&inst, 1 << 24);
            assert!(exact.complete, "exact reference must finish");
            assert!(comb <= assign && assign <= config + 1 && config <= exact.makespan);
            vec![
                format!("10×3 (s{seed})"),
                comb.to_string(),
                assign.to_string(),
                config.to_string(),
                exact.makespan.to_string(),
                f3(config as f64 / exact.makespan as f64),
            ]
        })
        .collect();
    Table {
        id: "E11",
        title: "Lower-bound strength: combinatorial vs assignment LP vs configuration LP",
        claim: "comb ≤ assignment T* ≤ config-LP ≤ Opt; config-LP closes most of the gap",
        header: vec!["instance", "comb", "assign-LP", "config-LP", "Opt", "config/Opt"],
        rows,
    }
}

/// Runs the selected experiments (all when `ids` is empty), invoking
/// `sink` with each finished table (for progressive output), and returns
/// the tables in order.
pub fn run_experiments_with(
    ids: &[String],
    quick: bool,
    mut sink: impl FnMut(&Table),
) -> Vec<Table> {
    let all: Vec<(&str, fn(bool) -> Table)> = vec![
        ("E1", e1_lpt),
        ("E2", e2_ptas),
        ("E3", e3_rounding),
        ("E4", e4_hardness),
        ("E5", e5_ra),
        ("E6", e6_cupt),
        ("E7", e7_groups),
        ("E8", e8_baselines),
        ("E9", e9_splittable),
        ("E10", e10_identical),
        ("E11", e11_bounds),
    ];
    all.into_iter()
        .filter(|(id, _)| ids.is_empty() || ids.iter().any(|x| x.eq_ignore_ascii_case(id)))
        .map(|(_, f)| {
            let t = f(quick);
            sink(&t);
            t
        })
        .collect()
}

/// Runs the selected experiments (all when `ids` is empty) and returns the
/// tables in order.
pub fn run_experiments(ids: &[String], quick: bool) -> Vec<Table> {
    run_experiments_with(ids, quick, |_| {})
}

/// Helper for Ratio formatting in future tables.
pub fn ratio_str(r: Ratio) -> String {
    format!("{:.3}", r.to_f64())
}

/// Serializes finished tables as a JSON array (id, title, claim, header,
/// rows) for archival next to EXPERIMENTS.md. Hand-rolled writer — the
/// cells are already strings, so no serde derive is needed.
pub fn tables_to_json(tables: &[Table]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    for (i, t) in tables.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"title\": \"{}\", \"claim\": \"{}\",\n   \"header\": [{}],\n   \"rows\": [\n",
            esc(t.id),
            esc(t.title),
            esc(t.claim),
            t.header
                .iter()
                .map(|h| format!("\"{}\"", esc(h)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for (r, row) in t.rows.iter().enumerate() {
            out.push_str("    [");
            out.push_str(
                &row.iter().map(|c| format!("\"{}\"", esc(c))).collect::<Vec<_>>().join(", "),
            );
            out.push(']');
            out.push_str(if r + 1 < t.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("   ]}");
        out.push_str(if i + 1 < tables.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_to_json_is_parseable() {
        let t = Table {
            id: "EX",
            title: "demo \"quoted\"",
            claim: "c",
            header: vec!["a", "b"],
            rows: vec![vec!["1".into(), "x\\y".into()], vec!["2".into(), "z".into()]],
        };
        let json = tables_to_json(&[t]);
        use sst_core::io::json::JsonValue;
        let v = sst_core::io::json::parse(&json).expect("valid JSON");
        let JsonValue::Array(tables) = v else { panic!("expected array") };
        let JsonValue::Object(table) = &tables[0] else { panic!("expected object") };
        assert_eq!(table["id"], JsonValue::Str("EX".into()));
        assert_eq!(table["title"], JsonValue::Str("demo \"quoted\"".into()));
        let JsonValue::Array(rows) = &table["rows"] else { panic!("expected rows array") };
        let JsonValue::Array(row0) = &rows[0] else { panic!("expected row array") };
        assert_eq!(row0[1], JsonValue::Str("x\\y".into()));
    }

    #[test]
    fn tables_to_json_empty() {
        let json = tables_to_json(&[]);
        let v = sst_core::io::json::parse(&json).unwrap();
        assert_eq!(v, sst_core::io::json::JsonValue::Array(vec![]));
    }
}
