//! The experiment harness is itself under test: the cheap experiments run
//! in quick mode and their *shapes* — the properties EXPERIMENTS.md claims —
//! are asserted, so a regression in any algorithm breaks the harness test
//! before it breaks a published table.

use sst_bench::{
    e10_identical, e11_bounds, e1_lpt, e4_hardness, e5_ra, e6_cupt, e7_groups, e9_splittable, Table,
};

fn cell_f64(t: &Table, row: usize, col: usize) -> f64 {
    t.rows[row][col].parse().expect("numeric cell")
}

#[test]
fn e1_ratios_below_lemma_bound() {
    let t = e1_lpt(true);
    assert!(!t.rows.is_empty());
    let bound_col = t.header.iter().position(|&h| h == "bound").unwrap();
    let worst_col = t.header.iter().position(|&h| h == "worst-ratio").unwrap();
    for (r, _) in t.rows.iter().enumerate() {
        let worst = cell_f64(&t, r, worst_col);
        let bound = cell_f64(&t, r, bound_col);
        assert!(worst <= bound + 1e-9, "row {r}: {worst} > {bound}");
    }
}

#[test]
fn e4_gap_is_monotone_in_k() {
    let t = e4_hardness(true);
    let gap_col = t.header.iter().position(|&h| h == "gap").unwrap();
    let mut last = 0.0;
    for (r, _) in t.rows.iter().enumerate() {
        let gap = cell_f64(&t, r, gap_col);
        assert!(gap >= last - 0.35, "row {r}: gap {gap} fell below {last}");
        last = gap;
    }
    assert!(last >= 2.0, "largest-k gap {last} too small");
}

#[test]
fn e5_and_e6_respect_their_bounds() {
    for (t, bound) in [(e5_ra(true), 2.0), (e6_cupt(true), 3.0)] {
        let ratio_col = t.header.iter().position(|&h| h == "ratio").unwrap();
        for (r, _) in t.rows.iter().enumerate() {
            let ratio = cell_f64(&t, r, ratio_col);
            assert!(ratio <= bound + 1e-9, "{}: row {r} ratio {ratio} > {bound}", t.id);
        }
    }
}

#[test]
fn e7_group_accounting() {
    let t = e7_groups(true);
    assert_eq!(t.rows.len(), 4); // four speed profiles
                                 // #groups column is a positive integer everywhere.
    let g_col = t.header.iter().position(|&h| h == "#groups").unwrap();
    for row in &t.rows {
        let g: usize = row[g_col].parse().unwrap();
        assert!(g >= 1);
    }
}

#[test]
fn e9_split_never_above_unsplit_and_within_bound() {
    let t = e9_splittable(true);
    let ratio_col = t.header.iter().position(|&h| h == "ratio").unwrap();
    let bound_col = t.header.iter().position(|&h| h == "bound").unwrap();
    let unsplit_col = t.header.iter().position(|&h| h == "unsplit").unwrap();
    let split_col = t.header.iter().position(|&h| h == "split").unwrap();
    for (r, _) in t.rows.iter().enumerate() {
        let ratio = cell_f64(&t, r, ratio_col);
        let bound = cell_f64(&t, r, bound_col);
        assert!(ratio <= bound + 1e-9, "row {r}: {ratio} > {bound}");
        let unsplit = cell_f64(&t, r, unsplit_col);
        let split = cell_f64(&t, r, split_col);
        assert!(split <= unsplit + 0.11, "row {r}: splitting must not hurt");
    }
}

#[test]
fn e10_guaranteed_algorithms_stay_under_four() {
    let t = e10_identical(true);
    for col in ["wrap", "batch-LPT"] {
        let c = t.header.iter().position(|&h| h == col).unwrap();
        for (r, _) in t.rows.iter().enumerate() {
            let v = cell_f64(&t, r, c);
            assert!(v <= 4.0 + 1e-9, "{col} row {r}: {v} > 4");
        }
    }
    // Annealing (seeded from batch-LPT) never reports worse than its start.
    let sa = t.header.iter().position(|&h| h == "annealed").unwrap();
    let bl = t.header.iter().position(|&h| h == "batch-LPT").unwrap();
    for (r, _) in t.rows.iter().enumerate() {
        assert!(cell_f64(&t, r, sa) <= cell_f64(&t, r, bl) + 1e-9, "row {r}");
    }
}

#[test]
fn e11_bound_chain_is_monotone() {
    let t = e11_bounds(true);
    let comb = t.header.iter().position(|&h| h == "comb").unwrap();
    let assign = t.header.iter().position(|&h| h == "assign-LP").unwrap();
    let config = t.header.iter().position(|&h| h == "config-LP").unwrap();
    let opt = t.header.iter().position(|&h| h == "Opt").unwrap();
    for (r, _) in t.rows.iter().enumerate() {
        let c = cell_f64(&t, r, comb);
        let a = cell_f64(&t, r, assign);
        let g = cell_f64(&t, r, config);
        let o = cell_f64(&t, r, opt);
        assert!(c <= a && a <= g + 1.0 && g <= o, "row {r}: {c} {a} {g} {o}");
    }
}

#[test]
fn table_rendering_aligns_and_includes_claim() {
    let t = e7_groups(true);
    let text = t.render();
    assert!(text.contains("== E7"));
    assert!(text.contains("claim:"));
    // Every row renders on its own line.
    assert!(text.lines().count() >= 2 + 1 + t.rows.len());
}
