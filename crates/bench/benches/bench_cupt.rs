//! E6 runtime: the class-uniform-processing-times 3-approximation
//! (Theorem 3.11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::cupt::solve_class_uniform_ptimes;
use sst_gen::SetupWeight;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cupt_theorem_3_11");
    g.sample_size(10);
    for (n, m, k) in [(40usize, 5usize, 6usize), (120, 8, 12)] {
        let inst = sst_gen::class_uniform_ptimes(n, m, k, (1, 30), SetupWeight::Moderate, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}x{k}")),
            &inst,
            |b, inst| b.iter(|| solve_class_uniform_ptimes(inst)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
