//! E4 runtime: the GF(2) gap family, the Theorem 3.5 reduction, and the
//! set-cover solvers it leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sst_setcover::{exact_cover, gf2_gap_instance, greedy_cover, reduce};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hardness_theorem_3_5");
    g.sample_size(10);
    for k in [3u32, 4, 5] {
        let sc = gf2_gap_instance(k);
        g.bench_with_input(BenchmarkId::new("greedy_cover", k), &sc, |b, sc| {
            b.iter(|| greedy_cover(sc))
        });
        g.bench_with_input(BenchmarkId::new("reduction", k), &sc, |b, sc| {
            b.iter(|| reduce(sc, 2, &mut StdRng::seed_from_u64(1)))
        });
    }
    let sc4 = gf2_gap_instance(4);
    g.bench_function("exact_cover_k4", |b| b.iter(|| exact_cover(&sc4)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
