//! Contended-workload benchmarks of the million-session store tier:
//! group-commit journal throughput and the sharded hot store, measured
//! and gated.
//!
//! Section 1 (gated): concurrent lanes appending journal records under
//! `--durability fsync` — the regime group commit exists for. The same
//! workload runs against a synchronous store (`journal_batch = 1`, one
//! write + one fsync per record) and a grouped store (`journal_batch =
//! 128`, the committer coalesces whatever is pending into one write +
//! one fsync per batch). Both sides are best-of-[`TIMING_REPEATS`]; the
//! CI gate requires grouped throughput ≥ 2× the synchronous baseline —
//! conservative, since each blocked appender lets the others enqueue,
//! so real batches form even on a single core.
//!
//! Section 2 (direction gate): a read-heavy session workload against a
//! global store (1 shard) vs a sharded store (8 shards). Reads are
//! lock-free in both (the arc-swap snapshot), so the shards only pay
//! off when *writers* on distinct shards stop queueing on one mutex —
//! a multicore effect. The gate is direction-only (sharded must not be
//! meaningfully slower: ≤ 1.10× the global time) because on a
//! single-core runner the two are an expected tie; the measured ratio
//! is printed for the ROADMAP table.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sst_core::delta::InstanceDelta;
use sst_core::instance::{Job, UniformInstance};
use sst_portfolio::{Durability, DurableStore, ProblemInstance, SessionEntry, SessionStore};

/// Identical timed runs per side; the minimum is kept so a single
/// preemption or fsync outlier cannot flake the gate.
const TIMING_REPEATS: usize = 5;
/// Concurrent appender lanes in section 1.
const APPEND_THREADS: usize = 8;
/// Records each lane appends per timed run.
const APPENDS_PER_THREAD: usize = 25;
/// Concurrent readers in section 2.
const READ_THREADS: usize = 4;
/// Store probes each reader performs per timed run.
const READS_PER_THREAD: usize = 4000;
/// Sessions resident during the read workload.
const SESSIONS: u64 = 128;

fn timed_min(mut work: impl FnMut()) -> f64 {
    let mut best_us = f64::INFINITY;
    for _ in 0..TIMING_REPEATS {
        let t0 = Instant::now();
        work();
        best_us = best_us.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best_us
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sst-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry(seed: u64) -> SessionEntry {
    let inst = ProblemInstance::Uniform(
        UniformInstance::identical(2, vec![1], vec![Job::new(0, 1 + seed % 7)]).unwrap(),
    );
    let greedy = inst.greedy();
    SessionEntry {
        instance: Arc::new(inst),
        incumbent: greedy.solution,
        cost: greedy.cost,
        proxy: None,
    }
}

/// One timed run: [`APPEND_THREADS`] lanes, each appending
/// [`APPENDS_PER_THREAD`] delta records to its own sid, all funneling
/// into one fsync journal with the given batch cap.
fn fsync_append_us(tag: &str, batch: usize) -> f64 {
    let dir = scratch(tag);
    let store = Arc::new(
        DurableStore::open(&dir, Durability::Fsync)
            .expect("open store")
            .with_group_commit(batch, 0),
    );
    let us = timed_min(|| {
        std::thread::scope(|s| {
            for lane in 0..APPEND_THREADS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let deltas = [InstanceDelta::AddJob { class: 0, times: vec![3 + lane as u64] }];
                    for _ in 0..APPENDS_PER_THREAD {
                        store.append_delta(lane as u64, &deltas).expect("append");
                    }
                });
            }
        });
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    us
}

fn group_commit_table() {
    let records = APPEND_THREADS * APPENDS_PER_THREAD;
    println!(
        "== store: journal append, {APPEND_THREADS} lanes x {APPENDS_PER_THREAD} records, \
         --durability fsync =="
    );
    println!("{:<24} {:>12} {:>14}", "mode", "total-us", "records/s");
    let single_us = fsync_append_us("single", 1);
    let grouped_us = fsync_append_us("grouped", 128);
    for (name, us) in
        [("single-append (batch 1)", single_us), ("group-commit (batch 128)", grouped_us)]
    {
        println!("{:<24} {:>12.0} {:>14.0}", name, us, records as f64 / (us / 1e6));
    }
    println!("group-commit speedup: {:.1}x", single_us / grouped_us);
    // CI gate: one fsync per *batch* must beat one fsync per *record* by
    // at least 2x under 8-way contention. The full measured ratio is
    // tracked in ROADMAP.md; the gate stays conservative so shared
    // runners with fast or slow fsync both hold it.
    assert!(
        grouped_us * 2.0 <= single_us,
        "group commit ({grouped_us:.0}us) must be >= 2x faster than \
         single-append fsync ({single_us:.0}us)"
    );
}

/// One timed run: [`READ_THREADS`] readers sweeping snapshot probes over
/// all sessions, one writer slot per sweep (every 8th op is an incumbent
/// update) so shard mutexes see traffic too.
fn store_read_us(shards: usize) -> f64 {
    let store = Arc::new(SessionStore::new(SESSIONS as usize * 2).with_shards(shards));
    for sid in 0..SESSIONS {
        store.create(sid, entry(sid), 0);
    }
    timed_min(|| {
        std::thread::scope(|s| {
            for t in 0..READ_THREADS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..READS_PER_THREAD {
                        let sid = ((i * READ_THREADS + t) as u64) % SESSIONS;
                        if i % 8 == 7 {
                            store.update_incumbent(sid, entry(sid + i as u64));
                        } else {
                            black_box(store.snapshot(sid));
                        }
                    }
                });
            }
        });
    })
}

fn sharded_store_table() {
    let probes = READ_THREADS * READS_PER_THREAD;
    println!(
        "== store: {READ_THREADS} readers x {READS_PER_THREAD} probes over {SESSIONS} sessions \
         (7:1 read:write) =="
    );
    println!("{:<24} {:>12} {:>14}", "layout", "total-us", "probes/s");
    let global_us = store_read_us(1);
    let sharded_us = store_read_us(8);
    for (name, us) in [("global (1 shard)", global_us), ("sharded (8 shards)", sharded_us)] {
        println!("{:<24} {:>12.0} {:>14.0}", name, us, probes as f64 / (us / 1e6));
    }
    println!("sharded speedup: {:.2}x", global_us / sharded_us);
    // Direction gate: sharding must never cost read throughput. On a
    // single core the two layouts are an expected tie (reads are
    // lock-free either way), so the bound only rejects a real
    // regression, with 10% slack for scheduler noise.
    assert!(
        sharded_us <= global_us * 1.10,
        "sharded store ({sharded_us:.0}us) must not be slower than the \
         global store ({global_us:.0}us)"
    );
}

fn bench(c: &mut Criterion) {
    group_commit_table();
    sharded_store_table();
    // Criterion tracking of the lock-free read primitive itself, for
    // run-over-run comparison.
    let store = SessionStore::new(SESSIONS as usize * 2).with_shards(8);
    for sid in 0..SESSIONS {
        store.create(sid, entry(sid), 0);
    }
    let mut g = c.benchmark_group("session_store");
    let mut at = 0u64;
    g.bench_function("snapshot_read_sharded_8", |b| {
        b.iter(|| {
            at = (at + 1) % SESSIONS;
            black_box(store.snapshot(black_box(at)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
