//! E5 runtime: LP-RelaxedRA + pseudoforest rounding (Theorem 3.10). Note
//! the LP is per-class, not per-job — solving it is fast even for large n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::ra::solve_ra_class_uniform;
use sst_gen::SetupWeight;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ra_theorem_3_10");
    g.sample_size(10);
    for (n, m, k) in [(40usize, 6usize, 7usize), (120, 10, 15)] {
        let inst = sst_gen::ra_class_uniform(n, m, k, 3, (1, 40), SetupWeight::Moderate, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}x{k}")),
            &inst,
            |b, inst| b.iter(|| solve_ra_class_uniform(inst)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
