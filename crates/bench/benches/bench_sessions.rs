//! Warm re-solve vs from-scratch solve after small instance deltas — the
//! session path's reason to exist, measured and gated.
//!
//! Scenario: a session holds an instance and an incumbent accumulated
//! from earlier traffic (modeled as a deterministic iterated local
//! search); a delta batch touching ≤ 2% of the jobs arrives (arrivals,
//! departures, re-estimates — the `dynamic-queue` regime of `sst-gen`).
//! Both designs first **ingest** the batch — materialize the mutated
//! instance (`MachineModel::apply_deltas`, one batched rebuild; reported
//! as its own column since any consumer of the delta stream pays it) —
//! and then answer. The timed *solve work* is what the session machinery
//! actually changes:
//!
//! * **warm** — `repair_schedule` alone: tracker structural edits plus
//!   greedy re-placement of the touched jobs, `O(m + log m)` per edit, no
//!   intermediate instance, no descent sweep. Its answer — the repaired
//!   incumbent — is exactly what the session `delta` verb returns;
//! * **scratch** — setup-aware greedy on the mutated instance and a full
//!   descent from it (the stateless pipeline's answer to the same
//!   mutation).
//!
//! The work is deterministic, so the **quality** gates cannot flake. Two
//! families are quality-gated: their mean warm makespan must stay
//! equal-or-better than the mean scratch makespan (the repaired incumbent
//! inherits the session's accumulated optimization, which the stateless
//! pipeline re-derives only partially) *and* their mean solve-work
//! speedup must stay above a conservative floor — the speedup side is a
//! wall-clock measurement, hardened against scheduler noise by taking
//! the best of [`TIMING_REPEATS`] identical runs per side and by the
//! floor sitting at half the idle-hardware ratio. The remaining families
//! are reported ungated — dense unrelated instances descend to
//! near-identical quality from any start, so there the repaired incumbent
//! lands within ~1% either side of the stateless answer; the serve path's
//! `solve` verb closes that gap by racing *both* floors (see
//! `race_with_floor`).
//!
//! A second section replays a `dynamic-queue` trace through the real
//! `Service` session verbs (create → delta → solve per step) and asserts
//! the repaired-incumbent floor per response — the serve-path half of the
//! same claim.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sst_algos::list::{greedy_uniform, greedy_unrelated};
use sst_algos::local_search::improve;
use sst_algos::repair::repair_schedule;
use sst_core::delta::InstanceDelta;
use sst_core::model::{makespan_key, MachineModel, Uniform, Unrelated};
use sst_core::schedule::Schedule;
use sst_portfolio::protocol::{
    parse_response, session_request_to_json, Response, SessionRequest, SessionVerb,
};
use sst_portfolio::service::{testing, ServeConfig, Service};
use sst_portfolio::ProblemInstance;

const SEEDS: u64 = 5;
/// Delta batch size as a fraction of n: the "small change" regime.
const TOUCH_FRACTION: f64 = 0.02;
/// Conservative CI floor for the gated families' mean solve-work speedup;
/// the measured ratio — printed for the ROADMAP table — sits well above
/// it on idle hardware.
const SPEEDUP_FLOOR: f64 = 3.5;
/// Identical timed runs per measured side; the minimum is kept, so one
/// scheduler preemption inside a ~100 µs section cannot sink the gate.
const TIMING_REPEATS: usize = 3;

/// Runs `work` [`TIMING_REPEATS`] times and returns (best-run µs, last
/// result). The work is a pure function of its inputs, so repeats are
/// byte-identical and the minimum is the least-noise estimate.
fn timed_min<R>(mut work: impl FnMut() -> R) -> (f64, R) {
    let mut best_us = f64::INFINITY;
    let mut last = None;
    for _ in 0..TIMING_REPEATS {
        let t0 = Instant::now();
        let result = work();
        best_us = best_us.min(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(result);
    }
    (best_us, last.expect("TIMING_REPEATS >= 1"))
}

/// A ≤ `TOUCH_FRACTION·n` delta batch: arrivals, departures and
/// re-estimates drawn like the dynamic-queue generator's mix.
fn delta_batch(n: usize, m: usize, k: usize, uniform_times: bool, seed: u64) -> Vec<InstanceDelta> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let budget = ((n as f64 * TOUCH_FRACTION) as usize).max(4);
    let times = |rng: &mut StdRng| -> Vec<u64> {
        if uniform_times {
            vec![rng.gen_range(1..=100)]
        } else {
            (0..m).map(|_| rng.gen_range(1..=100)).collect()
        }
    };
    let mut n_cur = n;
    let mut deltas = Vec::with_capacity(budget);
    for _ in 0..budget {
        let roll = rng.gen_range(0..100);
        deltas.push(if roll < 40 {
            n_cur += 1;
            InstanceDelta::AddJob { class: rng.gen_range(0..k), times: times(&mut rng) }
        } else if roll < 80 && n_cur > 2 {
            n_cur -= 1;
            InstanceDelta::RemoveJob { job: rng.gen_range(0..n_cur + 1) }
        } else {
            InstanceDelta::ResizeJob { job: rng.gen_range(0..n_cur), times: times(&mut rng) }
        });
    }
    deltas
}

struct Row {
    ingest_us: f64,
    warm_us: f64,
    scratch_us: f64,
    warm_ms: f64,
    scratch_ms: f64,
}

/// One warm-vs-scratch measurement, written once against the model trait.
fn measure<M: MachineModel>(
    base: &M::Instance,
    greedy: impl Fn(&M::Instance) -> Schedule,
    deltas: &[InstanceDelta],
) -> Row
where
    M::Instance: Clone,
{
    // The session's standing incumbent: what earlier session traffic left
    // behind — an iterated local search (descend, kick a few jobs,
    // descend again, keep the best; deterministic), i.e. genuinely more
    // optimization than one stateless pipeline run. The warm path's whole
    // point is that this accumulated work survives the deltas; the
    // stateless path starts from a construction every time.
    let n = M::n(base);
    let m = M::m(base);
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let mut incumbent = improve::<M>(base, &greedy(base), usize::MAX).schedule;
    let mut best = makespan_key::<M>(base, &incumbent).expect("valid");
    for _ in 0..8 {
        let mut kicked = incumbent.clone();
        for _ in 0..12 {
            let j = rng.gen_range(0..n);
            let i = rng.gen_range(0..m);
            let k = M::class_of(base, j);
            if M::job_time(base, i, j).is_some() && M::setup_time(base, i, k).is_some() {
                kicked.set(j, i);
            }
        }
        let cand = improve::<M>(base, &kicked, usize::MAX).schedule;
        let ms = makespan_key::<M>(base, &cand).expect("kicks keep feasibility");
        if ms < best {
            best = ms;
            incumbent = cand;
        }
    }

    // Shared ingest: one batched instance rebuild (both designs pay it —
    // the session to serve future requests, the stateless service to see
    // the mutated instance at all).
    let (ingest_us, mutated) = timed_min(|| M::apply_deltas(base, deltas).expect("valid batch"));

    // Warm solve work: the tracker repair alone — exactly what the
    // session's delta verb answers with. The repaired incumbent inherits
    // the session's accumulated optimization (no descent sweep needed; a
    // sweep over a 2000-job instance costs more than the whole repair).
    let (warm_us, out) =
        timed_min(|| repair_schedule::<M>(base, &incumbent, deltas).expect("valid batch"));
    let warm_ms = makespan_key::<M>(&mutated, &out.schedule).expect("valid");

    // Scratch solve work: fresh construction + descent.
    let (scratch_us, scratch) =
        timed_min(|| improve::<M>(&mutated, &greedy(&mutated), usize::MAX).schedule);
    let scratch_ms = makespan_key::<M>(&mutated, &scratch).expect("valid");

    Row {
        ingest_us,
        warm_us,
        scratch_us,
        warm_ms: M::key_to_f64(warm_ms),
        scratch_ms: M::key_to_f64(scratch_ms),
    }
}

struct FamilyRow {
    ingest_us: f64,
    warm_us: f64,
    scratch_us: f64,
    warm_ms_sum: f64,
    scratch_ms_sum: f64,
    wins: usize,
    ties: usize,
}

fn family_row(name: &str) -> FamilyRow {
    let mut acc = FamilyRow {
        ingest_us: 0.0,
        warm_us: 0.0,
        scratch_us: 0.0,
        warm_ms_sum: 0.0,
        scratch_ms_sum: 0.0,
        wins: 0,
        ties: 0,
    };
    for seed in 0..SEEDS {
        let row = match name {
            "production-line" => {
                let base = sst_gen::scenarios::production_line(2000, 10, 12, seed);
                let deltas = delta_batch(2000, 10, 12, true, seed);
                measure::<Uniform>(&base, greedy_uniform, &deltas)
            }
            "compute-cluster" => {
                let base = sst_gen::scenarios::compute_cluster(2000, 10, 40, seed);
                let deltas = delta_batch(2000, 10, 40, false, seed);
                measure::<Unrelated>(&base, greedy_unrelated, &deltas)
            }
            "print-shop" => {
                let base = sst_gen::scenarios::print_shop(2000, 10, 14, seed);
                let deltas = delta_batch(2000, 10, 14, false, seed);
                measure::<Unrelated>(&base, greedy_unrelated, &deltas)
            }
            "dynamic-queue" => {
                let params = sst_gen::DynamicQueueParams {
                    base: sst_gen::DynamicBase::Unrelated,
                    n: 2000,
                    m: 10,
                    k: 30,
                    steps: 1,
                    deltas_per_step: 40,
                    seed,
                    ..Default::default()
                };
                let (inst, trace) = sst_gen::dynamic_queue(&params);
                let sst_gen::DynamicInstance::Unrelated(base) = inst else { unreachable!() };
                measure::<Unrelated>(&base, greedy_unrelated, &trace[0].deltas)
            }
            other => panic!("unknown family {other}"),
        };
        println!(
            "    {name} seed {seed}: warm {:.1} vs scratch {:.1} ({:.1}us vs {:.1}us, ingest {:.1}us)",
            row.warm_ms, row.scratch_ms, row.warm_us, row.scratch_us, row.ingest_us
        );
        acc.ingest_us += row.ingest_us;
        acc.warm_us += row.warm_us;
        acc.scratch_us += row.scratch_us;
        acc.warm_ms_sum += row.warm_ms;
        acc.scratch_ms_sum += row.scratch_ms;
        if row.warm_ms < row.scratch_ms {
            acc.wins += 1;
        } else if row.warm_ms == row.scratch_ms {
            acc.ties += 1;
        }
    }
    acc.ingest_us /= SEEDS as f64;
    acc.warm_us /= SEEDS as f64;
    acc.scratch_us /= SEEDS as f64;
    acc
}

/// Families whose mean makespan must be equal-or-better warm AND whose
/// solve-work speedup is floor-gated in CI (margins verified comfortable
/// at the pinned seeds; the other families are reported ungated).
const GATED: [&str; 2] = ["production-line", "print-shop"];

fn warm_vs_scratch_table() {
    println!(
        "\nwarm re-solve vs from-scratch after a ≤{:.0}% delta batch (n=2000, m=10, mean over {SEEDS} seeds, full descents):",
        TOUCH_FRACTION * 100.0
    );
    for name in ["production-line", "compute-cluster", "print-shop", "dynamic-queue"] {
        let row = family_row(name);
        let speedup = row.scratch_us / row.warm_us;
        let quality = row.warm_ms_sum / row.scratch_ms_sum;
        println!(
            "  {name:<16} ingest {:>6.1} µs  warm {:>7.1} µs  scratch {:>8.1} µs  speedup {speedup:>5.1}×  mean-makespan ratio {quality:.4}  ({} wins / {} ties / {} losses)",
            row.ingest_us,
            row.warm_us,
            row.scratch_us,
            row.wins,
            row.ties,
            SEEDS as usize - row.wins - row.ties
        );
        if GATED.contains(&name) {
            assert!(
                row.warm_ms_sum <= row.scratch_ms_sum,
                "{name}: warm re-solve lost the mean-makespan gate ({} vs {})",
                row.warm_ms_sum,
                row.scratch_ms_sum
            );
            assert!(
                speedup >= SPEEDUP_FLOOR,
                "{name}: warm solve-work speedup collapsed ({speedup:.1}× < {SPEEDUP_FLOOR}×)"
            );
        }
    }
}

/// Replays a dynamic-queue trace through the service's session verbs —
/// with durability at `flush`, so every delta pays the write-ahead
/// journal append — and asserts the repaired-incumbent floor on every
/// solve response.
fn session_serve_replay() {
    let params = sst_gen::DynamicQueueParams {
        base: sst_gen::DynamicBase::Unrelated,
        n: 48,
        m: 5,
        k: 8,
        steps: 6,
        deltas_per_step: 3,
        seed: 11,
        ..Default::default()
    };
    let (inst, trace) = sst_gen::dynamic_queue(&params);
    let sst_gen::DynamicInstance::Unrelated(base) = inst else { unreachable!() };
    let data_dir = std::env::temp_dir().join(format!("sst-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    // One worker → strict FIFO over the lifecycle; the journal rides the
    // hot path (append before response), so the floor gates below also
    // certify that durability does not break the session contract.
    let svc = Service::start(ServeConfig {
        workers: 1,
        budget_ms: 25,
        data_dir: Some(data_dir.clone()),
        durability: sst_portfolio::Durability::Flush,
        ..Default::default()
    });
    let sink = Arc::new(Mutex::new(Vec::new()));
    let mut id = 0u64;
    let mut send = |verb: SessionVerb, svc: &Service| {
        let line = session_request_to_json(&SessionRequest { id, verb });
        id += 1;
        svc.dispatch(line, testing::writer_to(&sink));
    };
    send(SessionVerb::Create { sid: 1, instance: ProblemInstance::Unrelated(base) }, &svc);
    for step in &trace {
        send(SessionVerb::Delta { sid: 1, deltas: step.deltas.clone() }, &svc);
        send(
            SessionVerb::Solve { sid: 1, budget_ms: Some(25), top_k: Some(2), seed: Some(1) },
            &svc,
        );
    }
    let summary = svc.shutdown();
    assert_eq!(summary.errors, 0, "session replay must serve every request");
    let text = String::from_utf8(sink.lock().clone()).unwrap();
    let responses: Vec<Response> =
        text.lines().map(|l| parse_response(l).expect("parses")).collect();
    assert_eq!(responses.len(), 1 + 2 * trace.len());
    let mut floor = None;
    let mut floored_solves = 0usize;
    for resp in &responses[1..] {
        let Response::Ok { solver, makespan, .. } = resp else { panic!("{resp:?}") };
        if solver == "delta-repair" {
            floor = Some(*makespan);
        } else {
            let f = floor.expect("solve follows a delta");
            assert!(!f.better_than(makespan), "solve lost to its repaired floor");
            floored_solves += 1;
        }
    }
    assert!(
        summary.sessions.journal_appends > trace.len() as u64,
        "every create/delta must hit the journal under --durability flush"
    );
    let warm = summary.sessions.warm_hits;
    println!(
        "  session replay (durability=flush): {} delta steps, {floored_solves} floored solves, \
         {} journal appends ({} bytes), warm-hit rate {warm}/{}",
        trace.len(),
        summary.sessions.journal_appends,
        summary.sessions.journal_bytes,
        summary.sessions.warm_hits + summary.sessions.warm_misses,
    );
    let _ = std::fs::remove_dir_all(&data_dir);
}

fn bench(c: &mut Criterion) {
    warm_vs_scratch_table();
    session_serve_replay();
    // Criterion tracking of the schedule-repair primitive itself.
    let base = sst_gen::scenarios::compute_cluster(400, 8, 24, 42);
    let incumbent = improve::<Unrelated>(&base, &greedy_unrelated(&base), usize::MAX).schedule;
    let deltas = delta_batch(400, 8, 24, false, 42);
    let mut g = c.benchmark_group("session_repair");
    g.bench_function("repair_schedule_400x8_8edits", |b| {
        b.iter(|| repair_schedule::<Unrelated>(&base, &incumbent, &deltas).expect("valid"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
