//! E2 runtime: the PTAS decision procedure and full pipeline vs ε.
//! The paper claims (nmK)^{poly(1/ε)}; the measured blow-up in 1/ε is the
//! reproducible shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::ptas::{ptas_uniform, PtasConfig};
use sst_gen::{SetupWeight, SpeedProfile, UniformParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptas_section_2");
    g.sample_size(10);
    let inst = sst_gen::uniform(&UniformParams {
        n: 10,
        m: 3,
        k: 3,
        size_range: (1, 25),
        speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
        setups: SetupWeight::Moderate,
        seed: 301,
    });
    for q in [2u64, 4, 8] {
        g.bench_with_input(BenchmarkId::new("eps", format!("1_{q}")), &q, |b, &q| {
            b.iter(|| ptas_uniform(&inst, &PtasConfig { q, node_limit: 30_000_000 }))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
