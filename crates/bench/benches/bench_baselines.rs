//! E8 runtime: the greedy baselines and the exact branch-and-bound
//! (sequential vs parallel incumbent sharing).

use criterion::{criterion_group, criterion_main, Criterion};
use sst_algos::exact::{exact_unrelated, exact_unrelated_parallel};
use sst_algos::list::{class_grouped_greedy_unrelated, greedy_unrelated};
use sst_gen::UnrelatedParams;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    let big = sst_gen::unrelated(&UnrelatedParams {
        n: 500,
        m: 16,
        k: 40,
        seed: 3,
        ..Default::default()
    });
    g.bench_function("greedy_unrelated_500x16", |b| b.iter(|| greedy_unrelated(&big)));
    g.bench_function("class_grouped_500x16", |b| b.iter(|| class_grouped_greedy_unrelated(&big)));
    let small =
        sst_gen::unrelated(&UnrelatedParams { n: 11, m: 3, k: 4, seed: 9, ..Default::default() });
    g.bench_function("exact_bnb_seq_11x3", |b| b.iter(|| exact_unrelated(&small, 1 << 26)));
    g.bench_function("exact_bnb_par4_11x3", |b| {
        b.iter(|| exact_unrelated_parallel(&small, 1 << 26, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
