//! E9 runtime: the splittable 2-approximation (LP-RelaxedRA + Lemma 3.9
//! move, no job pour). Compared against the non-splittable Theorem 3.10
//! pipeline on identical inputs — the delta is exactly the greedy pour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::ra::solve_ra_class_uniform;
use sst_algos::splittable::solve_splittable_ra_class_uniform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("splittable_correa_5");
    g.sample_size(10);
    for (k, m, jpc) in [(4usize, 6usize, 12usize), (8, 10, 20)] {
        let inst = sst_gen::splittable_stress(k, m, jpc, 5);
        g.bench_with_input(
            BenchmarkId::new("split", format!("{k}x{m}x{jpc}")),
            &inst,
            |b, inst| b.iter(|| solve_splittable_ra_class_uniform(inst)),
        );
        g.bench_with_input(
            BenchmarkId::new("unsplit", format!("{k}x{m}x{jpc}")),
            &inst,
            |b, inst| b.iter(|| solve_ra_class_uniform(inst)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
