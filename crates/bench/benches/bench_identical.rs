//! E10 runtime: identical-machines algorithms. The wrap rule is a single
//! O(n log n) pass; batch-LPT adds the placeholder transform; annealing
//! scales linearly in its iteration budget (ablation over iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::annealing::{anneal_uniform, AnnealConfig};
use sst_algos::identical::{batch_lpt_identical, wrap_identical};
use sst_gen::{SetupWeight, SpeedProfile, UniformParams};

fn instance(n: usize, seed: u64) -> sst_core::UniformInstance {
    sst_gen::uniform(&UniformParams {
        n,
        m: 8,
        k: 16,
        setups: SetupWeight::Moderate,
        speeds: SpeedProfile::Identical,
        seed,
        ..Default::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("identical_machines_24");
    g.sample_size(20);
    for n in [100usize, 1000, 5000] {
        let inst = instance(n, 5);
        g.bench_with_input(BenchmarkId::new("wrap", n), &inst, |b, inst| {
            b.iter(|| wrap_identical(inst))
        });
        g.bench_with_input(BenchmarkId::new("batch_lpt", n), &inst, |b, inst| {
            b.iter(|| batch_lpt_identical(inst))
        });
    }
    g.finish();

    // Annealing iteration ablation at fixed size: time should scale
    // linearly and quality is measured by E10 (quality is criterion-blind).
    let mut g = c.benchmark_group("annealing_iterations");
    g.sample_size(10);
    let inst = instance(200, 9);
    let start = batch_lpt_identical(&inst);
    for iters in [1_000usize, 10_000, 40_000] {
        g.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                anneal_uniform(
                    &inst,
                    &start,
                    &AnnealConfig { iterations: iters, seed: 3, ..AnnealConfig::default() },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
