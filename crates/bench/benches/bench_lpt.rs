//! E1 runtime: LPT with setup batching (Lemma 2.1) across instance sizes.
//! The paper claims O(n log n); criterion verifies the near-linear scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::lpt::lpt_with_setups;
use sst_gen::{SetupWeight, SpeedProfile, UniformParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpt_lemma_2_1");
    g.sample_size(20);
    for n in [100usize, 1000, 5000] {
        let inst = sst_gen::uniform(&UniformParams {
            n,
            m: n / 20,
            k: n / 10,
            size_range: (1, 1000),
            speeds: SpeedProfile::UniformRandom { lo: 1, hi: 16 },
            setups: SetupWeight::Moderate,
            seed: 42,
        });
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| lpt_with_setups(inst))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
