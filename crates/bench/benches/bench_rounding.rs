//! E3 runtime: LP relaxation solve and the full randomized-rounding
//! pipeline (Theorem 3.3) across instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::lp_relax::solve_ilp_um_relaxation;
use sst_algos::rounding::{solve_unrelated_randomized, RoundingConfig};
use sst_core::bounds::unrelated_upper_bound;
use sst_gen::UnrelatedParams;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rounding_theorem_3_3");
    g.sample_size(10);
    for (n, m) in [(20usize, 4usize), (40, 6)] {
        let inst =
            sst_gen::unrelated(&UnrelatedParams { n, m, k: n / 5, seed: 7, ..Default::default() });
        let ub = unrelated_upper_bound(&inst);
        g.bench_with_input(BenchmarkId::new("lp_solve", format!("{n}x{m}")), &inst, |b, inst| {
            b.iter(|| solve_ilp_um_relaxation(inst, ub))
        });
        g.bench_with_input(
            BenchmarkId::new("full_pipeline", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| solve_unrelated_randomized(inst, &RoundingConfig { c: 2.0, seed: 1 }))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
