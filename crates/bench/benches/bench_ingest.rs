//! Decode cost of the two request framings — NDJSON vs packed binary
//! frames — on the large-instance session families, measured and gated.
//!
//! Section 1 (gated): for n=2000 instances of all three kinds, one
//! request is encoded once per framing and decoded repeatedly through the
//! exact serve-path entry points (`parse_incoming` for lines,
//! `decode_frame` + `decode_incoming` for frames — header validation,
//! checksum and instance validation included on the binary side). The
//! JSON path tokenizes and validates per cell; the packed path bulk-reads
//! each matrix via `chunks_exact` into one preallocated buffer and
//! validates once per frame — the ratio is the point of the wire format
//! and is printed for the ROADMAP table. The CI gate is deliberately
//! conservative (packed must merely not be *slower*); both sides are
//! best-of-[`TIMING_REPEATS`] so a single preemption cannot flake it.
//!
//! Section 2 (reported, ungated): a serve-mode mixed workload — one
//! in-memory connection carrying interleaved NDJSON and binary-frame
//! requests plus a mid-stream `{"upgrade": "binary"}` handshake, driven
//! through the real [`drive_connection`] sniffing loop against a live
//! [`Service`]. Asserts every request is answered in its own framing;
//! prints end-to-end throughput.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sst_core::wire::{decode_frame, FrameHeader, HEADER_LEN, MAGIC};
use sst_portfolio::protocol::{parse_incoming, request_to_json, Request};
use sst_portfolio::service::{drive_connection, testing, ServeConfig, Service};
use sst_portfolio::wire::{decode_incoming, encode_request};
use sst_portfolio::{ProblemInstance, SplittableInstance};

/// Session-scale instance size: the regime the wire format exists for.
const N: usize = 2000;
const M: usize = 8;
const K: usize = 24;
/// Decodes per timed run — enough to dwarf timer granularity.
const DECODES_PER_RUN: usize = 20;
/// Identical timed runs per side; the minimum is kept.
const TIMING_REPEATS: usize = 5;

fn timed_min(mut work: impl FnMut()) -> f64 {
    let mut best_us = f64::INFINITY;
    for _ in 0..TIMING_REPEATS {
        let t0 = Instant::now();
        work();
        best_us = best_us.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best_us
}

fn families() -> Vec<(&'static str, ProblemInstance)> {
    vec![
        (
            "uniform-2000",
            ProblemInstance::Uniform(sst_gen::uniform(&sst_gen::UniformParams {
                n: N,
                m: M,
                k: K,
                seed: 7,
                ..Default::default()
            })),
        ),
        (
            "unrelated-2000x8",
            ProblemInstance::Unrelated(sst_gen::unrelated(&sst_gen::UnrelatedParams {
                n: N,
                m: M,
                k: K,
                seed: 7,
                ..Default::default()
            })),
        ),
        (
            "splittable-2000x8",
            ProblemInstance::Splittable(SplittableInstance(sst_gen::scenarios::cdn_transcode(
                N, M, K, 7,
            ))),
        ),
    ]
}

fn decode_table() {
    println!("== ingest: request decode, JSON line vs packed frame (n={N}, m={M}, K={K}) ==");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>9}",
        "family", "json-bytes", "packed-bytes", "json/packed", "speedup"
    );
    for (name, instance) in families() {
        let req = Request { id: 1, instance, budget_ms: Some(50), top_k: Some(3), seed: Some(1) };
        let line = request_to_json(&req);
        let frame = encode_request(&req);

        let json_us = timed_min(|| {
            for _ in 0..DECODES_PER_RUN {
                black_box(parse_incoming(black_box(&line)).expect("json decodes"));
            }
        });
        let packed_us = timed_min(|| {
            for _ in 0..DECODES_PER_RUN {
                let (ft, payload) = decode_frame(black_box(&frame)).expect("frame decodes");
                black_box(decode_incoming(ft, payload).expect("packed decodes"));
            }
        });
        let speedup = json_us / packed_us;
        println!(
            "{:<20} {:>12} {:>12} {:>11.1}x {:>8.1}x",
            name,
            line.len(),
            frame.len(),
            line.len() as f64 / frame.len() as f64,
            speedup,
        );
        // CI gate: the packed decode must never lose to JSON. The measured
        // ratio (printed above, typically well past the 5x target) is
        // tracked in ROADMAP.md rather than gated — wall-clock ratios on
        // shared runners are not deterministic, the ordering is.
        assert!(
            packed_us <= json_us,
            "{name}: packed decode ({packed_us:.0}us) slower than JSON ({json_us:.0}us)"
        );
    }
}

/// Counts responses in a captured output buffer by framing: frames start
/// with the magic byte, NDJSON lines with anything else and end at `\n`.
fn count_responses(buf: &[u8]) -> (usize, usize) {
    let (mut frames, mut lines) = (0, 0);
    let mut at = 0;
    while at < buf.len() {
        if buf[at] == MAGIC[0] {
            let header = FrameHeader::parse(&buf[at..at + HEADER_LEN]).expect("response header");
            at += HEADER_LEN + header.len as usize;
            frames += 1;
        } else {
            let end = buf[at..].iter().position(|&b| b == b'\n').expect("newline-terminated");
            at += end + 1;
            lines += 1;
        }
    }
    (frames, lines)
}

fn serve_mixed_workload() {
    const REQUESTS: usize = 40; // per framing
    let uniform = sst_gen::uniform(&sst_gen::UniformParams {
        n: 200,
        m: 6,
        k: 8,
        seed: 3,
        ..Default::default()
    });

    // One connection's inbound bytes: JSON and frames interleaved, with
    // the upgrade handshake in the middle.
    let mut stream = Vec::new();
    let mut id = 0u64;
    let req = |id: u64| Request {
        id,
        instance: ProblemInstance::Uniform(uniform.clone()),
        budget_ms: Some(5),
        top_k: Some(1),
        seed: Some(id),
    };
    for i in 0..REQUESTS {
        stream.extend_from_slice(request_to_json(&req(id)).as_bytes());
        stream.push(b'\n');
        id += 1;
        if i == REQUESTS / 2 {
            stream.extend_from_slice(b"{\"upgrade\": \"binary\"}\n");
        }
        stream.extend_from_slice(&encode_request(&req(id)));
        id += 1;
    }

    let svc =
        Service::start(ServeConfig { workers: 4, top_k: 1, budget_ms: 5, ..Default::default() });
    let (buffer, out) = testing::buffer_writer();
    let t0 = Instant::now();
    let mut reader = std::io::BufReader::new(&stream[..]);
    drive_connection(&svc, &mut reader, &out).expect("in-memory connection");
    let summary = svc.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(summary.errors, 0, "mixed workload must serve every request");
    let buf = buffer.lock().clone();
    let (frames, lines) = count_responses(&buf);
    assert_eq!(frames, REQUESTS, "every binary request answered as a frame");
    // JSON responses + the upgrade ack line.
    assert_eq!(lines, REQUESTS + 1, "every JSON request answered as a line, plus the ack");
    println!(
        "== ingest: serve-mode mixed workload == {} requests ({REQUESTS} json + {REQUESTS} \
         binary + upgrade) in {:.1} ms ({:.0} req/s), responses in caller framing",
        2 * REQUESTS,
        elapsed * 1e3,
        (2 * REQUESTS) as f64 / elapsed,
    );
}

fn bench(c: &mut Criterion) {
    decode_table();
    serve_mixed_workload();
    // Criterion tracking of the two decode primitives on the biggest
    // family, for run-over-run comparison.
    let (_, instance) = families().pop().expect("families non-empty");
    let req = Request { id: 1, instance, budget_ms: Some(50), top_k: Some(3), seed: Some(1) };
    let line = request_to_json(&req);
    let frame = encode_request(&req);
    let mut g = c.benchmark_group("ingest_decode");
    g.bench_function("json_splittable_2000x8", |b| {
        b.iter(|| parse_incoming(black_box(&line)).expect("json decodes"))
    });
    g.bench_function("packed_splittable_2000x8", |b| {
        b.iter(|| {
            let (ft, payload) = decode_frame(black_box(&frame)).expect("frame decodes");
            decode_incoming(ft, payload).expect("packed decodes")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
