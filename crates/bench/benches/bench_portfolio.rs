//! Portfolio racing vs. single fixed solvers — quality and latency smoke.
//!
//! For each `crates/gen` scenario family this harness runs every selected
//! solver *alone to completion* (no deadline, so each run is a
//! deterministic function of the seed), plus the top-3 wall-clock race,
//! averaged over seeds, and prints a quality table (mean makespan; lower
//! is better). It enforces two regression floors that fail the CI smoke
//! job fast — both deterministic, so the gate cannot flake on a loaded
//! runner:
//!
//! 1. the race never loses to the setup-aware greedy baseline on any
//!    family (structural: the racer publishes greedy before any member
//!    starts and only replaces it with strict improvements), and
//! 2. on at least one family the *per-instance best member* strictly
//!    beats the best single fixed member's average — the winner-diversity
//!    property the racing executor exists to exploit (the race takes the
//!    per-instance minimum), computed from the deterministic completed
//!    single runs.
//!
//! The wall-clock race column is printed for the ROADMAP table (and its
//! observed wins/ties against the best single member), but is not gated —
//! under CPU contention a deadline race can tie a solo run without any
//! code regression.
//!
//! A small criterion group also tracks race latency so scheduling-path
//! slowdowns show up next to the tracker benches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use sst_core::cancel::CancelToken;
use sst_portfolio::protocol::{request_to_json, Request};
use sst_portfolio::race::Incumbent;
use sst_portfolio::service::{ServeConfig, Service};
use sst_portfolio::{
    extract_features, race, select, PoolMode, ProblemInstance, RaceConfig, SolveContext,
};

const SEEDS: u64 = 10;
const BUDGET: Duration = Duration::from_millis(60);

fn family(name: &str, seed: u64) -> ProblemInstance {
    match name {
        "production-line" => {
            ProblemInstance::Uniform(sst_gen::scenarios::production_line(40, 5, 4, seed))
        }
        "compute-cluster" => {
            ProblemInstance::Unrelated(sst_gen::scenarios::compute_cluster(40, 5, 8, seed))
        }
        "print-shop" => ProblemInstance::Unrelated(sst_gen::scenarios::print_shop(36, 4, 5, seed)),
        "unrelated-correlated" => {
            ProblemInstance::Unrelated(sst_gen::unrelated(&sst_gen::UnrelatedParams {
                n: 48,
                m: 5,
                k: 6,
                seed,
                ..Default::default()
            }))
        }
        "cdn-transcode" => ProblemInstance::Splittable(sst_portfolio::SplittableInstance(
            sst_gen::scenarios::cdn_transcode(48, 5, 6, seed),
        )),
        other => panic!("unknown family {other}"),
    }
}

const FAMILIES: [&str; 5] =
    ["production-line", "compute-cluster", "print-shop", "unrelated-correlated", "cdn-transcode"];

/// Runs one solver alone to natural completion (fresh incumbent, no
/// deadline — bounded by the solver's own deterministic caps: annealing
/// iterations, descent local optimum, full LP bisection). The result is a
/// pure function of (instance, seed).
fn run_single(inst: &ProblemInstance, name: &str, seed: u64) -> Option<f64> {
    let feat = extract_features(inst);
    let solver = select(&feat).into_iter().find(|s| s.name() == name)?;
    let incumbent = Incumbent::new();
    let cancel = CancelToken::new();
    let ctx = SolveContext { cancel: &cancel, seed, incumbent: &incumbent };
    solver.solve(inst, &ctx).map(|out| out.cost.to_f64())
}

/// Prints the quality table and returns whether the per-instance best
/// member (the quantity the race approximates) strictly beats the best
/// single fixed member on at least one family. Panics (hard floor) if the
/// wall-clock race ever loses to greedy.
fn quality_table() -> bool {
    let mut any_diversity_win = false;
    println!(
        "\nportfolio quality (mean makespan over {SEEDS} seeds; singles to completion, race at {BUDGET:?}):"
    );
    for fam in FAMILIES {
        // The single solvers compared: whatever the selector ranks for this
        // family, each run alone, vs. their per-instance best and the race.
        let member_names: Vec<&'static str> = {
            let feat = extract_features(&family(fam, 0));
            select(&feat).iter().map(|s| s.name()).collect()
        };
        let mut race_sum = 0.0;
        let mut greedy_sum = 0.0;
        let mut oracle_sum = 0.0;
        let mut member_sums: Vec<(String, f64, u64)> =
            member_names.iter().map(|n| (n.to_string(), 0.0, 0u64)).collect();
        for seed in 0..SEEDS {
            let inst = family(fam, seed);
            let res = race(&inst, &RaceConfig { top_k: 3, budget: BUDGET, seed });
            race_sum += res.cost.to_f64();
            greedy_sum += inst.greedy().cost.to_f64();
            let mut per_instance_best = f64::INFINITY;
            for (name, sum, cnt) in member_sums.iter_mut() {
                if let Some(ms) = run_single(&inst, name, seed) {
                    *sum += ms;
                    *cnt += 1;
                    per_instance_best = per_instance_best.min(ms);
                }
            }
            oracle_sum += per_instance_best;
        }
        let race_avg = race_sum / SEEDS as f64;
        let greedy_avg = greedy_sum / SEEDS as f64;
        let oracle_avg = oracle_sum / SEEDS as f64;
        let mut best_single = f64::INFINITY;
        let mut best_name = "-";
        print!("  {fam:<22} race {race_avg:>9.1}  best-member {oracle_avg:>9.1}");
        for (name, sum, cnt) in &member_sums {
            if *cnt == SEEDS {
                let avg = sum / SEEDS as f64;
                print!("  {name} {avg:.1}");
                if avg < best_single {
                    best_single = avg;
                    best_name = name;
                }
            }
        }
        println!();
        println!(
            "  {:<22} best single: {best_name} {best_single:.1} → diversity {}, race {}",
            "",
            if oracle_avg < best_single - 1e-9 { "WINS" } else { "ties" },
            if race_avg < best_single - 1e-9 {
                "WINS"
            } else if race_avg <= best_single + 1e-9 {
                "ties"
            } else {
                "behind"
            }
        );
        assert!(
            race_avg <= greedy_avg + 1e-9,
            "{fam}: race ({race_avg}) must never lose to greedy ({greedy_avg})"
        );
        if oracle_avg < best_single - 1e-9 {
            any_diversity_win = true;
        }
    }
    any_diversity_win
}

/// The serve-mode mixed workload: n=24 instances cycling through all
/// three machine models (uniform / unrelated / splittable).
fn mixed_requests(count: u64) -> Vec<Request> {
    (0..count)
        .map(|id| {
            let seed = id % 6;
            let instance = match id % 3 {
                0 => ProblemInstance::Uniform(sst_gen::uniform(&sst_gen::UniformParams {
                    n: 24,
                    m: 4,
                    k: 5,
                    seed,
                    ..Default::default()
                })),
                1 => ProblemInstance::Unrelated(sst_gen::unrelated(&sst_gen::UnrelatedParams {
                    n: 24,
                    m: 4,
                    k: 5,
                    seed,
                    ..Default::default()
                })),
                _ => ProblemInstance::Splittable(sst_portfolio::SplittableInstance(
                    sst_gen::scenarios::cdn_transcode(24, 4, 5, seed),
                )),
            };
            Request { id, instance, budget_ms: Some(25), top_k: Some(3), seed: Some(id) }
        })
        .collect()
}

/// Runs `reqs` through a fresh service in `mode` and returns requests/sec.
fn pool_throughput(
    mode: PoolMode,
    workers: usize,
    reqs: &[Request],
    trace: Option<sst_core::telemetry::TraceSink>,
) -> f64 {
    let svc = Service::start(ServeConfig {
        workers,
        mode,
        budget_ms: 25,
        max_queue: reqs.len().max(1),
        trace,
        ..Default::default()
    });
    let sink = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    for req in reqs {
        svc.dispatch(request_to_json(req), sst_portfolio::service::testing::writer_to(&sink));
    }
    let summary = svc.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(summary.count, reqs.len() as u64, "{mode:?}: every request must be served");
    assert_eq!(summary.errors, 0, "{mode:?}");
    reqs.len() as f64 / elapsed
}

/// Work-stealing vs sharded round-robin at equal worker count on the PR 2
/// mixed workload. Printed for the ROADMAP table; softly gated (stealing
/// must reach 70% of sharded throughput) so a scheduling-path regression
/// fails CI while CPU-contention noise on small runners does not — on
/// multi-core hardware stealing should win or tie, since it does the same
/// work with strictly better balancing.
fn pool_throughput_table() {
    const WORKERS: usize = 8;
    let reqs = mixed_requests(96);
    println!("\nserve pool throughput ({WORKERS} workers, {} mixed requests, 25 ms budget):", {
        reqs.len()
    });
    let sharded = pool_throughput(PoolMode::Sharded, WORKERS, &reqs, None);
    let stealing = pool_throughput(PoolMode::WorkStealing, WORKERS, &reqs, None);
    println!("  sharded round-robin {sharded:>8.1} req/s");
    println!("  work-stealing       {stealing:>8.1} req/s  ({:+.1}%)", {
        (stealing / sharded - 1.0) * 100.0
    });
    assert!(
        stealing >= 0.7 * sharded,
        "work-stealing pool fell far behind the sharded baseline: {stealing:.1} vs {sharded:.1} req/s"
    );
}

/// Trace-sink overhead on the same mixed workload: a file-backed NDJSON
/// sink (the realistic `--trace-out FILE` path, full span chain per
/// request) vs. untraced. The telemetry budget is ≤ 5% throughput cost —
/// printed and warned on, while the hard CI gate reuses the deliberate
/// 0.7× floor so deadline-race noise on loaded runners cannot flake the
/// smoke job.
fn trace_overhead_table() {
    const WORKERS: usize = 8;
    let reqs = mixed_requests(96);
    let trace_path =
        std::env::temp_dir().join(format!("sst-bench-trace-{}.ndjson", std::process::id()));
    let untraced = pool_throughput(PoolMode::WorkStealing, WORKERS, &reqs, None);
    let sink =
        sst_core::telemetry::TraceSink::to_file(&trace_path).expect("create bench trace file");
    let traced = pool_throughput(PoolMode::WorkStealing, WORKERS, &reqs, Some(sink));
    let overhead = (untraced / traced - 1.0) * 100.0;
    println!("\ntrace overhead ({WORKERS} workers, {} mixed requests, file sink):", reqs.len());
    println!("  untraced {untraced:>8.1} req/s");
    println!("  traced   {traced:>8.1} req/s  ({overhead:+.1}% overhead)");
    if overhead > 5.0 {
        println!("  WARNING: trace overhead {overhead:.1}% exceeds the 5% telemetry budget");
    }
    let events = std::fs::read_to_string(&trace_path)
        .expect("trace file written")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    // Every request contributes at least enqueue + dequeue + respond.
    assert!(
        events >= 3 * reqs.len(),
        "traced run must write a full event stream, got {events} lines"
    );
    assert!(
        traced >= 0.7 * untraced,
        "tracing costs far more than the telemetry budget: {traced:.1} vs {untraced:.1} req/s"
    );
    let _ = std::fs::remove_file(&trace_path);
}

fn bench(c: &mut Criterion) {
    assert!(
        quality_table(),
        "per-instance winner diversity vanished: on every family one fixed solver \
         dominates all seeds, so the racing portfolio adds nothing"
    );
    pool_throughput_table();
    trace_overhead_table();
    let mut g = c.benchmark_group("portfolio_race");
    g.sample_size(10);
    let inst = family("compute-cluster", 42);
    g.bench_function("race_top3_compute_cluster_40x5", |b| {
        b.iter(|| race(&inst, &RaceConfig { top_k: 3, budget: BUDGET, seed: 42 }))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
