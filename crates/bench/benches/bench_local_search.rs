//! Incremental (tracker-based) vs. full-recompute local-search descent.
//!
//! The acceptance bar for the tracker subsystem: on a generated n=2000,
//! m=50, K=100 unrelated instance the incremental descent must be ≥ 10×
//! faster than the historical full-recompute baseline. Both variants run
//! the same neighborhood (job moves + whole-class moves off the
//! bottleneck) from the same greedy start.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sst_algos::list::greedy_unrelated;
use sst_algos::local_search::{improve_unrelated, improve_unrelated_full_recompute};
use sst_gen::{SetupWeight, UnrelatedParams};

fn params(n: usize, m: usize, k: usize) -> UnrelatedParams {
    UnrelatedParams {
        n,
        m,
        k,
        size_range: (1, 1000),
        machine_effect_quarters: (2, 12),
        noise_pct: 25,
        setups: SetupWeight::Moderate,
        inf_pct: 0,
        seed: 42,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_search_descent");
    g.sample_size(10);
    for &(n, m, k) in &[(200usize, 10usize, 20usize), (2000, 50, 100)] {
        let inst = sst_gen::unrelated(&params(n, m, k));
        let start = greedy_unrelated(&inst);
        let label = format!("{n}x{m}x{k}");
        g.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &(&inst, &start),
            |b, (inst, start)| b.iter(|| improve_unrelated(inst, start, 10_000)),
        );
        g.bench_with_input(
            BenchmarkId::new("full_recompute", &label),
            &(&inst, &start),
            |b, (inst, start)| b.iter(|| improve_unrelated_full_recompute(inst, start, 10_000)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
