//! Lock-order analysis over the acquisition graphs recorded by the compat
//! `parking_lot` under `--features lockdep`.
//!
//! Recording (in `parking_lot::lockdep`) adds one edge `A → B` whenever a
//! thread acquires `B` while holding `A`. A cycle in that graph is a
//! *potential* deadlock: two threads that ever interleave the cyclic orders
//! can block each other forever, even if no run has deadlocked yet. The
//! classic two-lock instance is the ABBA inversion — thread 1 takes `A`
//! then `B`, thread 2 takes `B` then `A`.
//!
//! [`assert_acyclic`] is the test gate: call it at the end of any test that
//! exercised instrumented locks. Without the `lockdep` feature the recorded
//! graph is empty and the call is free, so call sites need no `cfg`.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::lockdep::{self, EdgeSnapshot, Registry};

/// One edge of a [`LockOrderGraph`], with the evidence needed to report an
/// inversion: the acquisition sites of both locks (first time the edge was
/// seen).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Held lock id.
    pub from: u64,
    /// Acquired lock id.
    pub to: u64,
    /// `file:line:col` where `from` was acquired by the recording thread.
    pub from_site: String,
    /// `file:line:col` where `to` was acquired while `from` was held.
    pub to_site: String,
}

/// A directed lock-order graph: nodes are lock instances, an edge `A → B`
/// means some thread acquired `B` while holding `A`. Pure data — build one
/// from a registry snapshot ([`LockOrderGraph::from_registry`]) or by hand
/// ([`LockOrderGraph::add_edge`], used by the proptest oracle).
#[derive(Debug, Default, Clone)]
pub struct LockOrderGraph {
    labels: BTreeMap<u64, String>,
    edges: BTreeMap<(u64, u64), Edge>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> LockOrderGraph {
        LockOrderGraph::default()
    }

    /// Builds a graph from everything `registry` has recorded.
    pub fn from_registry(registry: &Registry) -> LockOrderGraph {
        LockOrderGraph::from_edges(registry.snapshot())
    }

    /// Builds a graph from the global registry (what `Mutex::new` /
    /// `Mutex::named` record into). Empty when lockdep is off.
    pub fn from_default_registry() -> LockOrderGraph {
        LockOrderGraph::from_edges(lockdep::snapshot())
    }

    fn from_edges(edges: Vec<EdgeSnapshot>) -> LockOrderGraph {
        let mut g = LockOrderGraph::new();
        for e in edges {
            g.labels.entry(e.from.id).or_insert(e.from.label);
            g.labels.entry(e.to.id).or_insert(e.to.label);
            g.edges.entry((e.from.id, e.to.id)).or_insert(Edge {
                from: e.from.id,
                to: e.to.id,
                from_site: e.from_site,
                to_site: e.to_site,
            });
        }
        g
    }

    /// Records `from → to` ("`to` acquired while holding `from`"). The
    /// first sites recorded for an edge win, matching the recorder.
    pub fn add_edge(&mut self, from: u64, to: u64, from_site: &str, to_site: &str) {
        self.labels.entry(from).or_insert_with(|| format!("lock#{from}"));
        self.labels.entry(to).or_insert_with(|| format!("lock#{to}"));
        self.edges.entry((from, to)).or_insert(Edge {
            from,
            to,
            from_site: from_site.to_string(),
            to_site: to_site.to_string(),
        });
    }

    /// Names a node (overrides the `lock#id` placeholder in reports).
    pub fn label(&mut self, id: u64, label: &str) {
        self.labels.insert(id, label.to_string());
    }

    /// Number of recorded ordering edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finds a cycle, returned as the edges along it (last edge closes the
    /// loop back to the first node), or `None` when the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<Edge>> {
        // Iterative DFS with an explicit path stack; `state` is 1 while a
        // node is on the current path, 2 once fully explored.
        let mut state: BTreeMap<u64, u8> = BTreeMap::new();
        for &start in self.labels.keys() {
            if state.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path: Vec<u64> = vec![start];
            state.insert(start, 1);
            // Successor iteration via range scans over the edge map keyed
            // by (from, to): all of `from`'s edges are contiguous.
            let succs = |g: &Self, n: u64| -> Vec<u64> {
                g.edges.range((n, 0)..=(n, u64::MAX)).map(|(&(_, to), _)| to).collect()
            };
            let mut pending: Vec<Vec<u64>> = vec![succs(self, start)];
            while let Some(next_list) = pending.last_mut() {
                match next_list.pop() {
                    Some(next) => match state.get(&next).copied().unwrap_or(0) {
                        1 => {
                            // Found a back edge: the cycle is the path
                            // suffix from `next`, plus the closing edge.
                            let at = path.iter().position(|&n| n == next).unwrap_or(path.len() - 1);
                            let mut nodes = path[at..].to_vec();
                            nodes.push(next);
                            let edges = nodes
                                .windows(2)
                                .map(|w| self.edges[&(w[0], w[1])].clone())
                                .collect();
                            return Some(edges);
                        }
                        2 => {}
                        _ => {
                            state.insert(next, 1);
                            path.push(next);
                            pending.push(succs(self, next));
                        }
                    },
                    None => {
                        pending.pop();
                        let done = path.pop().expect("path tracks pending");
                        state.insert(done, 2);
                    }
                }
            }
        }
        None
    }

    /// A total order of the nodes consistent with every edge (Kahn's
    /// algorithm), or `Err` with the ids left over when a cycle makes one
    /// impossible. This is the oracle the cycle detector is tested against:
    /// a topological order exists if and only if `find_cycle` is `None`.
    pub fn topological_order(&self) -> Result<Vec<u64>, Vec<u64>> {
        let mut indegree: BTreeMap<u64, usize> = self.labels.keys().map(|&n| (n, 0)).collect();
        for &(_, to) in self.edges.keys() {
            *indegree.entry(to).or_insert(0) += 1;
        }
        let mut ready: BTreeSet<u64> =
            indegree.iter().filter_map(|(&n, &d)| (d == 0).then_some(n)).collect();
        let mut order = Vec::with_capacity(indegree.len());
        while let Some(&n) = ready.iter().next() {
            ready.remove(&n);
            order.push(n);
            for (&(_, to), _) in self.edges.range((n, 0)..=(n, u64::MAX)) {
                let d = indegree.get_mut(&to).expect("edge endpoints are nodes");
                *d -= 1;
                if *d == 0 {
                    ready.insert(to);
                }
            }
        }
        if order.len() == indegree.len() {
            Ok(order)
        } else {
            Err(indegree.iter().filter_map(|(&n, _)| (!order.contains(&n)).then_some(n)).collect())
        }
    }

    /// Human-readable report for a cycle from [`LockOrderGraph::find_cycle`]:
    /// one line per edge naming both locks and both acquisition sites.
    pub fn describe_cycle(&self, cycle: &[Edge]) -> String {
        let mut out = String::from("potential deadlock: lock-order cycle\n");
        for e in cycle {
            let from = self.labels.get(&e.from).map(String::as_str).unwrap_or("?");
            let to = self.labels.get(&e.to).map(String::as_str).unwrap_or("?");
            out.push_str(&format!(
                "  {from} (held, acquired at {}) -> {to} (acquired at {})\n",
                e.from_site, e.to_site
            ));
        }
        out.push_str(
            "two threads interleaving these orders can block each other forever; \
             pick one global order and stick to it",
        );
        out
    }
}

/// Panics if the *global* lock-order graph recorded so far contains a
/// cycle, printing every edge of the cycle with both acquisition sites.
/// Call at the end of instrumented tests; a no-op (empty graph) when the
/// `lockdep` feature is off, so call sites need no `cfg`.
pub fn assert_acyclic() {
    assert_registry_acyclic(parking_lot::lockdep::default_registry());
}

/// [`assert_acyclic`] against an explicit registry (isolated test graphs
/// from `Registry::leak()`).
pub fn assert_registry_acyclic(registry: &Registry) {
    let graph = LockOrderGraph::from_registry(registry);
    if let Some(cycle) = graph.find_cycle() {
        panic!("{}", graph.describe_cycle(&cycle));
    }
}

#[cfg(test)]
mod tests {
    use super::LockOrderGraph;

    fn graph(edges: &[(u64, u64)]) -> LockOrderGraph {
        let mut g = LockOrderGraph::new();
        for &(a, b) in edges {
            g.add_edge(a, b, "a.rs:1:1", "b.rs:2:2");
        }
        g
    }

    #[test]
    fn empty_and_chain_graphs_are_acyclic() {
        assert!(graph(&[]).find_cycle().is_none());
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        assert!(g.find_cycle().is_none());
        assert_eq!(g.topological_order().expect("acyclic"), vec![1, 2, 3]);
    }

    #[test]
    fn abba_cycle_is_found_and_described() {
        let mut g = LockOrderGraph::new();
        g.add_edge(1, 2, "t1.rs:10:5", "t1.rs:11:5");
        g.add_edge(2, 1, "t2.rs:20:5", "t2.rs:21:5");
        g.label(1, "lock.a");
        g.label(2, "lock.b");
        let cycle = g.find_cycle().expect("ABBA must be flagged");
        assert_eq!(cycle.len(), 2);
        let report = g.describe_cycle(&cycle);
        assert!(report.contains("lock.a") && report.contains("lock.b"), "{report}");
        assert!(report.contains("t1.rs:11:5") && report.contains("t2.rs:21:5"), "{report}");
        assert!(g.topological_order().is_err());
    }

    #[test]
    fn self_loop_and_long_cycle() {
        assert!(graph(&[(7, 7)]).find_cycle().is_some());
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 2)]);
        let cycle = g.find_cycle().expect("2→3→4→2");
        assert!(cycle.len() == 3, "{cycle:?}");
    }

    #[test]
    fn diamond_is_acyclic() {
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        assert!(g.find_cycle().is_none());
        g.topological_order().expect("diamond has an order");
    }
}
