//! The hand-rolled, line-level workspace lint behind `sst lint`.
//!
//! No `syn`, no proc-macro machinery (offline workspace): a scanner walks
//! every `.rs` file, strips line comments, tracks `#[cfg(test)]` regions by
//! brace counting, and applies four convention rules:
//!
//! * **`std-sync`** — no `std::sync::{Mutex, MutexGuard, Condvar, RwLock}`
//!   outside `crates/compat`: all locking funnels through the compat
//!   `parking_lot` so lockdep instrumentation sees every lock. Applies to
//!   test code too (a test's raw mutex is invisible to lockdep).
//! * **`ordering-comment`** — every non-`Relaxed` atomic ordering
//!   (`Acquire`/`Release`/`AcqRel`/`SeqCst`) carries an `// ordering:`
//!   justification on the same line or in the contiguous comment block
//!   directly above, naming what it pairs with.
//! * **`serve-unwrap`** — no `.unwrap()` / `.expect(` in *non-test* code
//!   of the serve-path files (`service.rs`, `durable.rs`, `pool.rs`,
//!   `protocol.rs`): a panicking worker turns one bad request into a
//!   degraded pool. Provably-infallible cases carry an inline
//!   `// lint: allow(serve-unwrap) <why>` annotation.
//! * **`thread-sleep`** — no `thread::sleep` outside tests: sleeping on
//!   the serve path hides ordering bugs and wastes latency budget.
//! * **`wire-alloc`** — no per-cell `collect::<Vec<…>>()` in *non-test*
//!   code of the wire-codec files (`core/src/wire.rs`,
//!   `portfolio/src/wire.rs`): frame decoding sits on the serve hot path
//!   and must bulk-copy into preallocated buffers. Deliberate collects
//!   carry an inline `// lint: allow(wire-alloc) <why>` annotation.
//!
//! Findings not covered by an inline `lint: allow(<rule>)` annotation or by
//! the committed allowlist file (`lint.allow` at the workspace root; see
//! [`Allowlist`]) fail the run — that is the CI gate. Allowlist entries
//! match on *content*, not line numbers, so unrelated edits don't churn the
//! file; entries that no longer match anything are reported as stale.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in annotations and the allowlist file.
pub const RULES: [&str; 5] =
    ["std-sync", "ordering-comment", "serve-unwrap", "thread-sleep", "wire-alloc"];

/// Serve-path files where `serve-unwrap` applies (workspace-relative).
const SERVE_PATH_FILES: [&str; 5] = [
    "crates/portfolio/src/service.rs",
    "crates/portfolio/src/durable.rs",
    "crates/portfolio/src/pool.rs",
    "crates/portfolio/src/protocol.rs",
    "crates/portfolio/src/wire.rs",
];

/// Wire-codec files where `wire-alloc` applies (workspace-relative):
/// frame decoding on the serve path must not allocate per cell.
const WIRE_CODEC_FILES: [&str; 2] = ["crates/core/src/wire.rs", "crates/portfolio/src/wire.rs"];

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed offending line (the allowlist matching key).
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.text)
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist or an inline annotation.
    pub findings: Vec<Finding>,
    /// Violations suppressed by the allowlist file.
    pub allowed: usize,
    /// Allowlist entries that matched nothing (candidates for deletion).
    pub stale_entries: Vec<String>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no unsuppressed findings remain.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The committed allowlist: one entry per line,
/// `"<rule> <path> <trimmed line content>"` (or `*` as the content to
/// allow every finding of that rule in that file). `#` starts a comment.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parses allowlist text (see type docs for the format).
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            if let (Some(rule), Some(path), Some(content)) =
                (parts.next(), parts.next(), parts.next())
            {
                entries.push((rule.to_string(), path.to_string(), content.trim().to_string()));
            }
        }
        let used = vec![false; entries.len()];
        Allowlist { entries, used }
    }

    /// Loads the allowlist at `path`; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> io::Result<Allowlist> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(e),
        }
    }

    fn covers(&mut self, finding: &Finding) -> bool {
        let mut hit = false;
        for (i, (rule, path, content)) in self.entries.iter().enumerate() {
            if rule == finding.rule
                && path == &finding.path
                && (content == "*" || content == &finding.text)
            {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    fn stale(&self) -> Vec<String> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|((rule, path, content), _)| format!("{rule} {path} {content}"))
            .collect()
    }
}

/// Strips the line-comment suffix (`// …`), respecting string literals,
/// and returns `(code, comment)`.
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// True when `code` contains `prefix` immediately followed by one of
/// `idents` (or by a `{…}` group containing one as a whole word). Built
/// from two parts so the lint's own source never contains the contiguous
/// pattern it searches for.
fn contains_path_use(code: &str, prefix: &str, idents: &[&str]) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find(prefix) {
        let after = &rest[at + prefix.len()..];
        if let Some(group) = after.strip_prefix('{') {
            let group = group.split('}').next().unwrap_or(group);
            for part in group.split(',') {
                let word = part.trim().trim_start_matches("self::");
                if idents.contains(&word) {
                    return true;
                }
            }
        } else {
            let word: String =
                after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if idents.contains(&word.as_str()) {
                return true;
            }
        }
        rest = &rest[at + prefix.len()..];
    }
    false
}

/// Counts `{` minus `}` in already-comment-stripped code, skipping string
/// literals. Format-string braces (`"{}"`, `"{{"`) sit inside literals and
/// are skipped wholesale.
fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_str = false;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => delta += 1,
            b'}' if !in_str => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// Lints one file's text. `rel` is the workspace-relative path.
fn lint_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let in_compat = rel.starts_with("crates/compat/");
    let in_test_dir =
        rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/");
    let serve_path = SERVE_PATH_FILES.contains(&rel);
    let wire_codec = WIRE_CODEC_FILES.contains(&rel);

    let non_relaxed = ["Acquire", "Release", "AcqRel", "SeqCst"];
    let sync_idents = ["Mutex", "MutexGuard", "Condvar", "RwLock"];
    // Assembled at runtime so this file never contains its own patterns.
    let std_sync_prefix = format!("{}::{}::", "std", "sync");
    let ordering_prefix = format!("{}::", "Ordering");
    let thread_prefix = format!("{}::", "thread");
    let allow_prefix = format!("{}: allow(", "lint");
    let collect_pattern = format!("{}::<{}<", "collect", "Vec");

    let lines: Vec<&str> = text.lines().collect();
    let mut in_test = false;
    let mut test_depth = 0i64;
    let mut pending_test_attr = false;

    for (idx, raw) in lines.iter().enumerate() {
        let (code, comment) = split_comment(raw);
        let trimmed_code = code.trim();

        // --- #[cfg(test)] region tracking (before linting the line, so
        // the opening `mod tests {` itself counts as test code).
        if !in_test {
            if trimmed_code.starts_with("#[cfg(test")
                || trimmed_code.starts_with("#[cfg(all(test")
                || trimmed_code.starts_with("#[cfg(any(test")
            {
                pending_test_attr = true;
            } else if pending_test_attr && !trimmed_code.starts_with("#[") {
                let delta = brace_delta(code);
                if delta > 0 {
                    in_test = true;
                    test_depth = delta;
                    pending_test_attr = false;
                } else if !trimmed_code.is_empty() && trimmed_code.ends_with(';') {
                    // `#[cfg(test)] use …;` — no region opens.
                    pending_test_attr = false;
                }
            }
        } else {
            test_depth += brace_delta(code);
            if test_depth <= 0 {
                in_test = false;
            }
        }
        let in_test_code = in_test || in_test_dir;

        // Inline suppression: `lint: allow(<rule>)` in a comment on this
        // or the previous line.
        let allowed_inline = |rule: &str| {
            let tag = format!("{allow_prefix}{rule})");
            comment.contains(&tag) || (idx > 0 && split_comment(lines[idx - 1]).1.contains(&tag))
        };
        let mut emit = |rule: &'static str| {
            if !allowed_inline(rule) {
                findings.push(Finding {
                    rule,
                    path: rel.to_string(),
                    line: idx + 1,
                    text: raw.trim().to_string(),
                });
            }
        };

        // --- std-sync: everywhere except the compat layer itself.
        if !in_compat && contains_path_use(code, &std_sync_prefix, &sync_idents) {
            emit("std-sync");
        }

        // --- ordering-comment: non-Relaxed orderings need an `ordering:`
        // justification on the same line or in the contiguous comment
        // block directly above.
        if contains_path_use(code, &ordering_prefix, &non_relaxed) {
            let mut has_justification = comment.contains("ordering:");
            let mut up = idx;
            while !has_justification && up > 0 {
                up -= 1;
                let above = lines[up].trim();
                if !above.starts_with("//") {
                    break;
                }
                has_justification = above.contains("ordering:");
            }
            if !has_justification {
                emit("ordering-comment");
            }
        }

        // --- serve-unwrap: non-test code of the serve-path files.
        if serve_path && !in_test_code && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            emit("serve-unwrap");
        }

        // --- thread-sleep: non-test code anywhere.
        if !in_test_code && contains_path_use(code, &thread_prefix, &["sleep"]) {
            emit("thread-sleep");
        }

        // --- wire-alloc: non-test code of the wire-codec files. The
        // pattern is assembled at runtime so this file never contains it.
        if wire_codec && !in_test_code && code.contains(&collect_pattern) {
            emit("wire-alloc");
        }
    }
}

/// Recursively collects `.rs` files under `root`, skipping `target`,
/// hidden directories and anything that is not a regular file.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the lint over the workspace at `root`, filtering through the
/// allowlist (typically loaded from `<root>/lint.allow`).
pub fn run(root: &Path, mut allowlist: Allowlist) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut raw_findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(file)?;
        lint_file(&rel, &text, &mut raw_findings);
    }
    let mut report = LintReport { files_scanned: files.len(), ..LintReport::default() };
    for finding in raw_findings {
        if allowlist.covers(&finding) {
            report.allowed += 1;
        } else {
            report.findings.push(finding);
        }
    }
    report.stale_entries = allowlist.stale();
    Ok(report)
}

/// Deduplicated rule ids present in `findings` (for summaries).
pub fn rules_hit(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        lint_file(rel, text, &mut findings);
        findings
    }

    #[test]
    fn std_sync_flagged_outside_compat_only() {
        let bad = format!("use {}::{}::{};\n", "std", "sync", "Mutex");
        assert_eq!(lint_str("crates/core/src/x.rs", &bad).len(), 1);
        assert!(lint_str("crates/compat/parking_lot/src/lib.rs", &bad).is_empty());
        let import_group = format!("use {}::{}::{{Arc, {}}};\n", "std", "sync", "Condvar");
        assert_eq!(lint_str("crates/core/src/x.rs", &import_group).len(), 1);
        let fine = format!("use {}::{}::Arc;\n", "std", "sync");
        assert!(lint_str("crates/core/src/x.rs", &fine).is_empty());
    }

    #[test]
    fn std_sync_applies_inside_test_modules() {
        let text = format!(
            "#[cfg(test)]\nmod tests {{\n    use {}::{}::{};\n}}\n",
            "std", "sync", "Mutex"
        );
        assert_eq!(lint_str("crates/core/src/x.rs", &text).len(), 1);
    }

    #[test]
    fn ordering_comment_required_for_non_relaxed() {
        let bare = format!("x.load({}::{});\n", "Ordering", "Acquire");
        assert_eq!(lint_str("crates/core/src/x.rs", &bare).len(), 1);
        let justified = format!(
            "// ordering: pairs with the Release store in close()\nx.load({}::{});\n",
            "Ordering", "Acquire"
        );
        assert!(lint_str("crates/core/src/x.rs", &justified).is_empty());
        let relaxed = format!("x.load({}::Relaxed);\n", "Ordering");
        assert!(lint_str("crates/core/src/x.rs", &relaxed).is_empty());
        // The justification may sit anywhere in the contiguous comment
        // block above, however long.
        let long_block = format!(
            "// ordering: AcqRel — the Release half publishes, the\n\
             // Acquire half observes prior deaths.\n\
             // (More prose that pushes the keyword further away.)\n\
             // And more.\n\
             x.fetch_sub(1, {}::{});\n",
            "Ordering", "AcqRel"
        );
        assert!(lint_str("crates/core/src/x.rs", &long_block).is_empty());
        // But a justification separated by code does not carry over.
        let separated = format!(
            "// ordering: pairs with close()\n\
             let y = 1;\n\
             x.load({}::{});\n",
            "Ordering", "Acquire"
        );
        assert_eq!(lint_str("crates/core/src/x.rs", &separated).len(), 1);
    }

    #[test]
    fn serve_unwrap_only_on_serve_files_non_test() {
        let text = "let x = y.unwrap();\n";
        assert_eq!(lint_str("crates/portfolio/src/pool.rs", text).len(), 1);
        assert!(lint_str("crates/core/src/x.rs", text).is_empty());
        let test_text = "#[cfg(test)]\nmod tests {\n    let x = y.unwrap();\n}\n";
        assert!(lint_str("crates/portfolio/src/pool.rs", test_text).is_empty());
        let annotated = "// lint: allow(serve-unwrap) length checked above\nlet x = y.unwrap();\n";
        assert!(lint_str("crates/portfolio/src/pool.rs", annotated).is_empty());
    }

    #[test]
    fn thread_sleep_flagged_outside_tests() {
        let text = format!("{}::sleep(d);\n", "thread");
        assert_eq!(lint_str("crates/core/src/x.rs", &text).len(), 1);
        assert!(lint_str("crates/cli/tests/x.rs", &text).is_empty());
        let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n    {}::sleep(d);\n}}\n", "thread");
        assert!(lint_str("crates/core/src/x.rs", &in_test_mod).is_empty());
    }

    #[test]
    fn test_region_tracking_survives_format_braces() {
        // Braces inside string literals must not end the test region early.
        let text = "#[cfg(test)]\nmod tests {\n    fn f() {\n        let s = \
             \"{}\";\n    }\n    let x = y.unwrap();\n}\nlet z = q.unwrap();\n";
        let findings = lint_str("crates/portfolio/src/pool.rs", text);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 8, "only the line after the test module");
    }

    #[test]
    fn wire_alloc_flagged_in_codec_files_only() {
        let bad = format!("let v = it.{}::<{}<u64>>();\n", "collect", "Vec");
        assert_eq!(lint_str("crates/core/src/wire.rs", &bad).len(), 1);
        assert_eq!(lint_str("crates/portfolio/src/wire.rs", &bad).len(), 1);
        assert!(lint_str("crates/core/src/io.rs", &bad).is_empty());
        let annotated = format!(
            "// lint: allow(wire-alloc) one collect per frame, not per cell\n\
             let v = it.{}::<{}<u64>>();\n",
            "collect", "Vec"
        );
        assert!(lint_str("crates/core/src/wire.rs", &annotated).is_empty());
        let in_tests = format!(
            "#[cfg(test)]\nmod tests {{\n    let v = it.{}::<{}<u64>>();\n}}\n",
            "collect", "Vec"
        );
        assert!(lint_str("crates/core/src/wire.rs", &in_tests).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let comment_only = format!("// mentions {}::{}::{} in prose\n", "std", "sync", "Mutex");
        assert!(lint_str("crates/core/src/x.rs", &comment_only).is_empty());
    }

    #[test]
    fn allowlist_matches_content_and_reports_stale() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             serve-unwrap crates/portfolio/src/pool.rs let x = y.unwrap();\n\
             serve-unwrap crates/portfolio/src/pool.rs let never = matches();\n\
             thread-sleep crates/core/src/x.rs *\n",
        );
        let f = Finding {
            rule: "serve-unwrap",
            path: "crates/portfolio/src/pool.rs".into(),
            line: 3,
            text: "let x = y.unwrap();".into(),
        };
        assert!(allow.covers(&f));
        let wildcard = Finding {
            rule: "thread-sleep",
            path: "crates/core/src/x.rs".into(),
            line: 9,
            text: "anything".into(),
        };
        assert!(allow.covers(&wildcard));
        let stale = allow.stale();
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("never"), "{stale:?}");
    }
}
