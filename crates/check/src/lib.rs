//! Correctness tooling for the serve path's hand-rolled concurrency.
//!
//! The workspace has no access to loom, ThreadSanitizer crates or the real
//! parking_lot's deadlock detection (offline build), so this crate provides
//! the three analysis layers those would have supplied:
//!
//! * [`lockdep`] — analysis over the lock-order graph that the compat
//!   `parking_lot` records under `--features lockdep`: cycle detection over
//!   `held → acquired` edges flags *potential* ABBA deadlocks (orders that
//!   never actually deadlocked in the run) with both acquisition sites, and
//!   [`lockdep::assert_acyclic`] gates instrumented tests.
//! * [`sched`] — a deterministic virtual-thread scheduler with explicit
//!   yield points. Small models of the riskiest serve-path protocols run
//!   under exhaustive DFS over interleavings (loom-style, for small state
//!   spaces) or seeded random walks (for bigger ones).
//! * [`lint`] — the hand-rolled line-level workspace lint behind
//!   `sst lint`: no raw `std::sync` locks outside the compat layer, no
//!   unjustified non-`Relaxed` atomic orderings, no `unwrap` in serve-path
//!   non-test code, no `thread::sleep` outside tests.

pub mod lint;
pub mod lockdep;
pub mod sched;
