//! A deterministic virtual-thread scheduler with explicit yield points —
//! the loom-style interleaving harness.
//!
//! Model code runs on real OS threads, but exactly one runs at a time: a
//! controller hands a baton to one *virtual thread* at each step, and the
//! thread runs until its next yield point (every [`VMutex::lock`],
//! [`VCondvar`] operation and [`VCell`] access is one, and model code can
//! add its own with [`yield_now`]). Which thread gets the baton is the
//! schedule; [`explore`] enumerates schedules either exhaustively
//! (depth-first over every decision sequence — feasible for the small
//! models in `tests/sched_models.rs`) or as seeded random walks (bounded,
//! for bigger state spaces in CI).
//!
//! A schedule fails when a model thread panics (an assertion about the
//! protocol), when no unfinished thread is runnable (**deadlock** — this is
//! how a lost wakeup surfaces: the waiter parks forever), or when the step
//! limit trips (livelock). The failing decision sequence is reported so the
//! interleaving can be replayed by reading the trace.
//!
//! Writing a model: keep it tiny (2–3 threads, a handful of yield points
//! each — exhaustive exploration is exponential in total yield points),
//! express every cross-thread interaction through [`VMutex`], [`VCondvar`]
//! and [`VCell`], and assert the protocol's postcondition either inside the
//! model threads or on the state after [`explore`] returns.

use std::cell::{RefCell, UnsafeCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How [`explore`] walks the schedule space.
#[derive(Debug, Clone, Copy)]
pub enum Strategy {
    /// Depth-first over every decision sequence, up to `max_executions`
    /// schedules. `Stats::complete` reports whether the space was
    /// exhausted within the bound.
    Exhaustive {
        /// Upper bound on schedules to run (safety valve for models whose
        /// state space turns out bigger than expected).
        max_executions: usize,
    },
    /// `walks` independent schedules with uniformly random choices from a
    /// deterministic seed. Never "complete" in the exhaustive sense.
    Random {
        /// RNG seed; a given seed always explores the same schedules.
        seed: u64,
        /// Number of schedules to run.
        walks: usize,
    },
}

/// Exploration summary returned on success.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Schedules executed.
    pub executions: usize,
    /// True when an [`Strategy::Exhaustive`] run enumerated every schedule
    /// within its bound (always false for random walks).
    pub complete: bool,
}

/// Why a schedule failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// No unfinished virtual thread was runnable: every one was parked on
    /// a [`VMutex`] or [`VCondvar`] nobody will ever release/notify.
    Deadlock {
        /// Names of the stuck threads.
        blocked: Vec<String>,
    },
    /// A model thread panicked (failed assertion about the protocol).
    Panic {
        /// Name of the panicking thread.
        thread: String,
        /// The panic message.
        message: String,
    },
    /// The per-schedule step limit tripped (livelock or unbounded loop).
    StepLimit,
}

/// A failing schedule: the kind of failure plus the decision sequence that
/// reproduces it (the rank of the chosen thread among the runnable set at
/// each step).
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The schedule: at step `i`, the `trace[i]`-th runnable thread ran.
    pub trace: Vec<usize>,
    /// 0-based index of the failing schedule in exploration order.
    pub execution: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: threads {blocked:?} parked with no runnable peer")?
            }
            FailureKind::Panic { thread, message } => {
                write!(f, "model thread {thread:?} panicked: {message}")?
            }
            FailureKind::StepLimit => write!(f, "step limit exceeded (livelock?)")?,
        }
        write!(f, " [schedule #{} trace {:?}]", self.execution, self.trace)
    }
}

/// Baton owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Controller,
    Thread(usize),
}

/// Virtual-thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Parked on the resource with this key until someone unblocks it.
    Blocked(usize),
    /// Exited (normally, or unwound during abort).
    Finished,
    /// Exited by model panic; terminal like `Finished`.
    Panicked,
}

struct ExecState {
    turn: Turn,
    status: Vec<Status>,
    names: Vec<String>,
    panic_message: Option<(usize, String)>,
    abort: bool,
}

/// Shared controller state for one execution. The scheduler's own lock is
/// `untracked`: it must not appear in the model's (or the host test's)
/// lock-order graph.
struct ExecShared {
    m: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    /// Set inside a virtual thread: the execution it belongs to and its
    /// thread index. `None` on the controller (and any foreign) thread.
    static CURRENT: RefCell<Option<(Arc<ExecShared>, usize)>> = const { RefCell::new(None) };
}

/// Sentinel panic payload used to unwind virtual threads when a schedule
/// aborts early (another thread failed). Never reported as a model panic.
struct AbortToken;

fn with_current<R>(f: impl FnOnce(&Arc<ExecShared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(exec, i)| f(exec, *i)))
}

/// Hands the baton back to the controller and waits until it is this
/// thread's turn again. The explicit interleaving point: between two yield
/// points a virtual thread runs without preemption. No-op outside a
/// virtual thread (so model setup code can reuse model types).
pub fn yield_now() {
    let aborted = with_current(|exec, i| {
        let mut st = exec.m.lock();
        st.turn = Turn::Controller;
        exec.cv.notify_all();
        while st.turn != Turn::Thread(i) {
            exec.cv.wait(&mut st);
        }
        st.abort
    });
    if aborted == Some(true) {
        std::panic::panic_any(AbortToken);
    }
}

/// Parks the current virtual thread on `key` until another thread
/// unblocks it. Must only be called from model primitives.
fn block_on(key: usize) {
    let aborted = with_current(|exec, i| {
        let mut st = exec.m.lock();
        st.status[i] = Status::Blocked(key);
        st.turn = Turn::Controller;
        exec.cv.notify_all();
        while st.turn != Turn::Thread(i) {
            exec.cv.wait(&mut st);
        }
        st.abort
    });
    match aborted {
        Some(true) => std::panic::panic_any(AbortToken),
        Some(false) => {}
        None => panic!("sched primitive blocked outside a virtual thread"),
    }
}

/// Marks every thread parked on `key` runnable. Caller keeps the baton.
fn unblock_all(key: usize) {
    with_current(|exec, _| {
        let mut st = exec.m.lock();
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(key) {
                *s = Status::Runnable;
            }
        }
    });
}

/// Marks the lowest-indexed thread parked on `key` runnable (if any);
/// a notify with no waiter is lost, as with a real condvar.
fn unblock_one(key: usize) {
    with_current(|exec, _| {
        let mut st = exec.m.lock();
        if let Some(s) = st.status.iter_mut().find(|s| **s == Status::Blocked(key)) {
            *s = Status::Runnable;
        }
    });
}

/// Interior model state shared between virtual threads. Safety: the baton
/// guarantees at most one virtual thread runs at any instant, and
/// references never live across a yield point unless guarded by
/// [`VMutex`], so the unsynchronized access cannot race.
struct ModelCell<T> {
    value: UnsafeCell<T>,
}

// Safety: see ModelCell — the scheduler serializes all virtual threads.
unsafe impl<T: Send> Send for ModelCell<T> {}
unsafe impl<T: Send> Sync for ModelCell<T> {}

/// A virtual mutex: models `parking_lot::Mutex` with a yield point at
/// acquisition and blocking (not spinning) contention. Share between model
/// threads with `Arc`.
pub struct VMutex<T> {
    locked: ModelCell<bool>,
    value: ModelCell<T>,
}

impl<T> VMutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> VMutex<T> {
        VMutex {
            locked: ModelCell { value: UnsafeCell::new(false) },
            value: ModelCell { value: UnsafeCell::new(value) },
        }
    }

    fn key(&self) -> usize {
        self as *const VMutex<T> as *const () as usize
    }

    fn is_locked(&self) -> bool {
        // Safety: baton-serialized (see ModelCell).
        unsafe { *self.locked.value.get() }
    }

    fn set_locked(&self, v: bool) {
        // Safety: baton-serialized (see ModelCell).
        unsafe { *self.locked.value.get() = v }
    }

    /// Acquires the mutex, yielding first (the interleaving point) and
    /// parking while a peer holds it.
    pub fn lock(&self) -> VMutexGuard<'_, T> {
        yield_now();
        loop {
            if !self.is_locked() {
                self.set_locked(true);
                return VMutexGuard { mutex: self };
            }
            block_on(self.key());
        }
    }

    /// Releases without a guard (internal; also used by `VCondvar::wait`).
    fn release(&self) {
        self.set_locked(false);
        unblock_all(self.key());
    }

    /// Re-acquires after a condvar wake: parks until free, no extra yield
    /// (the waker's schedule step already decided the interleaving).
    fn reacquire(&self) {
        loop {
            if !self.is_locked() {
                self.set_locked(true);
                return;
            }
            block_on(self.key());
        }
    }
}

/// Guard for a [`VMutex`]; releases (and wakes blocked contenders) on drop.
pub struct VMutexGuard<'a, T> {
    mutex: &'a VMutex<T>,
}

impl<T> std::ops::Deref for VMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: holding the virtual lock + baton serialization.
        unsafe { &*self.mutex.value.value.get() }
    }
}

impl<T> std::ops::DerefMut for VMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: holding the virtual lock + baton serialization.
        unsafe { &mut *self.mutex.value.value.get() }
    }
}

impl<T> Drop for VMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.release();
    }
}

/// A virtual condition variable over a [`VMutex`], modelling the compat
/// `Condvar`: wait atomically releases the mutex and parks; a notify with
/// no parked waiter is lost (exactly the semantics whose misuse causes
/// lost-wakeup hangs).
pub struct VCondvar {
    // Key identity only; the box gives the condvar a stable address.
    _anchor: Box<u8>,
}

impl Default for VCondvar {
    fn default() -> Self {
        VCondvar::new()
    }
}

impl VCondvar {
    /// A new condvar.
    pub fn new() -> VCondvar {
        VCondvar { _anchor: Box::new(0) }
    }

    fn key(&self) -> usize {
        &*self._anchor as *const u8 as usize
    }

    /// Atomically releases the guard's mutex and parks until notified;
    /// re-acquires before returning.
    pub fn wait<T>(&self, guard: &mut VMutexGuard<'_, T>) {
        // Release and park within one baton tenure: no peer can observe
        // the mutex free without this thread already counting as a waiter.
        guard.mutex.release();
        block_on(self.key());
        guard.mutex.reacquire();
    }

    /// Wakes one parked waiter (lost if there is none).
    pub fn notify_one(&self) {
        yield_now();
        unblock_one(self.key());
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        yield_now();
        unblock_all(self.key());
    }
}

/// An unsynchronized shared cell with a yield point at every access — for
/// modelling *racy* reads/writes (the bug patterns) that a [`VMutex`]
/// would serialize away.
pub struct VCell<T: Copy> {
    cell: ModelCell<T>,
}

impl<T: Copy> VCell<T> {
    /// A new cell.
    pub fn new(value: T) -> VCell<T> {
        VCell { cell: ModelCell { value: UnsafeCell::new(value) } }
    }

    /// Reads the value (one yield point).
    pub fn get(&self) -> T {
        yield_now();
        // Safety: baton-serialized (see ModelCell).
        unsafe { *self.cell.value.get() }
    }

    /// Writes the value (one yield point).
    pub fn set(&self, value: T) {
        yield_now();
        // Safety: baton-serialized (see ModelCell).
        unsafe { *self.cell.value.get() = value }
    }
}

/// Handle passed to the model body for registering virtual threads.
pub struct Run<'e> {
    exec: &'e Arc<ExecShared>,
    handles: &'e mut Vec<std::thread::JoinHandle<()>>,
}

impl Run<'_> {
    /// Registers a virtual thread. It starts parked and only runs when the
    /// controller schedules it; `f`'s panics fail the schedule.
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        let i = {
            let mut st = self.exec.m.lock();
            st.status.push(Status::Runnable);
            st.names.push(name.to_string());
            st.status.len() - 1
        };
        let exec = Arc::clone(self.exec);
        self.handles.push(std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), i)));
            // Wait for the first baton.
            let abort = {
                let mut st = exec.m.lock();
                while st.turn != Turn::Thread(i) {
                    exec.cv.wait(&mut st);
                }
                st.abort
            };
            let outcome = if abort { Ok(()) } else { catch_unwind(AssertUnwindSafe(f)) };
            let mut st = exec.m.lock();
            match outcome {
                Ok(()) => st.status[i] = Status::Finished,
                Err(payload) => {
                    if payload.is::<AbortToken>() {
                        st.status[i] = Status::Finished;
                    } else {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        if st.panic_message.is_none() {
                            st.panic_message = Some((i, msg));
                        }
                        st.status[i] = Status::Panicked;
                    }
                }
            }
            st.turn = Turn::Controller;
            exec.cv.notify_all();
        }));
    }
}

/// Schedule choice source: replays a prefix, then either first-choice
/// (DFS) or seeded-random ranks.
enum Chooser {
    Dfs { prefix: Vec<usize> },
    Random { rng: SmallRng },
}

impl Chooser {
    /// Rank of the thread to run among `branching` runnable ones at
    /// decision `step`.
    fn choose(&mut self, step: usize, branching: usize) -> usize {
        match self {
            Chooser::Dfs { prefix } => prefix.get(step).copied().unwrap_or(0).min(branching - 1),
            Chooser::Random { rng } => rng.gen_range(0..branching),
        }
    }
}

/// Per-schedule step bound; far above anything a small model needs, low
/// enough to catch accidental unbounded loops quickly.
const MAX_STEPS: usize = 100_000;

/// Runs one schedule of `body`. Returns the decision record
/// `(rank, branching)` per step, or the failure.
fn run_one(
    body: &(impl Fn(&mut Run<'_>) + Sync),
    chooser: &mut Chooser,
    execution: usize,
) -> Result<Vec<(usize, usize)>, Failure> {
    let exec = Arc::new(ExecShared {
        m: Mutex::untracked(ExecState {
            turn: Turn::Controller,
            status: Vec::new(),
            names: Vec::new(),
            panic_message: None,
            abort: false,
        }),
        cv: Condvar::new(),
    });
    let mut handles = Vec::new();
    body(&mut Run { exec: &exec, handles: &mut handles });

    let mut record: Vec<(usize, usize)> = Vec::new();
    let failure_kind: Option<FailureKind> = loop {
        // The controller owns the baton here (initially, and again every
        // time a thread yields/blocks/finishes back to us).
        let mut st = exec.m.lock();
        while st.turn != Turn::Controller {
            exec.cv.wait(&mut st);
        }
        if let Some((i, msg)) = st.panic_message.take() {
            break Some(FailureKind::Panic { thread: st.names[i].clone(), message: msg });
        }
        let runnable: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (*s == Status::Runnable).then_some(i))
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<String> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Status::Blocked(_)))
                .map(|(i, _)| st.names[i].clone())
                .collect();
            if blocked.is_empty() {
                break None; // all finished
            }
            break Some(FailureKind::Deadlock { blocked });
        }
        if record.len() >= MAX_STEPS {
            break Some(FailureKind::StepLimit);
        }
        let rank = chooser.choose(record.len(), runnable.len());
        record.push((rank, runnable.len()));
        st.turn = Turn::Thread(runnable[rank]);
        exec.cv.notify_all();
    };

    // Wind down: resume every unfinished thread with the abort flag so its
    // next yield point unwinds it, then join everything.
    loop {
        let pending = {
            let mut st = exec.m.lock();
            while st.turn != Turn::Controller {
                exec.cv.wait(&mut st);
            }
            st.abort = true;
            let pending =
                st.status.iter().position(|s| matches!(s, Status::Runnable | Status::Blocked(_)));
            if let Some(i) = pending {
                st.status[i] = Status::Runnable;
                st.turn = Turn::Thread(i);
                exec.cv.notify_all();
            }
            pending
        };
        if pending.is_none() {
            break;
        }
    }
    for h in handles {
        let _ = h.join();
    }

    match failure_kind {
        None => Ok(record),
        Some(kind) => {
            Err(Failure { kind, trace: record.iter().map(|&(r, _)| r).collect(), execution })
        }
    }
}

/// Deepest decision that still has an untried sibling, advanced by one —
/// the next DFS prefix — or `None` when the space is exhausted.
fn next_prefix(record: &[(usize, usize)]) -> Option<Vec<usize>> {
    for p in (0..record.len()).rev() {
        let (rank, branching) = record[p];
        if rank + 1 < branching {
            let mut prefix: Vec<usize> = record[..p].iter().map(|&(r, _)| r).collect();
            prefix.push(rank + 1);
            return Some(prefix);
        }
    }
    None
}

/// Explores schedules of the model `body` (which registers its virtual
/// threads on the given [`Run`]; it is re-invoked once per schedule, so
/// all model state must be built inside it). Returns the first failing
/// schedule, or exploration stats when every schedule passed.
pub fn explore(
    strategy: Strategy,
    body: impl Fn(&mut Run<'_>) + Sync,
) -> Result<Stats, Box<Failure>> {
    match strategy {
        Strategy::Exhaustive { max_executions } => {
            let mut prefix: Vec<usize> = Vec::new();
            let mut executions = 0;
            loop {
                if executions >= max_executions {
                    return Ok(Stats { executions, complete: false });
                }
                let mut chooser = Chooser::Dfs { prefix: std::mem::take(&mut prefix) };
                let record = run_one(&body, &mut chooser, executions).map_err(Box::new)?;
                executions += 1;
                match next_prefix(&record) {
                    Some(next) => prefix = next,
                    None => return Ok(Stats { executions, complete: true }),
                }
            }
        }
        Strategy::Random { seed, walks } => {
            for execution in 0..walks {
                let mut chooser = Chooser::Random {
                    rng: SmallRng::seed_from_u64(seed.wrapping_add(execution as u64)),
                };
                run_one(&body, &mut chooser, execution).map_err(Box::new)?;
            }
            Ok(Stats { executions: walks, complete: false })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_to_completion() {
        let stats = explore(Strategy::Exhaustive { max_executions: 10 }, |run| {
            run.spawn("solo", || {
                yield_now();
                yield_now();
            });
        })
        .expect("no failure");
        assert_eq!(stats.executions, 1, "one thread has exactly one schedule");
        assert!(stats.complete);
    }

    #[test]
    fn exhaustive_counts_interleavings_of_two_two_step_threads() {
        // Two threads, each consuming 3 baton grants (start→yield,
        // yield→yield, yield→finish): C(6,3) = 20 interleavings.
        let stats = explore(Strategy::Exhaustive { max_executions: 100 }, |run| {
            for name in ["a", "b"] {
                run.spawn(name, || {
                    yield_now();
                    yield_now();
                });
            }
        })
        .expect("no failure");
        assert!(stats.complete);
        assert_eq!(stats.executions, 20, "C(6,3) schedules");
    }

    #[test]
    fn vmutex_serializes_critical_sections() {
        use std::sync::Arc;
        let result = explore(Strategy::Exhaustive { max_executions: 10_000 }, |run| {
            let m = Arc::new(VMutex::new((0u32, 0u32)));
            for _ in 0..2 {
                let m = Arc::clone(&m);
                run.spawn("incr", move || {
                    let mut g = m.lock();
                    let (a, _) = *g;
                    yield_now(); // a torn read/modify/write would corrupt without the lock
                    *g = (a + 1, a + 1);
                });
            }
            let m2 = Arc::clone(&m);
            run.spawn("check", move || {
                let g = m2.lock();
                assert_eq!(g.0, g.1, "critical section must be atomic");
            });
        });
        result.expect("mutex-protected increments never tear");
    }

    #[test]
    fn racy_increment_is_caught() {
        use std::sync::Arc;
        // The same increment through a racy VCell must lose an update in
        // some interleaving — proving the explorer actually interleaves.
        let result = explore(Strategy::Exhaustive { max_executions: 10_000 }, |run| {
            let c = Arc::new(VCell::new(0u32));
            for _ in 0..2 {
                let c = Arc::clone(&c);
                run.spawn("incr", move || {
                    let v = c.get();
                    c.set(v + 1);
                });
            }
            let c2 = Arc::clone(&c);
            run.spawn("check", move || {
                // Runs last in some schedule; only assert when both
                // increments are done (value would be 2 if atomic).
                let v = c2.get();
                assert!(v <= 2);
            });
        });
        // No deadlock/assert here — the loss shows as v == 1; verify via a
        // dedicated panic model instead:
        result.expect("bounded assertion holds");
        let lost = explore(Strategy::Exhaustive { max_executions: 10_000 }, |run| {
            let c = Arc::new(VCell::new(0u32));
            let done = Arc::new(VCell::new(0u32));
            for _ in 0..2 {
                let c = Arc::clone(&c);
                let done = Arc::clone(&done);
                run.spawn("incr", move || {
                    let v = c.get();
                    c.set(v + 1);
                    done.set(done.get() + 1);
                    if done.get() == 2 {
                        assert_eq!(c.get(), 2, "lost update");
                    }
                });
            }
        });
        assert!(lost.is_err(), "exhaustive search must find the lost update");
    }

    #[test]
    fn deadlock_is_reported_with_thread_names() {
        use std::sync::Arc;
        let result = explore(Strategy::Exhaustive { max_executions: 100 }, |run| {
            let m = Arc::new(VMutex::new(()));
            let cv = Arc::new(VCondvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            run.spawn("waiter", move || {
                let mut g = m2.lock();
                cv2.wait(&mut g); // nobody will ever notify
            });
        });
        let failure = result.expect_err("must deadlock");
        match &failure.kind {
            FailureKind::Deadlock { blocked } => assert_eq!(blocked, &["waiter"]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn random_walks_are_deterministic_per_seed() {
        use std::sync::Arc;
        let run_once = || {
            let order = Arc::new(Mutex::untracked(Vec::new()));
            let order2 = Arc::clone(&order);
            explore(Strategy::Random { seed: 7, walks: 3 }, move |run| {
                for name in ["a", "b", "c"] {
                    let order = Arc::clone(&order2);
                    run.spawn(name, move || {
                        yield_now();
                        order.lock().push(name);
                    });
                }
            })
            .expect("no failure");
            Arc::try_unwrap(order).map(Mutex::into_inner).expect("walks joined")
        };
        assert_eq!(run_once(), run_once(), "same seed, same schedules");
    }
}
