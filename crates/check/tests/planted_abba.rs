//! Plants a deliberate ABBA lock-order inversion and checks that lockdep
//! flags it with both acquisition sites. Only meaningful with recording on
//! (`--features lockdep`); the locks live in an isolated registry so the
//! planted cycle cannot fail other tests' `assert_acyclic()` gates.
#![cfg(feature = "lockdep")]

use parking_lot::lockdep::Registry;
use parking_lot::Mutex;
use sst_check::lockdep::{assert_registry_acyclic, LockOrderGraph};

#[test]
fn planted_abba_inversion_is_detected_with_both_sites() {
    let reg = Registry::leak();
    let a = Mutex::named_in(reg, "plant.a", ());
    let b = Mutex::named_in(reg, "plant.b", ());

    // The two inconsistent orders. Sequential on one thread is enough:
    // lockdep flags the *order*, not an actual deadlock — that is the
    // point (two threads interleaving these orders can deadlock).
    let ab_base = line!();
    {
        let _a = a.lock();
        let _b = b.lock(); // A -> B recorded here: line ab_base + 3
    }
    let ba_base = line!();
    {
        let _b = b.lock();
        let _a = a.lock(); // B -> A recorded here: line ba_base + 3
    }

    let graph = LockOrderGraph::from_registry(reg);
    let cycle = graph.find_cycle().expect("ABBA inversion must be flagged");
    assert_eq!(cycle.len(), 2, "two-lock cycle");
    let report = graph.describe_cycle(&cycle);
    assert!(report.contains("plant.a") && report.contains("plant.b"), "{report}");
    // Both acquisition sites, down to the line, appear in the report.
    let ab = format!("planted_abba.rs:{}", ab_base + 3);
    let ba = format!("planted_abba.rs:{}", ba_base + 3);
    assert!(report.contains(&ab), "A->B site {ab} missing from:\n{report}");
    assert!(report.contains(&ba), "B->A site {ba} missing from:\n{report}");

    // And the test gate panics with that report.
    let panic = std::panic::catch_unwind(|| assert_registry_acyclic(reg))
        .expect_err("gate must fail on a planted cycle");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("potential deadlock"), "{msg}");
}

#[test]
fn consistent_order_passes_the_gate() {
    let reg = Registry::leak();
    let a = Mutex::named_in(reg, "ok.a", ());
    let b = Mutex::named_in(reg, "ok.b", ());
    for _ in 0..3 {
        let _a = a.lock();
        let _b = b.lock();
    }
    assert_registry_acyclic(reg);
    let graph = LockOrderGraph::from_registry(reg);
    assert_eq!(graph.edge_count(), 1, "one first-seen edge, deduplicated");
}

#[test]
fn condvar_wait_reregisters_held_lock() {
    use std::sync::mpsc;
    use std::sync::Arc;
    // A thread waiting on a condvar releases the guarded lock; when it
    // wakes holding it again and then takes another lock, the edge must be
    // recorded from the *wait* re-acquisition, keeping the graph honest.
    let reg = Registry::leak();
    let gate = Arc::new((Mutex::named_in(reg, "cv.gate", false), parking_lot::Condvar::new()));
    let inner = Arc::new(Mutex::named_in(reg, "cv.inner", ()));
    let (started_tx, started_rx) = mpsc::channel();
    let waiter = {
        let gate = Arc::clone(&gate);
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            let (lock, cv) = &*gate;
            let mut ready = lock.lock();
            started_tx.send(()).expect("main alive");
            while !*ready {
                cv.wait(&mut ready);
            }
            let _i = inner.lock(); // gate -> inner, with gate held via the wait re-acquisition
        })
    };
    started_rx.recv().expect("waiter started");
    {
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }
    waiter.join().expect("waiter");
    let graph = LockOrderGraph::from_registry(reg);
    assert!(graph.find_cycle().is_none());
    assert_eq!(graph.edge_count(), 1, "exactly the gate->inner edge");
}
