//! Property tests for the lock-order cycle detector (satellite 3).
//!
//! Oracle: a directed graph has a topological order if and only if it is
//! acyclic, so `find_cycle` and `topological_order` must always agree —
//! and on histories built from a fixed global order, `find_cycle` must
//! never fire, while any planted cycle must always be found.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_check::lockdep::LockOrderGraph;

/// Builds a graph from raw `(from, to)` pairs.
fn graph_of(pairs: &[(u64, u64)]) -> LockOrderGraph {
    let mut g = LockOrderGraph::new();
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let from_site = format!("hist.rs:{}:1", i + 1);
        let to_site = format!("hist.rs:{}:9", i + 1);
        g.add_edge(a, b, &from_site, &to_site);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histories consistent with one global order (every acquisition edge
    /// oriented low-id -> high-id) never trip the detector, and the oracle
    /// agrees a total order exists.
    #[test]
    fn never_fires_on_order_consistent_histories(
        raw in vec((0u64..12, 0u64..12), 0..60),
    ) {
        let pairs: Vec<(u64, u64)> = raw
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let g = graph_of(&pairs);
        prop_assert!(g.find_cycle().is_none(), "false positive on consistent history");
        prop_assert!(g.topological_order().is_ok());
    }

    /// Planting a cycle into an otherwise order-consistent history is
    /// always detected, and the oracle agrees no total order exists.
    #[test]
    fn always_finds_a_planted_cycle(
        raw in vec((0u64..12, 0u64..12), 0..60),
        cyc in vec(0u64..12, 2..6),
    ) {
        let mut nodes: Vec<u64> = Vec::new();
        for n in cyc {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        prop_assume!(nodes.len() >= 2);
        let mut pairs: Vec<(u64, u64)> = raw
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        for w in nodes.windows(2) {
            pairs.push((w[0], w[1]));
        }
        pairs.push((nodes[nodes.len() - 1], nodes[0]));
        let g = graph_of(&pairs);
        let cycle = g.find_cycle();
        prop_assert!(cycle.is_some(), "planted cycle through {nodes:?} missed");
        prop_assert!(g.topological_order().is_err());
        // The reported cycle is genuine: consecutive edges chain, and the
        // last edge closes back to the first node.
        let cycle = cycle.expect("just checked");
        for w in cycle.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from, "cycle edges must chain");
        }
        prop_assert_eq!(
            cycle[cycle.len() - 1].to, cycle[0].from,
            "cycle must close"
        );
    }

    /// On arbitrary (unoriented) histories the detector agrees with the
    /// topological-sort oracle exactly.
    #[test]
    fn detector_agrees_with_topological_oracle(
        raw in vec((0u64..10, 0u64..10), 0..40),
    ) {
        let g = graph_of(&raw);
        prop_assert_eq!(g.find_cycle().is_none(), g.topological_order().is_ok());
    }
}
