//! Deterministic interleaving models of the four riskiest serve-path
//! protocols, explored with `sst_check::sched` (loom-style). Each model is
//! a few virtual threads with explicit yield points; the exhaustive runs
//! enumerate *every* schedule, so a passing test is a proof over the model,
//! not a lucky run. Each protocol also has a deliberately broken variant
//! that the explorer must catch — that pins *why* the production code is
//! shaped the way it is.

use std::sync::Arc;

use sst_check::sched::{explore, yield_now, FailureKind, Strategy, VCell, VCondvar, VMutex};

// ---------------------------------------------------------------------------
// Model 1: injector / per-worker deque with steal-back-half handoff
// (pool.rs dispatch). A victim claims the whole injector batch; a thief
// finds the injector empty and steals back half of the victim's local
// queue. Property: every task is executed exactly once, no matter how the
// claim and the steal interleave.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PoolDone {
    done: Vec<u32>,
    exits: u32,
}

#[test]
fn pool_steal_back_half_handoff_loses_no_task() {
    let stats = explore(Strategy::Exhaustive { max_executions: 100_000 }, |run| {
        let injector = Arc::new(VMutex::new(vec![1u32, 2, 3]));
        let victim_local = Arc::new(VMutex::new(Vec::<u32>::new()));
        let state = Arc::new(VMutex::new(PoolDone::default()));

        let finish = |state: &Arc<VMutex<PoolDone>>, mine: Vec<u32>| {
            let mut st = state.lock();
            st.done.extend(mine);
            st.exits += 1;
            if st.exits == 2 {
                let mut done = st.done.clone();
                done.sort_unstable();
                assert_eq!(done, vec![1, 2, 3], "each task exactly once");
            }
        };

        {
            let (injector, local, state) =
                (Arc::clone(&injector), Arc::clone(&victim_local), Arc::clone(&state));
            run.spawn("victim", move || {
                // Claim the batch: pop one to run, park the rest in the
                // local deque (pool.rs claim path).
                let mut mine = Vec::new();
                let rest = {
                    let mut inj = injector.lock();
                    if let Some(first) = inj.pop() {
                        mine.push(first);
                    }
                    std::mem::take(&mut *inj)
                };
                victim_locked_extend(&local, rest);
                // Drain whatever the thief left us.
                loop {
                    let next = local.lock().pop();
                    match next {
                        Some(t) => mine.push(t),
                        None => break,
                    }
                }
                finish(&state, mine);
            });
        }
        {
            let (injector, local, state) =
                (Arc::clone(&injector), Arc::clone(&victim_local), Arc::clone(&state));
            run.spawn("thief", move || {
                let mut mine = Vec::new();
                if let Some(t) = injector.lock().pop() {
                    // Beat the victim to the injector: run one task and
                    // leave the rest (the victim claims them).
                    mine.push(t);
                } else {
                    // Injector empty: steal back half of the victim's
                    // local queue (pool.rs steal path).
                    let mut v = local.lock();
                    let keep = v.len() - v.len() / 2;
                    mine = v.split_off(keep);
                }
                finish(&state, mine);
            });
        }
    })
    .expect("no schedule may lose or duplicate a task");
    assert!(stats.complete, "exhaustive space must be fully enumerated");
}

/// Victim-side helper: one lock tenure to deposit the claimed batch.
fn victim_locked_extend(local: &Arc<VMutex<Vec<u32>>>, rest: Vec<u32>) {
    if !rest.is_empty() {
        local.lock().extend(rest);
    }
}

// ---------------------------------------------------------------------------
// Model 2: condvar park vs. wake (pool.rs:330 lost-wakeup comment). The
// fixed protocol keeps the work flag inside the sleep mutex and re-checks
// it before waiting; the buggy variant checks a racy flag outside the lock
// and then parks — the dispatcher's notify can land in the gap and the
// worker sleeps forever. The explorer must find that deadlock.
// ---------------------------------------------------------------------------

#[test]
fn condvar_recheck_under_lock_prevents_lost_wakeup() {
    let stats = explore(Strategy::Exhaustive { max_executions: 100_000 }, |run| {
        let sleep = Arc::new(VMutex::new(false)); // work flag inside the mutex
        let cv = Arc::new(VCondvar::new());
        {
            let (sleep, cv) = (Arc::clone(&sleep), Arc::clone(&cv));
            run.spawn("worker", move || {
                let mut has_work = sleep.lock();
                while !*has_work {
                    cv.wait(&mut has_work);
                }
            });
        }
        {
            let (sleep, cv) = (Arc::clone(&sleep), Arc::clone(&cv));
            run.spawn("dispatcher", move || {
                // Set-and-notify under the same lock (pool.rs dispatch).
                let mut has_work = sleep.lock();
                *has_work = true;
                cv.notify_one();
            });
        }
    })
    .expect("recheck-under-lock never hangs");
    assert!(stats.complete);
}

#[test]
fn racy_flag_check_outside_lock_is_a_lost_wakeup() {
    let result = explore(Strategy::Exhaustive { max_executions: 100_000 }, |run| {
        let flag = Arc::new(VCell::new(false)); // racy: outside the mutex
        let sleep = Arc::new(VMutex::new(()));
        let cv = Arc::new(VCondvar::new());
        {
            let (flag, sleep, cv) = (Arc::clone(&flag), Arc::clone(&sleep), Arc::clone(&cv));
            run.spawn("worker", move || {
                if !flag.get() {
                    // Gap: the dispatcher can set + notify right here.
                    let mut g = sleep.lock();
                    cv.wait(&mut g);
                }
            });
        }
        {
            let (flag, cv) = (Arc::clone(&flag), Arc::clone(&cv));
            run.spawn("dispatcher", move || {
                flag.set(true);
                cv.notify_one(); // lost if the worker has not parked yet
            });
        }
    });
    let failure = result.expect_err("some schedule must lose the wakeup");
    match &failure.kind {
        FailureKind::Deadlock { blocked } => {
            assert_eq!(blocked, &["worker"], "the worker parks forever: {failure}")
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Model 3: SessionStore spill → cold-reload → revalidation (durable.rs).
// The spiller snapshots a resident session, writes the snapshot outside
// the lock, then must revalidate (stamp + identity, modelling the
// dirty-stamp / Arc::ptr_eq check) before evicting — an updater may have
// replaced the session in the gap. Property: the latest version is never
// lost, whether it lives in memory or on disk.
// ---------------------------------------------------------------------------

struct SpillSt {
    /// `(stamp, version)` of the resident session, `None` when spilled.
    resident: Option<(u64, u32)>,
    /// Version of the on-disk snapshot (0 = none).
    disk: u32,
    exits: u32,
}

fn spill_model(
    revalidate: bool,
) -> Result<sst_check::sched::Stats, Box<sst_check::sched::Failure>> {
    explore(Strategy::Exhaustive { max_executions: 100_000 }, move |run| {
        let st = Arc::new(VMutex::new(SpillSt { resident: Some((1, 1)), disk: 0, exits: 0 }));
        let finish = |st: &Arc<VMutex<SpillSt>>| {
            let mut g = st.lock();
            g.exits += 1;
            if g.exits == 2 {
                let visible = g.resident.map(|(_, v)| v).unwrap_or(g.disk);
                assert_eq!(visible, 2, "update must never be lost to a stale spill");
            }
        };
        {
            let st = Arc::clone(&st);
            run.spawn("spiller", move || {
                let snap = st.lock().resident;
                if let Some((stamp, version)) = snap {
                    yield_now(); // serialize the snapshot outside the lock
                    let mut g = st.lock();
                    if !revalidate || g.resident == Some((stamp, version)) {
                        g.disk = version;
                        g.resident = None; // evict
                    }
                }
                finish(&st);
            });
        }
        {
            let st = Arc::clone(&st);
            run.spawn("updater", move || {
                {
                    let mut g = st.lock();
                    match g.resident {
                        // In-place update bumps the stamp (spiller's
                        // snapshot is now stale).
                        Some((stamp, _)) => g.resident = Some((stamp + 1, 2)),
                        // Already spilled: cold-reload from disk, update.
                        None => {
                            let reloaded = g.disk;
                            g.resident = Some((100, reloaded + 1));
                        }
                    }
                }
                finish(&st);
            });
        }
    })
}

#[test]
fn spill_revalidation_preserves_the_update() {
    let stats = spill_model(true).expect("revalidated spill never loses the update");
    assert!(stats.complete, "exhaustive space must be fully enumerated");
}

#[test]
fn unconditional_evict_after_snapshot_loses_the_update() {
    let failure = spill_model(false).expect_err("stale evict must lose the update somewhere");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. }),
        "loss surfaces as the model assertion: {failure}"
    );
}

// ---------------------------------------------------------------------------
// Model 4: TraceSink bounded ring — producer vs. drainer vs. close
// (telemetry.rs). Capacity-1 ring: a full ring drops (counted), close
// wakes the drainer so buffered events still flush. Property: every
// emitted event is either drained or counted as dropped — and the variant
// where close() forgets to notify deadlocks the drainer, which is exactly
// why the real `TraceSink::close` notifies under the state lock.
// ---------------------------------------------------------------------------

struct RingSt {
    buf: Option<u32>, // capacity-1 ring
    closed: bool,
    dropped: u32,
    out: Vec<u32>,
    exits: u32,
}

fn ring_model(
    strategy: Strategy,
    close_notifies: bool,
) -> Result<sst_check::sched::Stats, Box<sst_check::sched::Failure>> {
    explore(strategy, move |run| {
        let st = Arc::new(VMutex::new(RingSt {
            buf: None,
            closed: false,
            dropped: 0,
            out: Vec::new(),
            exits: 0,
        }));
        let cv = Arc::new(VCondvar::new());
        let finish = |st: &Arc<VMutex<RingSt>>| {
            let mut g = st.lock();
            g.exits += 1;
            if g.exits == 3 {
                assert!(g.buf.is_none(), "drainer flushes the ring before exiting");
                assert_eq!(
                    g.out.len() + g.dropped as usize,
                    2,
                    "every event drained or counted as dropped"
                );
            }
        };
        {
            let (st, cv) = (Arc::clone(&st), Arc::clone(&cv));
            run.spawn("producer", move || {
                for event in [1u32, 2] {
                    let mut g = st.lock();
                    if g.closed || g.buf.is_some() {
                        g.dropped += 1; // full or closed ring drops, counted
                    } else {
                        g.buf = Some(event);
                        cv.notify_one();
                    }
                }
                finish(&st);
            });
        }
        {
            let (st, cv) = (Arc::clone(&st), Arc::clone(&cv));
            run.spawn("drainer", move || {
                {
                    let mut g = st.lock();
                    loop {
                        if let Some(event) = g.buf.take() {
                            g.out.push(event);
                            continue;
                        }
                        if g.closed {
                            break;
                        }
                        cv.wait(&mut g);
                    }
                }
                finish(&st);
            });
        }
        {
            let (st, cv) = (Arc::clone(&st), Arc::clone(&cv));
            run.spawn("closer", move || {
                {
                    let mut g = st.lock();
                    g.closed = true;
                    if close_notifies {
                        cv.notify_all();
                    }
                }
                finish(&st);
            });
        }
    })
}

#[test]
fn trace_ring_accounts_for_every_event() {
    let stats = ring_model(Strategy::Exhaustive { max_executions: 500_000 }, true)
        .expect("drain + drop accounting holds in every schedule");
    assert!(stats.complete, "exhaustive space must be fully enumerated");
}

#[test]
fn trace_ring_random_walks_for_ci() {
    // The bounded, seeded sweep CI runs in addition to the exhaustive
    // pass: deterministic per seed, cheap at any model size.
    ring_model(Strategy::Random { seed: 0x5357, walks: 200 }, true)
        .expect("seeded walks agree with the exhaustive pass");
}

#[test]
fn close_without_notify_hangs_the_drainer() {
    let failure = ring_model(Strategy::Exhaustive { max_executions: 500_000 }, false)
        .expect_err("silent close must strand the drainer in some schedule");
    match &failure.kind {
        FailureKind::Deadlock { blocked } => {
            assert!(blocked.contains(&"drainer".to_string()), "{failure}")
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Model 5: group-commit journal handoff (durable.rs append_grouped /
// committer_loop). Appenders enqueue a record, wake the committer and wait
// until their seq is durable; the committer drains a batch, writes it
// outside the state lock, then publishes durable_seq and notifies. Two
// properties, each pinned by a deliberately broken variant:
//   (1) write-ahead — no appender releases its response before its own
//       record is durable (a single `if`-wait instead of the `while` loop
//       releases on a foreign batch's wakeup);
//   (2) shutdown drains — the committer must commit the in-flight batch
//       before exiting (returning on `shutdown` with records still
//       pending strands every waiter).
// The last appender to enqueue raises `shutdown` *before* waiting, so the
// flag always races the in-flight batch — the exact graceful-shutdown
// scenario the serve path must survive.
// ---------------------------------------------------------------------------

struct CommitSt {
    assigned: u64,
    durable: u64,
    pending: Vec<u64>,
    shutdown: bool,
}

fn group_commit_model(
    strategy: Strategy,
    single_wait: bool,
    drain_on_shutdown: bool,
) -> Result<sst_check::sched::Stats, Box<sst_check::sched::Failure>> {
    explore(strategy, move |run| {
        let st = Arc::new(VMutex::new(CommitSt {
            assigned: 0,
            durable: 0,
            pending: Vec::new(),
            shutdown: false,
        }));
        let work = Arc::new(VCondvar::new()); // appender → committer
        let done = Arc::new(VCondvar::new()); // committer → appenders

        for name in ["appender-a", "appender-b"] {
            let (st, work, done) = (Arc::clone(&st), Arc::clone(&work), Arc::clone(&done));
            run.spawn(name, move || {
                let mut g = st.lock();
                g.assigned += 1;
                let seq = g.assigned;
                g.pending.push(seq);
                if seq == 2 {
                    // Shutdown races the in-flight batch.
                    g.shutdown = true;
                }
                work.notify_all();
                if single_wait {
                    // Broken: a wakeup for someone else's batch releases us.
                    if g.durable < seq {
                        done.wait(&mut g);
                    }
                } else {
                    while g.durable < seq {
                        done.wait(&mut g);
                    }
                }
                // The write-ahead contract, checked at response release.
                assert!(g.durable >= seq, "response released before its record is durable");
            });
        }
        {
            let (st, work, done) = (Arc::clone(&st), Arc::clone(&work), Arc::clone(&done));
            run.spawn("committer", move || loop {
                let batch = {
                    let mut g = st.lock();
                    loop {
                        if !drain_on_shutdown && g.shutdown {
                            // Broken: exit on shutdown with records pending.
                            return;
                        }
                        if !g.pending.is_empty() {
                            break;
                        }
                        if g.shutdown {
                            assert_eq!(g.durable, g.assigned, "shutdown drained every record");
                            return;
                        }
                        work.wait(&mut g);
                    }
                    // Batch cap 1: each record commits alone, so one
                    // appender's wakeup can precede the other's commit.
                    vec![g.pending.remove(0)]
                };
                yield_now(); // the coalesced write + fsync, outside the lock
                let mut g = st.lock();
                g.durable = *batch.last().unwrap();
                done.notify_all();
            });
        }
    })
}

#[test]
fn group_commit_releases_only_durable_responses() {
    let stats = group_commit_model(Strategy::Exhaustive { max_executions: 500_000 }, false, true)
        .expect("write-ahead + drain-on-shutdown hold in every schedule");
    assert!(stats.complete, "exhaustive space must be fully enumerated");
}

#[test]
fn group_commit_random_walks_for_ci() {
    group_commit_model(Strategy::Random { seed: 0x5357, walks: 200 }, false, true)
        .expect("seeded walks agree with the exhaustive pass");
}

#[test]
fn single_wait_release_breaks_the_durable_contract() {
    let failure = group_commit_model(Strategy::Exhaustive { max_executions: 500_000 }, true, true)
        .expect_err("some schedule wakes an appender on a foreign batch");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. } | FailureKind::Deadlock { .. }),
        "early release trips the release-time assert (or strands a waiter): {failure}"
    );
}

#[test]
fn committer_exit_without_drain_strands_appenders() {
    let failure =
        group_commit_model(Strategy::Exhaustive { max_executions: 500_000 }, false, false)
            .expect_err("exiting with a non-empty batch must deadlock some schedule");
    match &failure.kind {
        FailureKind::Deadlock { blocked } => assert!(
            blocked.iter().any(|t| t.starts_with("appender")),
            "an appender waits forever on its lost record: {failure}"
        ),
        other => panic!("expected a deadlock, got {other:?}"),
    }
}
