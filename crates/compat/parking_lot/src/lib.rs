//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`) and a [`Condvar`] that waits on a `&mut MutexGuard`, both
//! implemented over `std::sync`.
//!
//! Because every lock in the workspace funnels through this crate, it doubles
//! as the instrumentation point for the lock-order deadlock detector in
//! `sst_check`. Under `--features lockdep` each acquisition records the
//! acquiring thread's currently-held lock set into a global lock-order graph
//! (see [`lockdep`]); with the feature off the hooks compile to nothing and
//! the types are exactly as cheap as before.
//!
//! Locks can be given stable names with [`Mutex::named`]; anonymous locks are
//! labelled by their construction site (`#[track_caller]`).

pub mod lockdep;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::time::Duration;

/// A mutex with `parking_lot`'s panic-transparent `lock()` signature.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    meta: lockdep::LockMeta,
}

impl<T> Mutex<T> {
    /// Creates an anonymous mutex holding `value`, labelled by the
    /// construction site.
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            meta: lockdep::LockMeta::site(Location::caller()),
        }
    }

    /// Creates a mutex with a stable human-readable name, used by lockdep
    /// reports instead of the construction site.
    #[track_caller]
    pub fn named(name: &'static str, value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            meta: lockdep::LockMeta::named(name, Location::caller()),
        }
    }

    /// Creates a named mutex registered in an explicit lockdep registry
    /// instead of the global one. Used by tests that plant lock-order
    /// violations without polluting the shared graph.
    pub fn named_in(registry: &'static lockdep::Registry, name: &'static str, value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            meta: lockdep::LockMeta::named_in(registry, name),
        }
    }

    /// Creates a mutex invisible to lockdep. For instrumentation-layer
    /// internals (e.g. the interleaving harness's own scheduler lock) that
    /// must not appear in the program's lock-order graph.
    pub fn untracked(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value), meta: lockdep::LockMeta::untracked() }
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        let inner = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        lockdep::on_acquire(&self.meta, site);
        MutexGuard { inner: Some(inner), lock: self }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`]. Releases the lock (and pops the
/// lockdep held-set entry) on drop.
///
/// The inner `Option` is `Some` except transiently inside
/// [`Condvar::wait`], which takes the std guard out while parked.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("mutex guard accessed while parked")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("mutex guard accessed while parked")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            lockdep::on_release(&self.lock.meta);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable that waits on a `&mut MutexGuard`, `parking_lot`
/// style: no poison `Result`, no guard hand-back.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guarded lock and parks until notified. The
    /// lock is re-acquired (and re-registered with lockdep at this call
    /// site) before returning. Spurious wakeups are possible, as with
    /// `std`; callers loop on their predicate.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        let std_guard = guard.inner.take().expect("mutex guard accessed while parked");
        lockdep::on_release(&guard.lock.meta);
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|poisoned| poisoned.into_inner());
        lockdep::on_acquire(&guard.lock.meta, site);
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`] with a timeout. Returns `true` if the wait
    /// timed out.
    #[track_caller]
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        let site = Location::caller();
        let std_guard = guard.inner.take().expect("mutex guard accessed while parked");
        lockdep::on_release(&guard.lock.meta);
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, dur)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        lockdep::on_acquire(&guard.lock.meta, site);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn named_lock_behaves_identically() {
        let m = Mutex::named("test.named", vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::named("test.cv", false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().expect("setter thread");
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        assert!(cv.wait_timeout(&mut guard, Duration::from_millis(10)));
    }
}
