//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`), implemented over `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutex with `parking_lot`'s panic-transparent `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
