//! Lock-order recording hooks for the lockdep deadlock detector.
//!
//! With `--features lockdep`, every tracked [`crate::Mutex`] acquisition
//! records one edge `held → acquired` per lock the acquiring thread already
//! holds, into a per-registry lock-order graph. An edge remembers the first
//! pair of acquisition sites that produced it, so a later cycle report can
//! point at both halves of an ABBA inversion. Cycle *analysis* lives in
//! `sst_check::lockdep`; this module only records.
//!
//! With the feature off every hook is an empty inline function, `LockMeta`
//! is a zero-sized field, and `snapshot()` returns an empty graph — callers
//! never need `cfg` guards.
//!
//! Locks registered via [`crate::Mutex::named_in`] record into an explicit
//! [`Registry`] (obtained from [`Registry::leak`]) instead of the global
//! one; edges are only formed between locks of the same registry, so
//! planted-inversion tests cannot poison the shared graph.

/// A node in a lock-order graph snapshot: one live `Mutex` instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockNode {
    /// Process-unique id of the lock instance.
    pub id: u64,
    /// Stable name (from `Mutex::named`) or `mutex@file:line` construction
    /// site for anonymous locks.
    pub label: String,
}

/// One recorded ordering fact: some thread acquired `to` while holding
/// `from`. Sites are `file:line:col` of the two acquisitions (first time
/// the edge was seen).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSnapshot {
    /// The lock that was already held.
    pub from: LockNode,
    /// The lock that was acquired while `from` was held.
    pub to: LockNode,
    /// Where `from` was acquired by the thread that created this edge.
    pub from_site: String,
    /// Where `to` was acquired while `from` was held.
    pub to_site: String,
}

#[cfg(feature = "lockdep")]
mod imp {
    use super::EdgeSnapshot;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Process-unique lock ids. Relaxed: the id only needs uniqueness, the
    /// registry's own mutex orders everything else.
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Per-lock instrumentation state stored inside `crate::Mutex`.
    pub struct LockMeta {
        id: u64,
        registry: &'static Registry,
        name: Option<&'static str>,
        site: Option<&'static Location<'static>>,
    }

    impl LockMeta {
        pub fn site(site: &'static Location<'static>) -> Self {
            LockMeta { id: next_id(), registry: default_registry(), name: None, site: Some(site) }
        }

        pub fn named(name: &'static str, site: &'static Location<'static>) -> Self {
            LockMeta {
                id: next_id(),
                registry: default_registry(),
                name: Some(name),
                site: Some(site),
            }
        }

        pub fn named_in(registry: &'static Registry, name: &'static str) -> Self {
            LockMeta { id: next_id(), registry, name: Some(name), site: None }
        }

        pub fn untracked() -> Self {
            // id 0 marks the lock as invisible to the recorder.
            LockMeta { id: 0, registry: default_registry(), name: None, site: None }
        }

        fn label(&self) -> String {
            match (self.name, self.site) {
                (Some(name), _) => name.to_string(),
                (None, Some(site)) => format!("mutex@{}:{}", site.file(), site.line()),
                (None, None) => format!("mutex#{}", self.id),
            }
        }
    }

    #[derive(Default)]
    struct State {
        /// id → label for every lock seen by this registry.
        locks: BTreeMap<u64, String>,
        /// (held, acquired) → first-seen acquisition sites.
        edges: BTreeMap<(u64, u64), (String, String)>,
    }

    /// A lock-order graph accumulator. One global default instance; tests
    /// that plant inversions get isolated instances via [`Registry::leak`].
    pub struct Registry {
        state: StdMutex<State>,
    }

    impl Registry {
        const fn new() -> Self {
            Registry {
                state: StdMutex::new(State { locks: BTreeMap::new(), edges: BTreeMap::new() }),
            }
        }

        /// Allocates a fresh registry with `'static` lifetime (leaked; meant
        /// for a handful of test-local graphs, not per-request use).
        pub fn leak() -> &'static Registry {
            Box::leak(Box::new(Registry::new()))
        }

        /// Returns every recorded ordering edge.
        pub fn snapshot(&self) -> Vec<EdgeSnapshot> {
            let st = self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            st.edges
                .iter()
                .map(|(&(from, to), (from_site, to_site))| EdgeSnapshot {
                    from: super::LockNode { id: from, label: st.locks[&from].clone() },
                    to: super::LockNode { id: to, label: st.locks[&to].clone() },
                    from_site: from_site.clone(),
                    to_site: to_site.clone(),
                })
                .collect()
        }

        /// Clears all recorded locks and edges.
        pub fn reset(&self) {
            let mut st = self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            *st = State::default();
        }
    }

    static DEFAULT: Registry = Registry::new();

    /// The global registry that `Mutex::new`/`Mutex::named` record into.
    pub fn default_registry() -> &'static Registry {
        &DEFAULT
    }

    /// One lock currently held by this thread.
    struct Held {
        registry: *const Registry,
        id: u64,
        site: String,
    }

    thread_local! {
        /// Stack of locks held by the current thread, in acquisition order.
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    pub fn on_acquire(meta: &LockMeta, site: &'static Location<'static>) {
        if meta.id == 0 {
            return;
        }
        let site_str = format!("{}:{}:{}", site.file(), site.line(), site.column());
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            {
                let mut st =
                    meta.registry.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                st.locks.entry(meta.id).or_insert_with(|| meta.label());
                for h in held.iter() {
                    if std::ptr::eq(h.registry, meta.registry) && h.id != meta.id {
                        st.edges
                            .entry((h.id, meta.id))
                            .or_insert_with(|| (h.site.clone(), site_str.clone()));
                    }
                }
            }
            held.push(Held { registry: meta.registry, id: meta.id, site: site_str });
        });
    }

    pub fn on_release(meta: &LockMeta) {
        if meta.id == 0 {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|h| h.id == meta.id && std::ptr::eq(h.registry, meta.registry))
            {
                held.remove(pos);
            }
        });
    }
}

#[cfg(not(feature = "lockdep"))]
mod imp {
    use super::EdgeSnapshot;
    use std::panic::Location;

    /// Zero-sized stand-in: with the feature off, locks carry no metadata.
    pub struct LockMeta;

    impl LockMeta {
        #[inline(always)]
        pub fn site(_site: &'static Location<'static>) -> Self {
            LockMeta
        }

        #[inline(always)]
        pub fn named(_name: &'static str, _site: &'static Location<'static>) -> Self {
            LockMeta
        }

        #[inline(always)]
        pub fn named_in(_registry: &'static Registry, _name: &'static str) -> Self {
            LockMeta
        }

        #[inline(always)]
        pub fn untracked() -> Self {
            LockMeta
        }
    }

    /// Zero-sized registry stand-in; records nothing.
    pub struct Registry;

    static DEFAULT: Registry = Registry;

    impl Registry {
        pub fn leak() -> &'static Registry {
            &DEFAULT
        }

        pub fn snapshot(&self) -> Vec<EdgeSnapshot> {
            Vec::new()
        }

        pub fn reset(&self) {}
    }

    pub fn default_registry() -> &'static Registry {
        &DEFAULT
    }

    #[inline(always)]
    pub fn on_acquire(_meta: &LockMeta, _site: &'static Location<'static>) {}

    #[inline(always)]
    pub fn on_release(_meta: &LockMeta) {}
}

pub use imp::{default_registry, on_acquire, on_release, LockMeta, Registry};

/// Snapshot of the global registry's lock-order graph. Empty when the
/// `lockdep` feature is off.
pub fn snapshot() -> Vec<EdgeSnapshot> {
    default_registry().snapshot()
}

/// Clears the global registry. Intended for test setup; concurrent tests
/// sharing the process will repopulate it as they run.
pub fn reset() {
    default_registry().reset();
}

#[cfg(all(test, feature = "lockdep"))]
mod tests {
    use crate::lockdep::Registry;
    use crate::Mutex;

    #[test]
    fn nested_acquisition_records_edge() {
        let reg = Registry::leak();
        let outer = Mutex::named_in(reg, "outer", ());
        let inner = Mutex::named_in(reg, "inner", ());
        {
            let _o = outer.lock();
            let _i = inner.lock();
        }
        let edges = reg.snapshot();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from.label, "outer");
        assert_eq!(edges[0].to.label, "inner");
        assert!(edges[0].to_site.contains("lockdep.rs"), "site: {}", edges[0].to_site);
    }

    #[test]
    fn sequential_acquisition_records_nothing() {
        let reg = Registry::leak();
        let a = Mutex::named_in(reg, "a", ());
        let b = Mutex::named_in(reg, "b", ());
        drop(a.lock());
        drop(b.lock());
        assert!(reg.snapshot().is_empty());
    }
}
