//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact surface the workspace needs — `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `rngs::{SmallRng, StdRng}` and
//! `seq::SliceRandom::shuffle` — backed by a SplitMix64-seeded
//! xoshiro256** generator. Streams are deterministic for a given seed (the
//! workspace's own determinism guarantee), but are **not** identical to the
//! streams of the real `rand` crate.

/// Seeding from a `u64`, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator state: xoshiro256** with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 to fill the state, per the xoshiro authors' guidance.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }

    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! named_rng {
    ($name:ident) => {
        /// A seedable pseudo-random generator (xoshiro256**).
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::from_u64(seed))
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64_impl()
            }
        }
    };
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    named_rng!(SmallRng);
    named_rng!(StdRng);
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Generic over the output type
/// (like `rand`'s `SampleRange<T>`), with blanket impls over
/// [`SampleUniform`] so untyped integer literals unify with the calling
/// context the way they do with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the (non-empty) range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable from ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `u128` (sign-extending) for span arithmetic.
    fn widen(self) -> u128;
    /// Adds an unsigned offset with wrapping semantics.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn widen(self) -> u128 {
                self as u128
            }
            #[inline]
            fn offset(self, delta: u64) -> $t {
                self.wrapping_add(delta as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.widen().wrapping_sub(self.start.widen()) as u64;
        self.start.offset(uniform_u64(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.widen().wrapping_sub(lo.widen()) as u64;
        if span == u64::MAX {
            return lo.offset(rng.next_u64());
        }
        lo.offset(uniform_u64(rng, span + 1))
    }
}

/// Uniform draw from `0..span` (`span > 0`) by rejection sampling, bias-free.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Zone rejection: accept v < zone, where zone is the largest multiple
    // of span that fits in u64.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
