//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! real (wall-clock) benchmark harness with criterion's API shape:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], `criterion_group!` / `criterion_main!` and
//! [`black_box`]. No statistics beyond min/mean are computed and nothing is
//! written to `target/criterion`; each benchmark prints one line:
//!
//! ```text
//! group/name  time: [mean 12.345 µs, min 12.001 µs]  (24 samples × 41 iters)
//! ```

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under test; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    samples: usize,
    /// (mean, min) nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, usize)>,
}

impl Bencher {
    /// Measures `f`: warms up, picks an iteration count targeting a few
    /// milliseconds per sample, then records `self.samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: find iters such that one sample ≥ ~2 ms.
        let mut iters = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            total += ns;
            min = min.min(ns);
        }
        self.result = Some((total / self.samples as f64, min, iters));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Sets a (soft) target measurement time. Accepted for API
    /// compatibility; the harness keys off sample count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.criterion.sample_size, result: None };
        f(&mut b);
        match b.result {
            Some((mean, min, iters)) => println!(
                "{}/{}  time: [mean {}, min {}]  ({} samples × {} iters)",
                self.name,
                id,
                fmt_ns(mean),
                fmt_ns(min),
                self.criterion.sample_size,
                iters
            ),
            None => println!("{}/{}  (no measurement: Bencher::iter never called)", self.name, id),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into().id;
        self.run_one(id, f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(id.id, |b| f(b, input));
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut g = BenchmarkGroup { name: "bench".to_string(), criterion: self };
        g.run_one(id.to_string(), f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
