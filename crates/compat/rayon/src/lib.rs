//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the `par_iter().map(..).collect()` / `into_par_iter().map(..).collect()`
//! shape on top of `std::thread::scope`: the input is split into one
//! contiguous chunk per available core, each chunk is mapped on its own
//! thread, and results are reassembled in input order. No work stealing —
//! good enough for the embarrassingly parallel seed sweeps in `sst-bench`.

use std::num::NonZeroUsize;

fn num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// An eager "parallel iterator": the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Result of [`ParIter::map`]; consumed by [`ParMap::collect`] / [`ParMap::sum`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    fn run(self) -> Vec<U> {
        let ParMap { items, f } = self;
        let n = items.len();
        let threads = num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        // Consume the Vec into per-thread chunks, keeping index order.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        {
            let mut it = items.into_iter();
            loop {
                let piece: Vec<T> = it.by_ref().take(chunk).collect();
                if piece.is_empty() {
                    break;
                }
                chunks.push(piece);
            }
        }
        let f = &f;
        let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|piece| scope.spawn(move || piece.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("parallel map worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Collects the mapped values, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Collections buildable from an ordered `Vec` of mapped results.
pub trait FromParallel<U> {
    /// Builds the collection from already-ordered items.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Vec<U> {
        v
    }
}

impl<U, E, C: FromParallel<U>> FromParallel<Result<U, E>> for Result<C, E> {
    fn from_ordered_vec(v: Vec<Result<U, E>>) -> Result<C, E> {
        let mut ok = Vec::with_capacity(v.len());
        for item in v {
            ok.push(item?);
        }
        Ok(C::from_ordered_vec(ok))
    }
}

/// `into_par_iter()`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send + Copy> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` on borrowed slices/vecs.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! Mirrors `rayon::prelude`.
    pub use crate::{FromParallel, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let squares: Vec<u64> = v.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[999], 999 * 999);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
