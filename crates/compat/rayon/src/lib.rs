//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the `par_iter().map(..).collect()` / `into_par_iter().map(..).collect()`
//! shape on top of `std::thread::scope` with a **shared-cursor stealing
//! loop**: a mutex-guarded consuming iterator hands out the next unclaimed
//! `(index, item)`, and each worker thread loops claim-map-collect until
//! the cursor runs dry. Work assignment is therefore fully dynamic — a
//! thread that drew a cheap item immediately "steals" the next index
//! instead of idling, so skewed per-item cost (one huge instance amid
//! small ones) no longer leaves threads parked the way the earlier fixed
//! chunk-per-thread split did. Results are scattered by index after the
//! join, so input order is preserved exactly.

use std::num::NonZeroUsize;

use parking_lot::Mutex;

fn num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// An eager "parallel iterator": the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Result of [`ParIter::map`]; consumed by [`ParMap::collect`] / [`ParMap::sum`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    fn run(self) -> Vec<U> {
        let ParMap { items, f } = self;
        let threads = num_threads();
        run_with_threads(items, &f, threads)
    }

    /// Collects the mapped values, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// The shared-cursor stealing loop behind every parallel map. Exposed (doc
/// hidden) so property tests can pin `threads` instead of inheriting the
/// machine's core count.
#[doc(hidden)]
pub fn run_with_threads<T, U, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // The cursor is a mutex-guarded consuming iterator: a worker locks it
    // just long enough to claim the next `(index, item)`, maps the item
    // lock-free, and collects `(index, value)` into its own output vector.
    // The results are scattered into place after the scope joins.
    let cursor = Mutex::new(items.into_iter().enumerate());
    let mut results: Vec<Option<U>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, U)> = Vec::new();
                    loop {
                        let claimed = cursor.lock().next();
                        match claimed {
                            Some((i, item)) => out.push((i, f(item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("parallel map worker panicked") {
                results[i] = Some(value);
            }
        }
    });
    results.into_iter().map(|v| v.expect("every index mapped")).collect()
}

/// Collections buildable from an ordered `Vec` of mapped results.
pub trait FromParallel<U> {
    /// Builds the collection from already-ordered items.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Vec<U> {
        v
    }
}

impl<U, E, C: FromParallel<U>> FromParallel<Result<U, E>> for Result<C, E> {
    fn from_ordered_vec(v: Vec<Result<U, E>>) -> Result<C, E> {
        let mut ok = Vec::with_capacity(v.len());
        for item in v {
            ok.push(item?);
        }
        Ok(C::from_ordered_vec(ok))
    }
}

/// `into_par_iter()`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send + Copy> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` on borrowed slices/vecs.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! Mirrors `rayon::prelude`.
    pub use crate::{FromParallel, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let squares: Vec<u64> = v.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[999], 999 * 999);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn skewed_item_costs_keep_all_threads_fed() {
        // n = threads + 1 was the worst case of the old fixed chunking (one
        // thread got two items, another one); the stealing cursor hands the
        // n-th item to whichever thread frees up first. Correctness is what
        // we can assert portably: order preserved, every item mapped once.
        for n in [2usize, 3, 5, 9, 17] {
            let items: Vec<usize> = (0..n).collect();
            let out = crate::run_with_threads(items, &|x: usize| x * x, n - 1);
            assert_eq!(out, (0..n).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(128))]

        // The stealing loop must be indistinguishable from a serial map —
        // same values, same order — for arbitrary item counts and thread
        // counts (including threads > n, threads = 1, n = 0).
        #[test]
        fn matches_serial_map_in_order(
            items in proptest::collection::vec(0u64..10_000, 0..80),
            threads in 1usize..16,
        ) {
            let serial: Vec<u64> = items.iter().map(|&x| x * 31 + 7).collect();
            let parallel = crate::run_with_threads(items, &|x: u64| x * 31 + 7, threads);
            proptest::prop_assert_eq!(parallel, serial);
        }
    }
}
