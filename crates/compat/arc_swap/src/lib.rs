//! Offline stand-in for the subset of the `arc-swap` crate this workspace
//! uses: an [`ArcSwap<T>`] cell that publishes an `Arc<T>` snapshot which
//! readers can [`load`](ArcSwap::load) without taking any lock.
//!
//! The real crate uses hazard-pointer-style debt slots; this stand-in uses
//! the simplest scheme that is wait-free for readers and safe without any
//! per-thread state: a single *reader-window* counter. A reader announces
//! itself (`readers += 1`), reads the published pointer, bumps the Arc's
//! strong count so it owns the value outright, and leaves the window
//! (`readers -= 1`). A writer swaps the published pointer and may only
//! free a swapped-out value after observing `readers == 0` *after* its
//! swap — any window still open at that point may have read the old
//! pointer, so the value is parked on a retired list and freed by a later
//! store (or by `Drop`) once a zero window is observed.
//!
//! Writers therefore contend only with each other (on the retired-list
//! mutex), never with readers; readers never write anything but the two
//! counter bumps. That is exactly the shape the session store needs:
//! metrics probes and entry lookups on the hot path stay lock-free while
//! membership changes (create / close / spill) go through the shard lock.
//!
//! The counter protocol is the classic store-buffer (Dekker) pattern —
//! reader: `readers += 1` then read `ptr`; writer: swap `ptr` then read
//! `readers` — which is only sound under `SeqCst`: with acquire/release
//! alone both sides may read the stale value and a writer could free a
//! pointer a reader is about to bump.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cell holding an `Arc<T>` that can be read lock-free and replaced
/// atomically. See the crate docs for the protocol.
pub struct ArcSwap<T> {
    /// Current published value, as a raw pointer owning one strong count.
    ptr: AtomicPtr<T>,
    /// Number of reader windows currently open across all threads.
    readers: AtomicUsize,
    /// Swapped-out values that could not be freed at swap time because a
    /// reader window was open. Drained by later stores and by `Drop`.
    /// A std mutex is fine here (compat crates are below the lockdep
    /// layer, like parking_lot itself): it is only touched by writers.
    retired: std::sync::Mutex<Vec<*mut T>>,
}

// SAFETY: ArcSwap owns its values exactly like Arc<T> does — the raw
// pointers in `ptr`/`retired` each carry one strong count — so it is
// Send/Sync precisely when Arc<T> is.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: see the Send impl above.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            retired: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Returns the currently published value. Wait-free: two counter bumps
    /// and one strong-count increment, no lock.
    pub fn load(&self) -> Arc<T> {
        // ordering: SeqCst — store-buffer pattern with `store`: the window
        // open (fetch_add) must be globally ordered before the pointer
        // read so that a writer which swapped first cannot also observe
        // readers == 0; acquire/release alone permits exactly that.
        self.readers.fetch_add(1, Ordering::SeqCst);
        // ordering: SeqCst — must order after the window open (see above).
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` came from Arc::into_raw and is still alive: a writer
        // frees a swapped-out pointer only after observing readers == 0
        // after its swap. Our window opened before the pointer read, so
        // either we read the new pointer (still published) or the writer
        // sees our open window and retires the old value instead of
        // freeing it.
        unsafe { Arc::increment_strong_count(p) };
        // ordering: SeqCst — the strong-count bump must be visible to any
        // writer that observes this window close before freeing.
        self.readers.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: we own the strong count added above.
        unsafe { Arc::from_raw(p) }
    }

    /// Publishes `value`, retiring the previous one. The old value is
    /// freed immediately when no reader window is open, otherwise parked
    /// and freed by a later `store` or by `Drop`.
    pub fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value).cast_mut();
        // ordering: SeqCst — store-buffer pattern with `load`: the swap
        // must be globally ordered before the readers check below, so a
        // reader that got the old pointer is guaranteed visible in it.
        let old = self.ptr.swap(new, Ordering::SeqCst);
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        retired.push(old);
        // ordering: SeqCst — a zero read here happens-after every reader
        // window that could have seen any pointer on the retired list
        // (all were swapped out before this check), and the SeqCst
        // fetch_sub closing each window makes that window's strong-count
        // bump visible before we drop our count.
        if self.readers.load(Ordering::SeqCst) == 0 {
            for p in retired.drain(..) {
                // SAFETY: `p` is unreachable (swapped out of `ptr`) and no
                // reader window overlapping its publication remains open;
                // every handed-out Arc owns its own strong count, so
                // releasing ours cannot free a value still in use.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // &mut self: no reader window can be open, every pointer is ours.
        let current = *self.ptr.get_mut();
        // SAFETY: `current` owns the published strong count.
        unsafe { drop(Arc::from_raw(current)) };
        let retired = self.retired.get_mut().unwrap_or_else(|e| e.into_inner());
        for p in retired.drain(..) {
            // SAFETY: retired pointers each own one strong count.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Weak;

    #[test]
    fn load_returns_the_published_value_and_store_replaces_it() {
        let cell = ArcSwap::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // A previously loaded Arc stays valid across stores.
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn replaced_values_are_freed_not_leaked() {
        let first = Arc::new(String::from("first"));
        let weak_first: Weak<String> = Arc::downgrade(&first);
        let cell = ArcSwap::new(first);
        cell.store(Arc::new(String::from("second")));
        // No reader window was open during the store: freed immediately.
        assert!(weak_first.upgrade().is_none(), "replaced value must be dropped");

        let second_weak = Weak::clone(&{
            let live = cell.load();
            let w = Arc::downgrade(&live);
            drop(live);
            w
        });
        drop(cell);
        assert!(second_weak.upgrade().is_none(), "Drop must free the current value");
    }

    #[test]
    fn concurrent_loads_and_stores_always_see_a_published_value() {
        let cell = Arc::new(ArcSwap::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let (cell, stop) = (Arc::clone(&cell), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        // The writer publishes monotonically increasing
                        // values; a reader must never observe a rollback.
                        assert!(v >= last, "saw {v} after {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=2000u64 {
            cell.store(Arc::new(v));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread");
        }
        assert_eq!(*cell.load(), 2000);
    }
}
