//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! exactly what the workspace's property tests need: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`strategy::Just`], the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! / [`prop_oneof!`] macros and a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest: generation is purely random (fixed seed
//! per test, so runs are reproducible) and failing inputs are **not
//! shrunk** — the failing case is reported as-is.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `f` (retries, then panics).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// `any::<T>()`-style full-domain strategy for a handful of primitives.
    pub struct Any<T>(PhantomData<T>);

    /// Mirrors `proptest::prelude::any`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    /// Primitives supported by [`any`].
    pub trait ArbitraryValue {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod num {
    //! Numeric full-domain strategies, mirroring `proptest::num`.

    macro_rules! num_mod {
        ($($m:ident => $t:ty),*) => {$(
            pub mod $m {
                //! Full-domain strategy for the primitive of the same name.

                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Uniformly random values over the full domain.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Mirrors `proptest::num::<int>::ANY`.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    num_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize);
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Mirrors `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths acceptable to [`vec`]: a fixed size or a (inclusive) range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner and its configuration.

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assumption failed; the case is discarded, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure, like `proptest`'s `TestCaseError::fail`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Constructs a rejection, like `proptest`'s `TestCaseError::reject`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`cases` = number of passing cases required).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator driving value generation. Deterministic: every
    /// test starts from the same seed, so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for case number `case` of a test.
        pub fn for_case(case: u64) -> Self {
            TestRng { state: 0x5DEE_CE66_D1CE_4E5B ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64 bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..span` (`span > 0`).
        #[inline]
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs closures over many generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` until `config.cases` cases pass. Rejected cases
        /// (failed `prop_assume!`) are retried with fresh inputs, up to a
        /// global cap. Panics on the first failing case.
        pub fn run<F: FnMut(&mut TestRng) -> TestCaseResult>(&mut self, mut case: F) {
            let max_rejects = (self.config.cases as u64) * 64 + 1024;
            let mut rejects = 0u64;
            let mut case_no = 0u64;
            let mut passed = 0u32;
            while passed < self.config.cases {
                let mut rng = TestRng::for_case(case_no);
                case_no += 1;
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(why)) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "proptest: too many rejected cases ({rejects}); \
                                 last reason: {why}"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case #{case} failed: {msg}\n\
                             (deterministic runner: rerun reproduces this case)",
                            case = case_no - 1
                        );
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::...` paths used by some proptest idioms.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current case if `cond` is false (with an optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (retried with fresh inputs) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn adds_commute(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn` inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_and_ranges((a, b) in (0u64..100, 1u64..50), c in 0usize..=3) {
            prop_assert!(a < 100);
            prop_assert!((1..50).contains(&b));
            prop_assert!(c <= 3);
        }

        #[test]
        fn vec_lengths(v in vec(0u32..10, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_and_assume(x in (0u64..100).prop_map(|x| x * 2)) {
            prop_assume!(x != 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(|rng| {
            let x = crate::strategy::Strategy::generate(&(0u64..10), rng);
            prop_assert!(x < 5, "x was {}", x);
            Ok(())
        });
    }
}
