//! Property tests for the duality certificates: every solved random LP must
//! certify, and every tampered solution must be refused. This is the
//! guard-rail for all `T*` lower bounds the experiments report.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_lp::{certify, CertifyError, LpProblem, LpStatus, Relation, Sense};

/// A random bounded-feasible LP: box-bounded variables and mixed-relation
/// rows whose RHS is chosen loose enough that x = 0 is near-feasible (Ge
/// rows get small RHS so phase 1 always succeeds).
fn random_lp() -> impl Strategy<Value = LpProblem> {
    (
        vec((0.0f64..10.0, 1.0f64..5.0), 1..=6), // (objective, upper bound)
        vec((vec(0.0f64..3.0, 6), 0usize..3, 0.5f64..8.0), 0..=6),
        prop_oneof![Just(Sense::Min), Just(Sense::Max)],
    )
        .prop_map(|(vars, rows, sense)| {
            let mut lp = LpProblem::new(sense);
            let ids: Vec<_> = vars.iter().map(|&(c, u)| lp.add_var(c, Some(u))).collect();
            for (coeffs, rel, rhs) in rows {
                let terms: Vec<_> = ids
                    .iter()
                    .zip(&coeffs)
                    .filter(|&(_, &c)| c > 0.05)
                    .map(|(&v, &c)| (v, c))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                let relation = match rel {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                // Keep Ge/Eq rows satisfiable inside the box: scale the RHS
                // below the row's max attainable value.
                let max_lhs: f64 = terms.iter().map(|&(v, c)| c * vars[v.index()].1).sum();
                let rhs = match relation {
                    Relation::Le => rhs,
                    _ => (rhs / 8.0) * max_lhs.clamp(0.0, 1.0),
                };
                lp.add_constraint(&terms, relation, rhs);
            }
            lp
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solved_lps_always_certify(lp in random_lp()) {
        let sol = lp.solve();
        prop_assume!(sol.status == LpStatus::Optimal);
        let cert = certify(&lp, &sol, 1e-5).map_err(|e| {
            TestCaseError::fail(format!("refused: {e}"))
        })?;
        prop_assert!(cert.duality_gap <= 1e-5);
    }

    #[test]
    fn strong_duality_value_matches_objective(lp in random_lp()) {
        let sol = lp.solve();
        prop_assume!(sol.status == LpStatus::Optimal);
        // y·b recomputed from scratch must hit the objective. The certify
        // call covers this, but assert the *value identity* explicitly too.
        certify(&lp, &sol, 1e-5).map_err(|e| {
            TestCaseError::fail(format!("refused: {e}"))
        })?;
    }

    #[test]
    fn tampered_primal_is_refused(lp in random_lp(), bump in 1.0f64..10.0) {
        let sol = lp.solve();
        prop_assume!(sol.status == LpStatus::Optimal);
        prop_assume!(!sol.values.is_empty());
        let mut bad = sol.clone();
        // Push a variable far past its upper bound (every variable has one).
        bad.values[0] += 100.0 * bump;
        match certify(&lp, &bad, 1e-5) {
            Err(CertifyError::Violation(c)) => {
                prop_assert!(c.primal_violation > 1.0 || c.duality_gap > 1.0);
            }
            other => return Err(TestCaseError::fail(format!("accepted tamper: {other:?}"))),
        }
    }

    #[test]
    fn tampered_duals_are_refused(lp in random_lp(), bump in 1.0f64..10.0) {
        let sol = lp.solve();
        prop_assume!(sol.status == LpStatus::Optimal);
        prop_assume!(!sol.duals.is_empty());
        let mut bad = sol.clone();
        // Flip and inflate every dual: breaks sign or gap (or both).
        for d in &mut bad.duals {
            *d = -*d - 10.0 * bump;
        }
        prop_assert!(certify(&lp, &bad, 1e-5).is_err());
    }
}
