//! Property tests for the simplex solver: solutions of randomly generated
//! feasible programs are feasible and no worse than the known witness.

use proptest::collection::vec;
use proptest::prelude::*;
use sst_lp::{LpProblem, LpStatus, Relation, Sense};

const TOL: f64 = 1e-5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Construct max-problems that are feasible by design: pick a witness
    /// point x₀ ∈ [0,3]^d, random non-negative constraint rows a, and set
    /// each rhs to a·x₀ + slack. The solver must report Optimal, return a
    /// feasible point, and achieve objective ≥ c·x₀.
    #[test]
    fn solves_random_feasible_max_programs(
        dim in 2usize..6,
        rows in 1usize..6,
        obj_raw in vec(0u32..10, 6),
        a_raw in vec(vec(0u32..5, 6), 6),
        x0_raw in vec(0u32..4, 6),
        slack_raw in vec(0u32..5, 6),
    ) {
        let obj: Vec<f64> = obj_raw.iter().take(dim).map(|&v| v as f64).collect();
        let x0: Vec<f64> = x0_raw.iter().take(dim).map(|&v| v as f64).collect();
        let mut lp = LpProblem::new(Sense::Max);
        let vars: Vec<_> = obj.iter().map(|&c| lp.add_var(c, Some(5.0))).collect();
        prop_assume!(x0.iter().all(|&v| v <= 5.0));
        let mut a_rows: Vec<Vec<f64>> = Vec::new();
        for r in 0..rows.min(a_raw.len()) {
            let row: Vec<f64> = a_raw[r].iter().take(dim).map(|&v| v as f64).collect();
            let rhs: f64 = row.iter().zip(&x0).map(|(a, x)| a * x).sum::<f64>()
                + slack_raw[r % slack_raw.len()] as f64;
            let coeffs: Vec<_> = vars.iter().zip(&row).map(|(&v, &c)| (v, c)).collect();
            lp.add_constraint(&coeffs, Relation::Le, rhs);
            a_rows.push(row);
        }
        let sol = lp.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // Feasibility of the returned point.
        for (r, row) in a_rows.iter().enumerate() {
            let lhs: f64 = row.iter().zip(&sol.values).map(|(a, x)| a * x).sum();
            let rhs: f64 = row.iter().zip(&x0).map(|(a, x)| a * x).sum::<f64>()
                + slack_raw[r % slack_raw.len()] as f64;
            prop_assert!(lhs <= rhs + TOL, "row {r}: {lhs} > {rhs}");
        }
        for &x in &sol.values {
            prop_assert!((-TOL..=5.0 + TOL).contains(&x));
        }
        // Optimality relative to the witness.
        let witness_obj: f64 = obj.iter().zip(&x0).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective >= witness_obj - TOL,
            "objective {} below witness {witness_obj}", sol.objective);
    }

    /// Equality-constrained transport problems: Σx_j = total must hold
    /// exactly in the returned solution.
    #[test]
    fn equality_rows_hold_exactly(
        dim in 2usize..5,
        total in 1u32..8,
        obj_raw in vec(1u32..9, 5),
    ) {
        let mut lp = LpProblem::new(Sense::Min);
        let vars: Vec<_> = obj_raw.iter().take(dim)
            .map(|&c| lp.add_var(c as f64, None)).collect();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&coeffs, Relation::Eq, total as f64);
        let sol = lp.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        let sum: f64 = sol.values.iter().sum();
        prop_assert!((sum - total as f64).abs() < TOL);
        // The optimum puts everything on the cheapest variable.
        let cheapest = obj_raw.iter().take(dim).min().copied().unwrap() as f64;
        prop_assert!((sol.objective - cheapest * total as f64).abs() < TOL);
    }

    /// Infeasibility detection: box [0,1] with a demand > dim is infeasible;
    /// demand ≤ dim is feasible. The classifier must match exactly.
    #[test]
    fn feasibility_threshold_detection(dim in 1usize..6, demand_times_2 in 0u32..16) {
        let demand = demand_times_2 as f64 / 2.0;
        let mut lp = LpProblem::new(Sense::Min);
        let vars: Vec<_> = (0..dim).map(|_| lp.add_var(0.0, Some(1.0))).collect();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&coeffs, Relation::Ge, demand);
        let sol = lp.solve();
        if demand <= dim as f64 + 1e-12 {
            prop_assert_eq!(sol.status, LpStatus::Optimal);
        } else {
            prop_assert_eq!(sol.status, LpStatus::Infeasible);
        }
    }
}
