//! # sst-lp — a self-contained dense simplex LP solver
//!
//! Substrate for the LP-based algorithms of the paper: the relaxation of
//! ILP-UM (Section 3.1, randomized rounding) and LP-RelaxedRA
//! (Sections 3.3.1/3.3.2, pseudoforest roundings). The reproduction bands
//! flag LP-solver crates as the thin spot of a Rust build, so this
//! workspace ships its own: a two-phase primal dense simplex with Dantzig
//! pricing, Bland's-rule anti-cycling, and — crucially for the roundings —
//! **basic (vertex) optimal solutions**, whose support graphs on
//! class-machine bipartite LPs are pseudoforests.
//!
//! ```
//! use sst_lp::{LpProblem, LpStatus, Relation, Sense};
//!
//! // max x + 2y  s.t. x + y ≤ 4, y ≤ 3, x,y ≥ 0
//! let mut lp = LpProblem::new(Sense::Max);
//! let x = lp.add_var(1.0, None);
//! let y = lp.add_var(2.0, Some(3.0));
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 7.0).abs() < 1e-9); // x=1, y=3
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certify;
mod format;
mod model;
mod simplex;

pub use certify::{certify, Certificate, CertifyError};
pub use model::{LpProblem, LpResult, LpStatus, Relation, Sense, VarId};
pub use simplex::TOL;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(3.0, Some(4.0));
        let y = lp.add_var(5.0, None);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn min_with_ge_constraints_uses_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10, 0), objective 20.
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(2.0, None);
        let y = lp.add_var(3.0, None);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 20.0);
        assert_close(sol.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x - y = 0 → x = y = 2, obj 4.
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 6.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 4.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(0.0, None);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y ≤ -2 with x,y ∈ [0,5]: feasible, e.g. (0, 2). min x + y = 2.
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, Some(5.0));
        let y = lp.add_var(1.0, Some(5.0));
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn degenerate_cycling_candidate_terminates() {
        // Beale's classic cycling example (cycles under naive Dantzig
        // without anti-cycling). Known optimum: objective -0.05.
        let mut lp = LpProblem::new(Sense::Min);
        let x1 = lp.add_var(-0.75, None);
        let x2 = lp.add_var(150.0, None);
        let x3 = lp.add_var(-0.02, None);
        let x4 = lp.add_var(6.0, None);
        lp.add_constraint(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Relation::Le, 0.0);
        lp.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn feasibility_only_program() {
        // Zero objective: phase 1 decides feasibility; phase 2 is trivial.
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(0.0, Some(1.0));
        let y = lp.add_var(0.0, Some(1.0));
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 1.5);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x) + sol.value(y), 1.5);
        assert!(sol.value(x) <= 1.0 + 1e-9 && sol.value(y) <= 1.0 + 1e-9);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x + y = 2 twice (redundant row leaves an artificial basic at 0).
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(0.0, None);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn assignment_lp_vertices_are_integral() {
        // 2 jobs × 2 machines assignment LP with unique integral optimum;
        // a *basic* solution must return 0/1 values (total unimodularity).
        let costs = [[1.0, 5.0], [5.0, 1.0]];
        let mut lp = LpProblem::new(Sense::Min);
        let x: Vec<Vec<VarId>> =
            (0..2).map(|j| (0..2).map(|i| lp.add_var(costs[j][i], Some(1.0))).collect()).collect();
        for row in &x {
            lp.add_constraint(&[(row[0], 1.0), (row[1], 1.0)], Relation::Eq, 1.0);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        for row in &x {
            for &v in row {
                let val = sol.value(v);
                assert!(val.abs() < 1e-6 || (val - 1.0).abs() < 1e-6, "non-vertex value {val}");
            }
        }
    }

    #[test]
    fn moderately_sized_structured_lp() {
        // 40 vars, rolling-window capacity rows: max Σ x_i, window(4) ≤ 2.
        let mut lp = LpProblem::new(Sense::Max);
        let xs: Vec<VarId> = (0..40).map(|_| lp.add_var(1.0, Some(1.0))).collect();
        for w in xs.windows(4) {
            let coeffs: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(&coeffs, Relation::Le, 2.0);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 20.0);
    }
}
