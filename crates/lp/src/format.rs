//! Export of [`LpProblem`]s in the classic CPLEX-LP text format.
//!
//! The scheduling LPs this workspace builds (ILP-UM relaxation,
//! LP-RelaxedRA, the configuration-LP master) are easiest to debug by
//! inspecting them in a standard format that external tools (`lp_solve`,
//! CBC, Gurobi, `glpsol`) can ingest directly — both for eyeballing a
//! wrong bound and for cross-checking this workspace's simplex against an
//! independent solver.
//!
//! ```
//! use sst_lp::{LpProblem, Relation, Sense};
//!
//! let mut lp = LpProblem::new(Sense::Max);
//! let x = lp.add_var(3.0, Some(4.0));
//! let y = lp.add_var(5.0, None);
//! lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
//! let text = lp.to_lp_format();
//! assert!(text.contains("Maximize"));
//! assert!(text.contains("3 x0 + 2 x1 <= 18"));
//! ```

use std::fmt::Write as _;

use crate::model::{LpProblem, Relation, Sense};

/// Formats a coefficient: integers print bare, others with full precision.
fn coef(c: f64) -> String {
    if c == c.trunc() && c.abs() < 1e15 {
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

fn term_list(out: &mut String, coeffs: &[(usize, f64)]) {
    let mut first = true;
    for &(v, c) in coeffs {
        if c == 0.0 {
            continue;
        }
        if first {
            if c < 0.0 {
                let _ = write!(out, "- ");
            }
            first = false;
        } else if c < 0.0 {
            let _ = write!(out, " - ");
        } else {
            let _ = write!(out, " + ");
        }
        let a = c.abs();
        if a == 1.0 {
            let _ = write!(out, "x{v}");
        } else {
            let _ = write!(out, "{} x{v}", coef(a));
        }
    }
    if first {
        let _ = write!(out, "0");
    }
}

impl LpProblem {
    /// Renders the program in CPLEX-LP text format. Variables are named
    /// `x0, x1, …` in [`crate::VarId`] order; upper-bound rows added by
    /// [`LpProblem::add_var`] appear in the `Bounds` section instead of as
    /// constraint rows.
    pub fn to_lp_format(&self) -> String {
        let mut out = String::new();
        out.push_str(match self.sense() {
            Sense::Min => "Minimize\n obj: ",
            Sense::Max => "Maximize\n obj: ",
        });
        let obj: Vec<(usize, f64)> =
            self.objective_coeffs().iter().enumerate().map(|(v, &c)| (v, c)).collect();
        term_list(&mut out, &obj);
        out.push_str("\nSubject To\n");
        let mut bounds: Vec<(usize, f64)> = Vec::new();
        let mut cnum = 0usize;
        for row in self.rows() {
            // Recognize pure upper-bound rows (x_v ≤ u) and divert them.
            if row.rel == Relation::Le && row.coeffs.len() == 1 && row.coeffs[0].1 == 1.0 {
                bounds.push((row.coeffs[0].0, row.rhs));
                continue;
            }
            let _ = write!(out, " c{cnum}: ");
            cnum += 1;
            term_list(&mut out, &row.coeffs);
            let rel = match row.rel {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {} {}", rel, coef(row.rhs));
        }
        if !bounds.is_empty() {
            out.push_str("Bounds\n");
            for (v, u) in bounds {
                let _ = writeln!(out, " 0 <= x{v} <= {}", coef(u));
            }
        }
        out.push_str("End\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{LpProblem, Relation, Sense};

    #[test]
    fn textbook_problem_renders() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(3.0, Some(4.0));
        let y = lp.add_var(5.0, None);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let text = lp.to_lp_format();
        assert!(text.starts_with("Maximize\n obj: 3 x0 + 5 x1\n"));
        assert!(text.contains(" c0: 2 x1 <= 12\n"), "{text}");
        assert!(text.contains(" c1: 3 x0 + 2 x1 <= 18\n"), "{text}");
        assert!(text.contains("Bounds\n 0 <= x0 <= 4\n"), "{text}");
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn negative_coefficients_and_relations() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(-2.5, None);
        lp.add_constraint(&[(x, -1.0), (y, 1.0)], Relation::Ge, -3.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        let text = lp.to_lp_format();
        assert!(text.contains("Minimize"), "{text}");
        assert!(text.contains("obj: x0 - 2.5 x1"), "{text}");
        assert!(text.contains("c0: - x0 + x1 >= -3"), "{text}");
        assert!(text.contains("c1: x0 - x1 = 0"), "{text}");
    }

    #[test]
    fn empty_objective_and_rows() {
        let mut lp = LpProblem::new(Sense::Min);
        let _ = lp.add_var(0.0, None);
        let text = lp.to_lp_format();
        assert!(text.contains("obj: 0\n"), "{text}");
        assert!(text.contains("Subject To\nEnd\n") || text.contains("Subject To\n"), "{text}");
    }

    #[test]
    fn unit_coefficients_print_bare() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let text = lp.to_lp_format();
        assert!(text.contains(" c0: x0 + x1 >= 2\n"), "{text}");
    }
}
