//! Independent optimality certificates for simplex solutions.
//!
//! The dual approximation framework leans on LP values as *lower bounds* on
//! the optimal makespan (`T*` in E3/E5/E6), so a silently wrong LP answer
//! would corrupt every measured ratio downstream. This module re-derives,
//! from nothing but the original problem data and the returned
//! primal/dual vectors, the three facts that together prove optimality:
//!
//! 1. **primal feasibility** — every constraint row holds at `x`;
//! 2. **dual feasibility** — the multipliers have the right signs and all
//!    reduced costs `c_j − Σ_r y_r a_rj` have the right sign;
//! 3. **strong duality** — `c·x = y·b` (equivalently, complementary
//!    slackness holds everywhere).
//!
//! The checks use only `O(nnz)` arithmetic independent of the solver's
//! tableau, so they certify the solver rather than re-run it.
//!
//! ```
//! use sst_lp::{certify, LpProblem, Relation, Sense};
//!
//! // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
//! let mut lp = LpProblem::new(Sense::Max);
//! let x = lp.add_var(3.0, Some(4.0));
//! let y = lp.add_var(5.0, None);
//! lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
//! lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
//! let sol = lp.solve();
//! let cert = certify(&lp, &sol, 1e-6).expect("optimal vertex certifies");
//! assert!(cert.duality_gap <= 1e-6);
//! ```

use crate::model::{LpProblem, LpResult, LpStatus, Relation, Sense};

/// Maximum violation magnitudes found while checking a solution; all three
/// are `≤ tol` iff [`certify`] returned `Ok`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// Largest violation of any primal constraint (0 if none).
    pub primal_violation: f64,
    /// Largest dual sign/reduced-cost violation (0 if none).
    pub dual_violation: f64,
    /// `|c·x − y·b|`, the duality gap.
    pub duality_gap: f64,
}

/// Why a certificate was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CertifyError {
    /// The result is not [`LpStatus::Optimal`]; nothing to certify.
    NotOptimal,
    /// The primal/dual vectors have the wrong length for the problem.
    ShapeMismatch,
    /// A check exceeded the tolerance.
    Violation(Certificate),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::NotOptimal => write!(f, "solution status is not Optimal"),
            CertifyError::ShapeMismatch => {
                write!(f, "primal/dual vector lengths do not match the problem")
            }
            CertifyError::Violation(c) => write!(
                f,
                "certificate refused: primal {:.3e}, dual {:.3e}, gap {:.3e}",
                c.primal_violation, c.dual_violation, c.duality_gap
            ),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Certifies that `sol` is an optimal solution of `lp` up to `tol`.
///
/// Returns the measured violation magnitudes on success; refuses with
/// [`CertifyError::Violation`] (carrying the same magnitudes) otherwise.
/// `tol` is an absolute tolerance; scale it with the magnitude of your
/// coefficients (the scheduling LPs in this workspace normalize by the
/// makespan guess, so [`crate::TOL`]`·100` is comfortable there).
pub fn certify(lp: &LpProblem, sol: &LpResult, tol: f64) -> Result<Certificate, CertifyError> {
    if sol.status != LpStatus::Optimal {
        return Err(CertifyError::NotOptimal);
    }
    if sol.values.len() != lp.num_vars() || sol.duals.len() != lp.num_rows() {
        return Err(CertifyError::ShapeMismatch);
    }
    let x = &sol.values;
    let y = &sol.duals;
    let rows = lp.rows();
    let c = lp.objective_coeffs();
    let sense = lp.sense();

    // 1. Primal feasibility (x ≥ 0 is part of it).
    let mut primal: f64 = 0.0;
    for &v in x {
        primal = primal.max(-v);
    }
    let mut ydotb = 0.0;
    for (r, row) in rows.iter().enumerate() {
        let lhs: f64 = row.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
        let viol = match row.rel {
            Relation::Le => lhs - row.rhs,
            Relation::Ge => row.rhs - lhs,
            Relation::Eq => (lhs - row.rhs).abs(),
        };
        primal = primal.max(viol);
        ydotb += y[r] * row.rhs;
    }

    // 2. Dual feasibility. For Min: y ≤ 0 on ≤-rows, y ≥ 0 on ≥-rows and
    // reduced costs ≥ 0; for Max everything flips. `dir` maps both cases
    // onto "≥ 0 after multiplication".
    let dir = match sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let mut dual: f64 = 0.0;
    for (r, row) in rows.iter().enumerate() {
        match row.rel {
            Relation::Le => dual = dual.max(dir * y[r]),
            Relation::Ge => dual = dual.max(-dir * y[r]),
            Relation::Eq => {}
        }
    }
    let mut reduced = vec![0.0f64; x.len()];
    for (r, row) in rows.iter().enumerate() {
        for &(v, a) in &row.coeffs {
            reduced[v] += y[r] * a;
        }
    }
    for (j, acc) in reduced.iter().enumerate() {
        let rc = c[j] - acc;
        // Min: rc ≥ 0 required; Max: rc ≤ 0 required. Complementary
        // slackness (x_j > 0 ⇒ rc_j = 0) needs no separate check: together
        // with feasibility on both sides it is equivalent to a zero duality
        // gap, which check 3 measures directly.
        dual = dual.max(-dir * rc);
        let _ = x[j];
    }

    // 3. Strong duality.
    let cx: f64 = c.iter().zip(x).map(|(cc, xx)| cc * xx).sum();
    let gap = (cx - ydotb).abs();

    let cert = Certificate {
        primal_violation: primal.max(0.0),
        dual_violation: dual.max(0.0),
        duality_gap: gap,
    };
    if cert.primal_violation <= tol && cert.dual_violation <= tol && cert.duality_gap <= tol {
        Ok(cert)
    } else {
        Err(CertifyError::Violation(cert))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, Relation, Sense};

    const TOL: f64 = 1e-6;

    #[test]
    fn certifies_textbook_max() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(3.0, Some(4.0));
        let y = lp.add_var(5.0, None);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve();
        let cert = certify(&lp, &sol, TOL).expect("optimal vertex must certify");
        assert!(cert.duality_gap <= TOL);
    }

    #[test]
    fn certifies_min_with_mixed_relations() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(2.0, None);
        let y = lp.add_var(3.0, None);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 8.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 4.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        // x=7, y=3 → 23
        assert!((sol.objective - 23.0).abs() < 1e-6);
        certify(&lp, &sol, TOL).expect("must certify");
    }

    #[test]
    fn certifies_negative_rhs_normalization() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, Some(5.0));
        let y = lp.add_var(1.0, Some(5.0));
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve();
        certify(&lp, &sol, TOL).expect("flipped-row duals must still certify");
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn strong_duality_value_matches() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(1.0, Some(1.0));
        let y = lp.add_var(2.0, Some(1.0));
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        let sol = lp.solve();
        // y=1, x=0.5 → 2.5
        assert!((sol.objective - 2.5).abs() < 1e-6);
        let ydotb: f64 = sol
            .duals
            .iter()
            .zip([1.0, 1.0, 1.5]) // ub(x)=1, ub(y)=1, then the ≤ row
            .map(|(d, b)| d * b)
            .sum();
        assert!((ydotb - sol.objective).abs() < 1e-6, "{ydotb}");
        certify(&lp, &sol, TOL).unwrap();
    }

    #[test]
    fn refuses_tampered_primal() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(1.0, Some(2.0));
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        let mut sol = lp.solve();
        sol.values[0] = 5.0; // violates both rows
        match certify(&lp, &sol, TOL) {
            Err(CertifyError::Violation(c)) => assert!(c.primal_violation > 1.0),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn refuses_tampered_duals() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 3.0);
        let mut sol = lp.solve();
        sol.duals[0] = -1.0; // wrong sign for a ≥ row under Min
        assert!(matches!(certify(&lp, &sol, TOL), Err(CertifyError::Violation(_))));
    }

    #[test]
    fn refuses_non_optimal_status() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        let sol = lp.solve();
        assert_eq!(certify(&lp, &sol, TOL), Err(CertifyError::NotOptimal));
    }

    #[test]
    fn refuses_shape_mismatch() {
        let mut lp = LpProblem::new(Sense::Min);
        let x = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let mut sol = lp.solve();
        sol.duals.pop();
        assert_eq!(certify(&lp, &sol, TOL), Err(CertifyError::ShapeMismatch));
    }

    #[test]
    fn certifies_degenerate_beale() {
        let mut lp = LpProblem::new(Sense::Min);
        let x1 = lp.add_var(-0.75, None);
        let x2 = lp.add_var(150.0, None);
        let x3 = lp.add_var(-0.02, None);
        let x4 = lp.add_var(6.0, None);
        lp.add_constraint(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Relation::Le, 0.0);
        lp.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve();
        certify(&lp, &sol, 1e-5).expect("degenerate optimum still certifies");
    }

    #[test]
    fn certifies_scheduling_shaped_lp() {
        // Miniature ILP-UM relaxation: 3 jobs × 2 machines, 2 classes.
        let p = [[2.0, 4.0], [3.0, 1.0], [2.0, 2.0]];
        let class_of = [0usize, 1, 0];
        let s = [[1.0, 2.0], [2.0, 1.0]];
        let t = 5.0;
        let mut lp = LpProblem::new(Sense::Min);
        let xv: Vec<Vec<_>> =
            (0..3).map(|j| (0..2).map(|i| lp.add_var(p[j][i], Some(1.0))).collect()).collect();
        let yv: Vec<Vec<_>> =
            (0..2).map(|k| (0..2).map(|i| lp.add_var(s[k][i], Some(1.0))).collect()).collect();
        for j in 0..3 {
            lp.add_constraint(&[(xv[j][0], 1.0), (xv[j][1], 1.0)], Relation::Eq, 1.0);
        }
        for i in 0..2 {
            let mut load: Vec<_> = (0..3).map(|j| (xv[j][i], p[j][i])).collect();
            load.extend((0..2).map(|k| (yv[k][i], s[k][i])));
            lp.add_constraint(&load, Relation::Le, t);
            for j in 0..3 {
                lp.add_constraint(
                    &[(yv[class_of[j]][i], 1.0), (xv[j][i], -1.0)],
                    Relation::Ge,
                    0.0,
                );
            }
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        certify(&lp, &sol, 1e-5).expect("scheduling LP certifies");
    }
}
