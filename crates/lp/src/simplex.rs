//! Dense two-phase primal simplex on the full tableau.
//!
//! Chosen over a revised/sparse implementation deliberately: the scheduling
//! LPs of the paper (ILP-UM relaxation, LP-RelaxedRA) are small-to-medium
//! (≤ a few thousand rows), dense arithmetic is cache-friendly at that size,
//! and the full tableau makes the basic-solution (vertex) structure — which
//! the pseudoforest roundings depend on — directly inspectable and easy to
//! test. Anti-cycling: Dantzig pricing normally, switching to Bland's rule
//! after a run of degenerate pivots (Bland's rule terminates finitely).

use crate::model::{Relation, Row};

/// Feasibility/optimality tolerance. Scheduling inputs are integers scaled
/// into `[0, ~1e9]`; 1e-7 absolute keeps pivoting stable across the sizes
/// the experiments use while staying far below any meaningful quantity.
pub const TOL: f64 = 1e-7;

/// Tolerance for pivot element magnitude (tighter, to avoid dividing by
/// near-zero entries).
const PIVOT_TOL: f64 = 1e-9;

/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_SWITCH: usize = 40;

/// Hard iteration cap; hitting it indicates a numerical pathology rather
/// than a large instance, so we panic with context instead of silently
/// looping or returning a wrong answer.
const MAX_ITERS: usize = 2_000_000;

pub(crate) enum SimplexOutcome {
    Optimal { values: Vec<f64>, objective: f64, duals: Vec<f64> },
    Infeasible,
    Unbounded,
}

struct Tableau {
    /// Number of constraint rows.
    m: usize,
    /// Number of columns excluding the RHS column.
    n: usize,
    /// `(m + 1) × (n + 1)` row-major; row `m` is the objective row, column
    /// `n` is the RHS.
    a: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Columns that may enter the basis (artificials are locked out in
    /// phase 2).
    allowed: Vec<bool>,
    /// Scratch copy of the normalized pivot row — lets the elimination loop
    /// run over disjoint `chunks_exact_mut` rows (no aliasing, no index
    /// arithmetic, vectorizable).
    scratch: Vec<f64>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.n + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * (self.n + 1) + c]
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.n + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        {
            let r = &mut self.a[row * w..(row + 1) * w];
            for v in r.iter_mut() {
                *v *= inv;
            }
            r[col] = 1.0;
        }
        // Snapshot the normalized pivot row so the elimination pass can run
        // over disjoint mutable row chunks.
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.a[row * w..(row + 1) * w]);
        let pivot_row = std::mem::take(&mut self.scratch);
        for (r, chunk) in self.a.chunks_exact_mut(w).enumerate() {
            if r == row {
                continue;
            }
            let factor = chunk[col];
            if factor == 0.0 {
                continue;
            }
            for (v, &p) in chunk.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            // Clamp the eliminated entry exactly to zero to stop error
            // accumulation in this column.
            chunk[col] = 0.0;
        }
        self.scratch = pivot_row;
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the current objective row (minimization).
    /// Returns `false` if unbounded.
    fn optimize(&mut self) -> bool {
        let mut degenerate_run = 0usize;
        for iter in 0..MAX_ITERS {
            let bland = degenerate_run >= DEGENERATE_SWITCH;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland).
            let mut entering: Option<usize> = None;
            let mut best = -TOL;
            for c in 0..self.n {
                if !self.allowed[c] {
                    continue;
                }
                let rc = self.at(self.m, c);
                if rc < best {
                    entering = Some(c);
                    if bland {
                        break;
                    }
                    best = rc;
                }
            }
            let Some(col) = entering else {
                return true; // optimal
            };
            // Ratio test: min rhs/coef over rows with positive coefficient;
            // ties broken by smallest basic variable index (needed for
            // Bland's rule termination guarantee).
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let coef = self.at(r, col);
                if coef > PIVOT_TOL {
                    let ratio = self.at(r, self.n) / coef;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - PIVOT_TOL
                                || (ratio < lratio + PIVOT_TOL && self.basis[r] < self.basis[lr])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = leaving else {
                return false; // unbounded direction
            };
            degenerate_run = if ratio.abs() <= PIVOT_TOL { degenerate_run + 1 } else { 0 };
            self.pivot(row, col);
            let _ = iter;
        }
        panic!(
            "simplex exceeded {MAX_ITERS} iterations ({} rows × {} cols): numerical pathology",
            self.m, self.n
        );
    }
}

/// Solves `min c·x  s.t. rows, x ≥ 0` via the two-phase method.
pub(crate) fn solve_standard(nv: usize, c: &[f64], rows: &[Row]) -> SimplexOutcome {
    let m = rows.len();
    // Column layout: structural 0..nv | slack/surplus | artificial.
    // Count auxiliary columns.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in rows {
        // Normalize to rhs ≥ 0 first (flip relation when negating).
        let rel = effective_relation(row);
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }
    let n = nv + n_slack + n_art;
    let w = n + 1;
    let mut a = vec![0.0f64; (m + 1) * w];
    let mut basis = vec![usize::MAX; m];
    let mut slack_cursor = nv;
    let mut art_cursor = nv + n_slack;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_art);
    // Per row: (column whose phase-2 reduced cost reveals the dual, sign s
    // with y_row = s · objrow[col]). The unit column e_r (slack of a ≤ row
    // or the artificial of ≥/= rows) has reduced cost 0 − yᵀe_r = −y_r; a
    // row that was sign-flipped during normalization negates once more.
    let mut dual_probe: Vec<(usize, f64)> = Vec::with_capacity(m);

    for (r, row) in rows.iter().enumerate() {
        let flip = row.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(v, coef) in &row.coeffs {
            a[r * w + v] = sign * coef;
        }
        a[r * w + n] = sign * row.rhs;
        match effective_relation(row) {
            Relation::Le => {
                a[r * w + slack_cursor] = 1.0;
                basis[r] = slack_cursor;
                dual_probe.push((slack_cursor, -sign));
                slack_cursor += 1;
            }
            Relation::Ge => {
                a[r * w + slack_cursor] = -1.0; // surplus
                slack_cursor += 1;
                a[r * w + art_cursor] = 1.0;
                basis[r] = art_cursor;
                dual_probe.push((art_cursor, -sign));
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
            Relation::Eq => {
                a[r * w + art_cursor] = 1.0;
                basis[r] = art_cursor;
                dual_probe.push((art_cursor, -sign));
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    let mut t = Tableau { m, n, a, basis, allowed: vec![true; n], scratch: Vec::new() };

    // ---- Phase 1 ----
    if !artificial_cols.is_empty() {
        // Objective: minimize sum of artificials. Reduced costs: start from
        // e_art and subtract the rows whose basic variable is artificial.
        for &c in &artificial_cols {
            *t.at_mut(m, c) = 1.0;
        }
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                for col in 0..w {
                    let v = t.at(r, col);
                    *t.at_mut(m, col) -= v;
                }
            }
        }
        let bounded = t.optimize();
        debug_assert!(bounded, "phase-1 objective is bounded below by 0");
        let phase1_obj = -t.at(m, n); // objective row stores -z
        if phase1_obj > 1e-6 {
            return SimplexOutcome::Infeasible;
        }
        // Drive remaining basic artificials (at value 0) out of the basis
        // where possible; redundant rows keep their artificial locked at 0.
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                if let Some(col) = (0..nv + n_slack).find(|&c2| t.at(r, c2).abs() > 1e-6) {
                    t.pivot(r, col);
                }
            }
        }
        for &c in &artificial_cols {
            t.allowed[c] = false;
        }
    }

    // ---- Phase 2 ----
    // Objective row: reduced costs of c w.r.t. the current basis.
    let w = t.n + 1;
    for col in 0..w {
        t.a[m * w + col] = 0.0;
    }
    for (v, &coef) in c.iter().enumerate() {
        t.a[m * w + v] = coef;
    }
    for r in 0..m {
        let b = t.basis[r];
        let cost = if b < nv { c[b] } else { 0.0 };
        if cost != 0.0 {
            for col in 0..w {
                let v = t.at(r, col);
                *t.at_mut(m, col) -= cost * v;
            }
        }
    }
    if !t.optimize() {
        return SimplexOutcome::Unbounded;
    }

    // Extract the basic solution.
    let mut values = vec![0.0f64; nv];
    for r in 0..m {
        let b = t.basis[r];
        if b < nv {
            // Numerical noise can leave a tiny negative; clamp for callers.
            values[b] = t.at(r, t.n).max(0.0);
        }
    }
    let objective: f64 = values.iter().zip(c).map(|(x, cc)| x * cc).sum();
    // Duals from the phase-2 objective row (see `dual_probe` above). The
    // probe columns are maintained through every pivot, so this is the
    // simplex multiplier vector y = c_B B⁻¹ of the final basis.
    let duals: Vec<f64> = dual_probe.iter().map(|&(col, s)| s * t.at(m, col)).collect();
    SimplexOutcome::Optimal { values, objective, duals }
}

/// Relation after normalizing the row to a non-negative RHS.
fn effective_relation(row: &Row) -> Relation {
    if row.rhs < 0.0 {
        match row.rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    } else {
        row.rel
    }
}
