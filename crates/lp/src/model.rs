//! Linear-program builder.
//!
//! All variables are non-negative; upper bounds are expressed as explicit
//! `x ≤ u` rows (the scheduling LPs of the paper have only `[0,1]`-bounded
//! variables, so the extra rows are cheap relative to the assignment
//! constraints). Constraints may be `≤`, `≥` or `=`.

use crate::simplex::{solve_standard, SimplexOutcome};

/// Handle to a variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in solution vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Solver status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of [`LpProblem::solve`].
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value (meaningful only for [`LpStatus::Optimal`]).
    pub objective: f64,
    /// Value per variable (meaningful only for [`LpStatus::Optimal`]).
    /// This is a *basic* solution — a vertex of the feasible polytope —
    /// which the pseudoforest roundings of Sections 3.3.1/3.3.2 rely on.
    pub values: Vec<f64>,
    /// Dual multiplier per constraint row, in the order the rows were added
    /// (upper-bound rows from [`LpProblem::add_var`] included). Meaningful
    /// only for [`LpStatus::Optimal`]. Sign convention: for [`Sense::Min`],
    /// `y_r ≤ 0` on `≤` rows and `y_r ≥ 0` on `≥` rows with
    /// `c_j − Σ_r y_r a_rj ≥ 0`; for [`Sense::Max`] all three flip. In both
    /// senses `Σ_r y_r b_r` equals the optimal objective (strong duality) —
    /// [`crate::certify::certify`] checks all of this independently.
    pub duals: Vec<f64>,
}

impl LpResult {
    /// Value of variable `v` in the solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct LpProblem {
    sense: Sense,
    obj: Vec<f64>,
    rows: Vec<Row>,
}

impl LpProblem {
    /// Creates an empty program with the given optimization direction.
    pub fn new(sense: Sense) -> LpProblem {
        LpProblem { sense, obj: Vec::new(), rows: Vec::new() }
    }

    /// Adds a non-negative variable with objective coefficient `obj` and an
    /// optional upper bound.
    pub fn add_var(&mut self, obj: f64, upper: Option<f64>) -> VarId {
        let id = VarId(self.obj.len());
        self.obj.push(obj);
        if let Some(u) = upper {
            assert!(u >= 0.0, "upper bound must be non-negative");
            self.rows.push(Row { coeffs: vec![(id.0, 1.0)], rel: Relation::Le, rhs: u });
        }
        id
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraint rows (including upper-bound rows).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `Σ coeffs ⋈ rhs`. Repeated variables in `coeffs`
    /// are summed.
    pub fn add_constraint(&mut self, coeffs: &[(VarId, f64)], rel: Relation, rhs: f64) {
        let mut merged: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(v, c) in coeffs {
            assert!(v.0 < self.obj.len(), "constraint references unknown variable");
            *merged.entry(v.0).or_insert(0.0) += c;
        }
        self.rows.push(Row {
            coeffs: merged.into_iter().filter(|&(_, c)| c != 0.0).collect(),
            rel,
            rhs,
        });
    }

    /// Solves the program with the two-phase primal simplex method.
    pub fn solve(&self) -> LpResult {
        // Internally always minimize; flip the objective for Max.
        let minimize_obj: Vec<f64> = match self.sense {
            Sense::Min => self.obj.clone(),
            Sense::Max => self.obj.iter().map(|c| -c).collect(),
        };
        match solve_standard(self.obj.len(), &minimize_obj, &self.rows) {
            SimplexOutcome::Optimal { values, objective, duals } => LpResult {
                status: LpStatus::Optimal,
                objective: match self.sense {
                    Sense::Min => objective,
                    Sense::Max => -objective,
                },
                values,
                duals: match self.sense {
                    // Internally min(−c) was solved; the user-facing max
                    // duals are the negated multipliers (strong duality then
                    // reads y·b = +max objective).
                    Sense::Min => duals,
                    Sense::Max => duals.into_iter().map(|y| -y).collect(),
                },
            },
            SimplexOutcome::Infeasible => LpResult {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                values: vec![],
                duals: vec![],
            },
            SimplexOutcome::Unbounded => LpResult {
                status: LpStatus::Unbounded,
                objective: match self.sense {
                    Sense::Min => f64::NEG_INFINITY,
                    Sense::Max => f64::INFINITY,
                },
                values: vec![],
                duals: vec![],
            },
        }
    }

    /// Optimization direction of the program.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficient of variable `v`.
    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.obj[v.0]
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_duplicate_coefficients() {
        let mut lp = LpProblem::new(Sense::Max);
        let x = lp.add_var(1.0, None);
        lp.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 6.0);
        let res = lp.solve();
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.value(x) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_on_unknown_variable_panics() {
        let mut lp = LpProblem::new(Sense::Min);
        lp.add_constraint(&[(VarId(3), 1.0)], Relation::Le, 1.0);
    }
}
