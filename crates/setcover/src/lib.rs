//! # sst-setcover — set cover substrate for the hardness side of the paper
//!
//! Section 3.2 of *Jansen, Maack, Mäcker (2019)* proves the
//! `Ω(log n + log m)` inapproximability of scheduling with setup times on
//! unrelated machines by a randomized reduction from SetCover. This crate
//! supplies everything that argument consumes:
//!
//! * [`instance::SetCoverInstance`] — the combinatorial substrate;
//! * [`solvers`] — the greedy `H_N`-approximation and an exact
//!   branch-and-bound used to certify cover numbers;
//! * [`gap`] — the deterministic GF(2) family with *known* integral (`k`)
//!   and fractional (`< 2`) optima, substituting for NP-hard gap instances
//!   (see DESIGN.md §2);
//! * [`lp`] — the set cover LP, certified by `sst-lp`, with randomized
//!   `O(log N)` and deterministic frequency roundings (the Vazirani
//!   machinery Cor. 3.4 leans on);
//! * [`reduction`] — the Theorem 3.5 reduction itself, its yes-certificate
//!   schedule, and the averaging lower bound on reduced instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gap;
pub mod instance;
pub mod lp;
pub mod reduction;
pub mod solvers;

pub use gap::{gf2_basis_cover, gf2_fractional_optimum, gf2_gap_instance, gf2_integral_optimum};
pub use instance::SetCoverInstance;
pub use lp::{frequency_rounding_cover, lp_cover, randomized_rounding_cover, FractionalCover};
pub use reduction::{reduce, reduction_makespan_lower_bound, schedule_from_cover, Reduction};
pub use solvers::{exact_cover, greedy_cover};
