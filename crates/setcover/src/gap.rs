//! The GF(2) integrality-gap family (Vazirani, *Approximation Algorithms*,
//! pp. 111–112), used to exhibit the `Ω(log n + log m)` integrality gap of
//! ILP-UM (Corollary 3.4) and the gap structure behind Theorem 3.5.
//!
//! For a dimension `k`: the universe is the non-zero vectors of `𝔽₂ᵏ`
//! (`N = 2ᵏ − 1` elements) and there is one set per non-zero vector `y`:
//! `S_y = { x ≠ 0 : ⟨x, y⟩ = 1 }` (inner product over 𝔽₂).
//!
//! Certified optima:
//! * **Fractional optimum ≤ 2 − 1/2^{k-1}**: every element lies in exactly
//!   `2^{k-1}` sets, so uniform weights `1/2^{k-1}` cover each element with
//!   total weight exactly 1; the total is `(2ᵏ−1)/2^{k-1} < 2`.
//! * **Integral optimum = k**: any `j < k` vectors `y₁…y_j` span a proper
//!   subspace, whose orthogonal complement contains a non-zero `x` with
//!   `⟨x, yᵢ⟩ = 0` for all `i` — uncovered. A basis `y₁…y_k` covers
//!   everything (only `x = 0` is orthogonal to all of 𝔽₂ᵏ).
//!
//! The instance-level gap `k / 2 = Θ(log N)` is what no experiment on
//! NP-hard gap instances could manufacture; see DESIGN.md §2 for why this
//! substitution preserves the behaviour Theorem 3.5 needs.

use crate::instance::SetCoverInstance;

/// Builds the dimension-`k` GF(2) gap instance (`2 ≤ k ≤ 16`).
pub fn gf2_gap_instance(k: u32) -> SetCoverInstance {
    assert!((2..=16).contains(&k), "k must be in 2..=16 (N = 2^k - 1 elements)");
    let n: usize = (1usize << k) - 1;
    // Element e ∈ {0..N-1} represents vector e+1; set s represents vector s+1.
    let sets: Vec<Vec<usize>> = (0..n)
        .map(|s| {
            let y = (s + 1) as u64;
            (0..n)
                .filter(|&e| {
                    let x = (e + 1) as u64;
                    (x & y).count_ones() % 2 == 1
                })
                .collect()
        })
        .collect();
    SetCoverInstance::new(n, sets)
}

/// The certified integral optimum of [`gf2_gap_instance`]: `k`.
pub fn gf2_integral_optimum(k: u32) -> usize {
    k as usize
}

/// The certified fractional optimum of [`gf2_gap_instance`]:
/// `(2ᵏ − 1)/2^{k-1} = 2 − 2^{1-k}`, as an `f64`.
pub fn gf2_fractional_optimum(k: u32) -> f64 {
    ((1u64 << k) - 1) as f64 / (1u64 << (k - 1)) as f64
}

/// A witness integral cover of size `k`: the standard basis vectors
/// `e₁, …, e_k` (set index = vector − 1).
pub fn gf2_basis_cover(k: u32) -> Vec<usize> {
    (0..k).map(|i| (1usize << i) - 1).collect()
}

/// A witness fractional cover: uniform weight `1/2^{k-1}` on every set.
/// Returns `(weight_per_set, total_weight)`.
pub fn gf2_uniform_fractional_cover(k: u32) -> (f64, f64) {
    let w = 1.0 / (1u64 << (k - 1)) as f64;
    (w, w * ((1u64 << k) - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact_cover;

    #[test]
    fn element_set_membership_is_symmetric_inner_product() {
        let inst = gf2_gap_instance(3);
        assert_eq!(inst.n_elements(), 7);
        assert_eq!(inst.num_sets(), 7);
        for s in 0..7 {
            for e in 0..7 {
                assert_eq!(inst.contains(s, e), inst.contains(e, s));
            }
        }
    }

    #[test]
    fn every_element_in_exactly_half_the_space() {
        for k in [2u32, 3, 4, 5] {
            let inst = gf2_gap_instance(k);
            let half = 1usize << (k - 1);
            for e in 0..inst.n_elements() {
                let count = (0..inst.num_sets()).filter(|&s| inst.contains(s, e)).count();
                assert_eq!(count, half, "k={k}, e={e}");
            }
        }
    }

    #[test]
    fn basis_cover_is_a_cover_of_size_k() {
        for k in [2u32, 3, 4, 5, 6] {
            let inst = gf2_gap_instance(k);
            let cover = gf2_basis_cover(k);
            assert_eq!(cover.len(), k as usize);
            assert!(inst.is_cover(&cover), "k={k}");
        }
    }

    #[test]
    fn no_smaller_cover_exists() {
        for k in [2u32, 3, 4] {
            let inst = gf2_gap_instance(k);
            let opt = exact_cover(&inst).unwrap();
            assert_eq!(opt.len(), gf2_integral_optimum(k), "k={k}");
        }
    }

    #[test]
    fn fractional_certificate_covers_every_element() {
        for k in [2u32, 3, 4, 5] {
            let inst = gf2_gap_instance(k);
            let (w, total) = gf2_uniform_fractional_cover(k);
            for e in 0..inst.n_elements() {
                let coverage: f64 =
                    (0..inst.num_sets()).filter(|&s| inst.contains(s, e)).count() as f64 * w;
                assert!((coverage - 1.0).abs() < 1e-12);
            }
            assert!((total - gf2_fractional_optimum(k)).abs() < 1e-12);
            assert!(total < 2.0);
        }
    }

    #[test]
    fn lp_fractional_optimum_matches_certificate() {
        // Cross-validate the closed-form fractional optimum against sst-lp.
        use sst_lp::{LpProblem, LpStatus, Relation, Sense};
        for k in [2u32, 3, 4] {
            let inst = gf2_gap_instance(k);
            let mut lp = LpProblem::new(Sense::Min);
            let vars: Vec<_> = (0..inst.num_sets()).map(|_| lp.add_var(1.0, Some(1.0))).collect();
            for e in 0..inst.n_elements() {
                let coeffs: Vec<_> = (0..inst.num_sets())
                    .filter(|&s| inst.contains(s, e))
                    .map(|s| (vars[s], 1.0))
                    .collect();
                lp.add_constraint(&coeffs, Relation::Ge, 1.0);
            }
            let sol = lp.solve();
            assert_eq!(sol.status, LpStatus::Optimal);
            assert!(
                (sol.objective - gf2_fractional_optimum(k)).abs() < 1e-6,
                "k={k}: LP {} vs certificate {}",
                sol.objective,
                gf2_fractional_optimum(k)
            );
        }
    }

    #[test]
    fn gap_grows_logarithmically() {
        for k in [2u32, 4, 6, 8] {
            let gap = gf2_integral_optimum(k) as f64 / gf2_fractional_optimum(k);
            assert!(gap >= k as f64 / 2.0);
        }
    }
}
