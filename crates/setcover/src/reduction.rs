//! The randomized reduction of Theorem 3.5: SetCover → scheduling with
//! setup times on unrelated machines (restricted assignment, in fact).
//!
//! Given a set cover instance with `m` sets over `N` elements and a target
//! cover size `t`, the reduction builds a scheduling instance with
//!
//! * `m` machines — machine `i` *plays* set `S_{π_k(i)}` for class `k`,
//!   where each `π_k` is an independent uniformly random permutation;
//! * `K = ⌈(m/t)·log₂ m⌉` classes, each with one job per element:
//!   `p_{i,j^k_e} = 0` if `e ∈ S_{π_k(i)}` and `∞` otherwise;
//! * all setup times 1.
//!
//! Every machine load is then exactly the number of classes set up on it.
//! If the cover number is `c`, every class needs ≥ `c` set-up machines, so
//! some machine pays ≥ `⌈K·c/m⌉` setups; conversely a cover of size `t`
//! yields (whp) a schedule of makespan `O((K/m)·t)` by the proof's
//! construction ([`schedule_from_cover`]).

use crate::instance::SetCoverInstance;
use rand::seq::SliceRandom;
use rand::Rng;
use sst_core::instance::{UnrelatedInstance, INF};
use sst_core::schedule::Schedule;

/// Output of the reduction: the scheduling instance plus the permutations,
/// which the yes-certificate construction needs.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The scheduling instance (all-zero job sizes, unit setups,
    /// restricted assignment induced by set membership).
    pub instance: UnrelatedInstance,
    /// `perms[k][i]` = index of the set machine `i` plays for class `k`.
    pub perms: Vec<Vec<usize>>,
    /// Number of classes `K = ⌈(m/t)·log₂ m⌉`.
    pub num_classes: usize,
    /// The target cover size the reduction was built for.
    pub t: usize,
}

/// Number of classes used by the reduction.
pub fn reduction_num_classes(m: usize, t: usize) -> usize {
    assert!(t >= 1);
    let log_m = (m.max(2) as f64).log2();
    ((m as f64 / t as f64) * log_m).ceil() as usize
}

/// Runs the reduction with the provided RNG (deterministic under a seeded
/// RNG — experiments pin seeds).
pub fn reduce(sc: &SetCoverInstance, t: usize, rng: &mut impl Rng) -> Reduction {
    assert!(sc.is_coverable(), "reduction requires a coverable instance");
    let m = sc.num_sets();
    let n_el = sc.n_elements();
    let kk = reduction_num_classes(m, t);
    let mut perms: Vec<Vec<usize>> = Vec::with_capacity(kk);
    for _ in 0..kk {
        let mut p: Vec<usize> = (0..m).collect();
        p.shuffle(rng);
        perms.push(p);
    }
    // Jobs: class-major, element-minor: job (k, e) has index k·N + e.
    let mut job_class = Vec::with_capacity(kk * n_el);
    let mut ptimes = Vec::with_capacity(kk * n_el);
    for (k, perm) in perms.iter().enumerate() {
        for e in 0..n_el {
            job_class.push(k);
            let row: Vec<u64> =
                (0..m).map(|i| if sc.contains(perm[i], e) { 0 } else { INF }).collect();
            ptimes.push(row);
        }
    }
    let setups = vec![vec![1u64; m]; kk];
    let instance = UnrelatedInstance::new(m, job_class, ptimes, setups)
        .expect("reduction instance is valid: every element lies in some set");
    Reduction { instance, perms, num_classes: kk, t }
}

/// The yes-certificate schedule from the proof of Theorem 3.5: given a
/// cover, set machine `i` up for class `k` iff `π_k(i)` is in the cover,
/// and send each job (k, e) to the open machine playing a covering set.
///
/// Panics if `cover` is not actually a cover.
pub fn schedule_from_cover(sc: &SetCoverInstance, red: &Reduction, cover: &[usize]) -> Schedule {
    assert!(sc.is_cover(cover), "schedule_from_cover requires a genuine cover");
    let n_el = sc.n_elements();
    let m = sc.num_sets();
    // For class k: machine i is "open" iff π_k(i) ∈ cover. Each job (k, e)
    // goes to an open machine whose set contains e (exists: cover covers e,
    // and π_k is a bijection so the covering set is played by exactly one
    // machine).
    let in_cover: Vec<bool> = {
        let mut v = vec![false; m];
        for &s in cover {
            v[s] = true;
        }
        v
    };
    let mut assignment = vec![0usize; red.instance.n()];
    for (k, perm) in red.perms.iter().enumerate() {
        // set index → machine playing it for class k.
        let mut machine_of_set = vec![0usize; m];
        for (i, &s) in perm.iter().enumerate() {
            machine_of_set[s] = i;
        }
        for e in 0..n_el {
            let s = cover.iter().copied().find(|&s| sc.contains(s, e)).expect("cover covers e");
            debug_assert!(in_cover[s]);
            assignment[k * n_el + e] = machine_of_set[s];
        }
    }
    Schedule::new(assignment)
}

/// Lower bound on the optimal makespan of a reduction instance given the
/// instance's exact cover number `c`: every class needs at least `c`
/// distinct set-up machines (fewer would induce a smaller cover), so the
/// `K·c` setups average to `⌈K·c/m⌉` on the busiest machine.
pub fn reduction_makespan_lower_bound(red: &Reduction, cover_number: usize) -> u64 {
    let m = red.instance.m() as u64;
    let total = red.num_classes as u64 * cover_number as u64;
    total.div_ceil(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::{gf2_basis_cover, gf2_gap_instance};
    use crate::solvers::{exact_cover, greedy_cover};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sst_core::schedule::{setups_per_machine, unrelated_makespan};

    fn small() -> SetCoverInstance {
        SetCoverInstance::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![0, 3]])
    }

    #[test]
    fn reduction_shape() {
        let sc = small();
        let mut rng = StdRng::seed_from_u64(7);
        let red = reduce(&sc, 2, &mut rng);
        let kk = reduction_num_classes(4, 2);
        assert_eq!(red.num_classes, kk);
        assert_eq!(red.instance.m(), 4);
        assert_eq!(red.instance.n(), kk * 4);
        assert!(red.instance.is_restricted_assignment());
    }

    #[test]
    fn reduction_is_deterministic_under_seed() {
        let sc = small();
        let a = reduce(&sc, 2, &mut StdRng::seed_from_u64(42));
        let b = reduce(&sc, 2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.perms, b.perms);
        assert_eq!(a.instance, b.instance);
    }

    #[test]
    fn schedule_from_cover_is_valid_and_cheap() {
        let sc = small();
        let cover = exact_cover(&sc).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let red = reduce(&sc, cover.len(), &mut rng);
        let sched = schedule_from_cover(&sc, &red, &cover);
        let ms = unrelated_makespan(&red.instance, &sched).unwrap();
        // Loads = #setups per machine; total setups ≤ K·|cover|.
        let setups = setups_per_machine(&red.instance, &sched);
        let total: usize = setups.iter().sum();
        assert!(total <= red.num_classes * cover.len());
        assert_eq!(ms, *setups.iter().max().unwrap() as u64);
    }

    #[test]
    fn lower_bound_holds_for_any_schedule_we_can_build() {
        // On the GF(2) instance the cover number is k; the bound must be
        // dominated by the yes-schedule built from the basis cover.
        let k = 3u32;
        let sc = gf2_gap_instance(k);
        let cover = gf2_basis_cover(k);
        let mut rng = StdRng::seed_from_u64(11);
        let red = reduce(&sc, 2, &mut rng); // t = fractional-style target
        let lb = reduction_makespan_lower_bound(&red, k as usize);
        let sched = schedule_from_cover(&sc, &red, &cover);
        let ms = unrelated_makespan(&red.instance, &sched).unwrap();
        assert!(ms >= lb, "yes-schedule {ms} below proven lower bound {lb}");
    }

    #[test]
    fn greedy_cover_based_schedule_valid_on_gf2() {
        let sc = gf2_gap_instance(3);
        let cover = greedy_cover(&sc).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let red = reduce(&sc, cover.len(), &mut rng);
        let sched = schedule_from_cover(&sc, &red, &cover);
        assert!(unrelated_makespan(&red.instance, &sched).is_ok());
    }
}
