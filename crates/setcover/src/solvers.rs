//! Greedy and exact set cover solvers.
//!
//! The greedy algorithm is the classical `H_N`-approximation; the exact
//! solver is a branch-and-bound over sets ordered by size, used to certify
//! optima on the small instances the experiments measure gaps against.

use crate::instance::SetCoverInstance;

/// Greedy set cover: repeatedly pick the set covering the most uncovered
/// elements (ties by smaller index, for determinism). Returns `None` if the
/// instance is uncoverable. Guarantee: `|greedy| ≤ H_N · |Opt|`.
pub fn greedy_cover(inst: &SetCoverInstance) -> Option<Vec<usize>> {
    let mut covered = vec![false; inst.n_elements()];
    let mut remaining = inst.n_elements();
    let mut chosen = Vec::new();
    while remaining > 0 {
        let mut best: Option<(usize, usize)> = None; // (gain, set)
        for s in 0..inst.num_sets() {
            let gain = inst.set(s).iter().filter(|&&e| !covered[e]).count();
            if gain > 0 {
                match best {
                    None => best = Some((gain, s)),
                    Some((bg, _)) if gain > bg => best = Some((gain, s)),
                    _ => {}
                }
            }
        }
        let (_, s) = best?;
        chosen.push(s);
        for &e in inst.set(s) {
            if !covered[e] {
                covered[e] = true;
                remaining -= 1;
            }
        }
    }
    Some(chosen)
}

/// Exact minimum set cover by branch-and-bound on the lowest-index
/// uncovered element (every cover must pick one of the sets containing it).
/// Exponential in the worst case — intended for the small certified
/// instances of the hardness experiments. Returns `None` if uncoverable.
pub fn exact_cover(inst: &SetCoverInstance) -> Option<Vec<usize>> {
    if !inst.is_coverable() {
        return None;
    }
    // Element → sets containing it.
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); inst.n_elements()];
    for s in 0..inst.num_sets() {
        for &e in inst.set(s) {
            containing[e].push(s);
        }
    }
    let ub = greedy_cover(inst).expect("coverable");
    let mut best: Vec<usize> = ub;
    let mut covered = vec![0u32; inst.n_elements()];
    let mut chosen: Vec<usize> = Vec::new();

    fn recurse(
        inst: &SetCoverInstance,
        containing: &[Vec<usize>],
        covered: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
    ) {
        if chosen.len() + 1 >= best.len() {
            // Even one more set cannot beat the incumbent unless it finishes
            // the cover; handled by the branch below.
        }
        let Some(e) = covered.iter().position(|&c| c == 0) else {
            if chosen.len() < best.len() {
                *best = chosen.clone();
            }
            return;
        };
        if chosen.len() + 1 > best.len().saturating_sub(1) {
            return; // cannot improve
        }
        for &s in &containing[e] {
            chosen.push(s);
            for &el in inst.set(s) {
                covered[el] += 1;
            }
            recurse(inst, containing, covered, chosen, best);
            for &el in inst.set(s) {
                covered[el] -= 1;
            }
            chosen.pop();
        }
    }
    recurse(inst, &containing, &mut covered, &mut chosen, &mut best);
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple() -> SetCoverInstance {
        SetCoverInstance::new(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4], vec![1]])
    }

    #[test]
    fn greedy_returns_a_cover() {
        let inst = triple();
        let g = greedy_cover(&inst).unwrap();
        assert!(inst.is_cover(&g));
    }

    #[test]
    fn greedy_none_when_uncoverable() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1]]);
        assert_eq!(greedy_cover(&inst), None);
        assert_eq!(exact_cover(&inst), None);
    }

    #[test]
    fn exact_is_optimal_and_le_greedy() {
        let inst = triple();
        let g = greedy_cover(&inst).unwrap();
        let e = exact_cover(&inst).unwrap();
        assert!(inst.is_cover(&e));
        assert!(e.len() <= g.len());
        assert_eq!(e.len(), 2); // {0,1,2} + {3,4}
    }

    #[test]
    fn exact_on_classic_greedy_trap() {
        // Universe 0..6; greedy picks the big set (size 4... construct the
        // standard trap where greedy uses 3 sets but optimum is 2.
        let inst = SetCoverInstance::new(
            6,
            vec![
                vec![0, 1, 2],    // optimal half
                vec![3, 4, 5],    // optimal half
                vec![0, 3],       // decoys
                vec![1, 4, 2, 5], // greedy grabs this first (size 4)
            ],
        );
        let e = exact_cover(&inst).unwrap();
        assert_eq!(e.len(), 2);
        let g = greedy_cover(&inst).unwrap();
        assert!(g.len() >= 2);
    }

    #[test]
    fn single_set_instance() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1, 2]]);
        assert_eq!(exact_cover(&inst).unwrap(), vec![0]);
        assert_eq!(greedy_cover(&inst).unwrap(), vec![0]);
    }
}
