//! Set cover instances.

/// A set cover instance: a universe `{0, …, n_elements-1}` and a family of
/// subsets. The goal is a minimum-cardinality subfamily whose union is the
/// universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverInstance {
    n_elements: usize,
    /// Each set as a sorted, deduplicated list of element ids.
    sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Builds an instance, normalizing each set (sorted, deduplicated).
    ///
    /// # Panics
    /// Panics if a set references an element `≥ n_elements`.
    pub fn new(n_elements: usize, sets: Vec<Vec<usize>>) -> SetCoverInstance {
        let sets = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                if let Some(&max) = s.last() {
                    assert!(max < n_elements, "set references element {max} ≥ {n_elements}");
                }
                s
            })
            .collect();
        SetCoverInstance { n_elements, sets }
    }

    /// Universe size `N`.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of sets `m`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `s` (sorted).
    pub fn set(&self, s: usize) -> &[usize] {
        &self.sets[s]
    }

    /// All sets.
    pub fn sets(&self) -> &[Vec<usize>] {
        &self.sets
    }

    /// True iff set `s` contains element `e`.
    pub fn contains(&self, s: usize, e: usize) -> bool {
        self.sets[s].binary_search(&e).is_ok()
    }

    /// True iff the chosen set indices cover the whole universe.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.n_elements];
        for &s in chosen {
            for &e in &self.sets[s] {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// True iff the instance admits any cover at all.
    pub fn is_coverable(&self) -> bool {
        self.is_cover(&(0..self.num_sets()).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sets() {
        let inst = SetCoverInstance::new(4, vec![vec![2, 0, 2], vec![1, 3]]);
        assert_eq!(inst.set(0), &[0, 2]);
        assert!(inst.contains(0, 2));
        assert!(!inst.contains(0, 1));
    }

    #[test]
    #[should_panic(expected = "references element")]
    fn rejects_out_of_range() {
        SetCoverInstance::new(2, vec![vec![5]]);
    }

    #[test]
    fn cover_checks() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1], vec![2], vec![0]]);
        assert!(inst.is_cover(&[0, 1]));
        assert!(!inst.is_cover(&[0, 2]));
        assert!(inst.is_coverable());
        let bad = SetCoverInstance::new(3, vec![vec![0, 1]]);
        assert!(!bad.is_coverable());
    }
}
