//! The set cover LP, its randomized `O(log N)` rounding, and the
//! deterministic frequency rounding.
//!
//! Corollary 3.4 of the paper matches the scheduling algorithm's
//! `O(log n + log m)` factor to the integrality gap of ILP-UM, "shown by
//! using a construction following the ideas for proving the integrality gap
//! for set cover (e.g. \[27, p. 111-112\])". This module makes the set
//! cover side of that analogy executable:
//!
//! * [`lp_cover`] — the fractional relaxation
//!   `min Σ_s x_s  s.t.  Σ_{s ∋ e} x_s ≥ 1 ∀e,  x ≥ 0`, solved with the
//!   workspace simplex and certified optimal by `sst_lp::certify` before
//!   the value is trusted;
//! * [`randomized_rounding_cover`] — Vazirani's randomized rounding:
//!   `⌈c·ln N⌉` independent rounds including set `s` with probability
//!   `x_s` each, plus a greedy repair for the (low-probability) leftover —
//!   expected size `O(log N) · Opt_f`;
//! * [`frequency_rounding_cover`] — the deterministic `f`-approximation
//!   (pick every set with `x_s ≥ 1/f`, `f` = maximum element frequency).
//!
//! Together with the GF(2) family of [`crate::gap`] (fractional optimum
//! `< 2`, integral `= k`) these exhibit the `Θ(log N)` gap the reduction of
//! Theorem 3.5 transports into scheduling makespans.

use crate::instance::SetCoverInstance;
use crate::solvers::greedy_cover;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sst_lp::{certify, LpProblem, LpStatus, Relation, Sense};

/// An optimal fractional cover.
#[derive(Debug, Clone)]
pub struct FractionalCover {
    /// `x_s` per set.
    pub x: Vec<f64>,
    /// `Σ_s x_s` — the LP optimum, a lower bound on the cover number.
    pub value: f64,
}

/// Solves (and certifies) the set cover LP. `None` iff the instance is
/// uncoverable (the LP is infeasible exactly when some element appears in
/// no set).
pub fn lp_cover(inst: &SetCoverInstance) -> Option<FractionalCover> {
    if !inst.is_coverable() {
        return None;
    }
    let mut lp = LpProblem::new(Sense::Min);
    let vars: Vec<_> = (0..inst.num_sets()).map(|_| lp.add_var(1.0, Some(1.0))).collect();
    for e in 0..inst.n_elements() {
        let coeffs: Vec<_> =
            (0..inst.num_sets()).filter(|&s| inst.contains(s, e)).map(|s| (vars[s], 1.0)).collect();
        debug_assert!(!coeffs.is_empty(), "coverable instance");
        lp.add_constraint(&coeffs, Relation::Ge, 1.0);
    }
    let sol = lp.solve();
    assert_eq!(sol.status, LpStatus::Optimal, "coverable ⇒ LP feasible and bounded");
    certify(&lp, &sol, 1e-5 * (1.0 + inst.num_sets() as f64))
        .expect("simplex optimum must certify; see sst-lp::certify");
    Some(FractionalCover { x: sol.values, value: sol.objective })
}

/// Randomized rounding of the set cover LP (\[27\] §14.2): `⌈c·ln N⌉`
/// rounds, each including set `s` independently with probability `x_s`;
/// any still-uncovered element is repaired greedily. Always returns a
/// valid cover for coverable instances; `None` otherwise.
///
/// Expected size ≤ `⌈c·ln N⌉ · Opt_f + o(1)` for `c ≥ 1`; the repair set is
/// empty with probability `≥ 1 − N^{1−c}`.
pub fn randomized_rounding_cover(inst: &SetCoverInstance, c: f64, seed: u64) -> Option<Vec<usize>> {
    let frac = lp_cover(inst)?;
    let n = inst.n_elements().max(2);
    let rounds = ((c * (n as f64).ln()).ceil() as usize).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen = vec![false; inst.num_sets()];
    for _ in 0..rounds {
        for (s, &xs) in frac.x.iter().enumerate() {
            if !chosen[s] && xs > 0.0 && rng.gen::<f64>() < xs {
                chosen[s] = true;
            }
        }
    }
    let mut picked: Vec<usize> = (0..inst.num_sets()).filter(|&s| chosen[s]).collect();
    if !inst.is_cover(&picked) {
        // Greedy repair on the residual universe: keep what we have and
        // cover the rest (rare for c ≥ 1; certain to terminate because the
        // instance is coverable).
        let mut covered = vec![false; inst.n_elements()];
        for &s in &picked {
            for &e in inst.set(s) {
                covered[e] = true;
            }
        }
        let residual: Vec<usize> = (0..inst.n_elements()).filter(|&e| !covered[e]).collect();
        let remap: std::collections::HashMap<usize, usize> =
            residual.iter().enumerate().map(|(new, &old)| (old, new)).collect();
        let sets: Vec<Vec<usize>> = inst
            .sets()
            .iter()
            .map(|set| set.iter().filter_map(|e| remap.get(e).copied()).collect())
            .collect();
        let sub = SetCoverInstance::new(residual.len(), sets);
        let repair = greedy_cover(&sub).expect("coverable instance stays coverable");
        for s in repair {
            if !chosen[s] {
                chosen[s] = true;
                picked.push(s);
            }
        }
        picked.sort_unstable();
    }
    debug_assert!(inst.is_cover(&picked));
    Some(picked)
}

/// Deterministic frequency rounding: with `f` the maximum number of sets
/// any element belongs to, every fractional cover has, per element, some
/// set with `x_s ≥ 1/f`; picking all sets with `x_s ≥ 1/f` is a cover of
/// size ≤ `f · Opt_f`. Returns `(cover, f)`; `None` if uncoverable.
pub fn frequency_rounding_cover(inst: &SetCoverInstance) -> Option<(Vec<usize>, usize)> {
    let frac = lp_cover(inst)?;
    let mut freq = vec![0usize; inst.n_elements()];
    for s in 0..inst.num_sets() {
        for &e in inst.set(s) {
            freq[e] += 1;
        }
    }
    let f = freq.into_iter().max().unwrap_or(0).max(1);
    let threshold = 1.0 / f as f64 - 1e-9;
    let picked: Vec<usize> = (0..inst.num_sets()).filter(|&s| frac.x[s] >= threshold).collect();
    debug_assert!(inst.is_cover(&picked), "frequency rounding must cover");
    Some((picked, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::{gf2_gap_instance, gf2_integral_optimum};
    use crate::solvers::exact_cover;

    fn petersen_like() -> SetCoverInstance {
        // 6 elements, overlapping triples.
        SetCoverInstance::new(
            6,
            vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0], vec![1, 3, 5], vec![0, 3]],
        )
    }

    #[test]
    fn lp_lower_bounds_integral_optimum() {
        let inst = petersen_like();
        let frac = lp_cover(&inst).unwrap();
        let opt = exact_cover(&inst).unwrap().len();
        assert!(frac.value <= opt as f64 + 1e-6, "{} > {}", frac.value, opt);
        // 6 elements, sets of size ≤ 3 → LP ≥ 2.
        assert!(frac.value >= 2.0 - 1e-6);
    }

    #[test]
    fn lp_none_for_uncoverable() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1]]);
        assert!(lp_cover(&inst).is_none());
        assert!(randomized_rounding_cover(&inst, 2.0, 0).is_none());
        assert!(frequency_rounding_cover(&inst).is_none());
    }

    #[test]
    fn randomized_rounding_returns_valid_cover() {
        let inst = petersen_like();
        let frac = lp_cover(&inst).unwrap();
        for seed in 0..5 {
            let cover = randomized_rounding_cover(&inst, 2.0, seed).unwrap();
            assert!(inst.is_cover(&cover));
            // O(log N) envelope with c = 2: ⌈2 ln 6⌉ = 4 rounds → ≤ 4·LP + repair.
            assert!(
                (cover.len() as f64) <= 4.0 * frac.value + 3.0,
                "seed {seed}: cover of {} vs envelope {}",
                cover.len(),
                4.0 * frac.value + 3.0
            );
        }
    }

    #[test]
    fn tiny_c_still_covers_via_repair() {
        let inst = petersen_like();
        // c so small that rounding alone almost surely fails → repair path.
        let cover = randomized_rounding_cover(&inst, 0.01, 7).unwrap();
        assert!(inst.is_cover(&cover));
    }

    #[test]
    fn frequency_rounding_respects_f_bound() {
        let inst = petersen_like();
        let frac = lp_cover(&inst).unwrap();
        let (cover, f) = frequency_rounding_cover(&inst).unwrap();
        assert!(inst.is_cover(&cover));
        assert!(
            cover.len() as f64 <= f as f64 * frac.value + 1e-6,
            "{} > {}·{}",
            cover.len(),
            f,
            frac.value
        );
    }

    #[test]
    fn gf2_family_lp_value_stays_below_two() {
        // The certified fractional optimum of the GF(2) gap family is < 2
        // while the integral optimum is k — the Θ(log N) gap of Cor 3.4.
        for k in 2..=4u32 {
            let inst = gf2_gap_instance(k);
            let frac = lp_cover(&inst).unwrap();
            assert!(frac.value < 2.0 + 1e-6, "k={k}: LP value {}", frac.value);
            assert_eq!(gf2_integral_optimum(k), k as usize);
            let opt =
                if k <= 3 { exact_cover(&inst).unwrap().len() } else { gf2_integral_optimum(k) };
            assert_eq!(opt, k as usize);
            let gap = opt as f64 / frac.value;
            assert!(gap >= k as f64 / 2.0 - 1e-6);
        }
    }

    #[test]
    fn singleton_universe() {
        let inst = SetCoverInstance::new(1, vec![vec![0]]);
        let frac = lp_cover(&inst).unwrap();
        assert!((frac.value - 1.0).abs() < 1e-6);
        let cover = randomized_rounding_cover(&inst, 1.0, 0).unwrap();
        assert_eq!(cover, vec![0]);
    }
}
