//! Property tests for the set cover substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sst_setcover::{exact_cover, greedy_cover, reduce, schedule_from_cover, SetCoverInstance};

/// Strategy: a random coverable instance (a partition cover is always
/// inserted, so coverability is guaranteed).
fn coverable_instance() -> impl Strategy<Value = SetCoverInstance> {
    (2usize..8, vec(vec(0usize..8, 0..6), 1..6)).prop_map(|(n, extra)| {
        let mut sets: Vec<Vec<usize>> = Vec::new();
        // Guaranteed cover: two halves.
        sets.push((0..n / 2).collect());
        sets.push((n / 2..n).collect());
        for raw in extra {
            let s: Vec<usize> = raw.into_iter().map(|e| e % n).collect();
            if !s.is_empty() {
                sets.push(s);
            }
        }
        SetCoverInstance::new(n, sets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_returns_covers(inst in coverable_instance()) {
        let g = greedy_cover(&inst).expect("coverable by construction");
        prop_assert!(inst.is_cover(&g));
    }

    #[test]
    fn exact_is_minimal_among_samples(inst in coverable_instance()) {
        let e = exact_cover(&inst).expect("coverable");
        prop_assert!(inst.is_cover(&e));
        let g = greedy_cover(&inst).expect("coverable");
        prop_assert!(e.len() <= g.len());
        // No single set strictly contained in the exact cover can be
        // dropped (minimality certificate).
        for drop in 0..e.len() {
            let rest: Vec<usize> = e.iter().enumerate()
                .filter(|&(i, _)| i != drop).map(|(_, &s)| s).collect();
            prop_assert!(!inst.is_cover(&rest), "cover not minimal");
        }
    }

    #[test]
    fn reduction_schedules_from_any_cover_are_valid(
        inst in coverable_instance(),
        seed in 0u64..500,
    ) {
        let cover = greedy_cover(&inst).expect("coverable");
        let mut rng = StdRng::seed_from_u64(seed);
        let red = reduce(&inst, cover.len().max(1), &mut rng);
        let sched = schedule_from_cover(&inst, &red, &cover);
        let ms = sst_core::schedule::unrelated_makespan(&red.instance, &sched);
        prop_assert!(ms.is_ok());
        // Makespan counts setups only (all job sizes are 0).
        let setups = sst_core::schedule::setups_per_machine(&red.instance, &sched);
        prop_assert_eq!(ms.unwrap(), *setups.iter().max().unwrap() as u64);
    }
}
