//! # sst-gen — seeded workload generators
//!
//! Instance families for the experiments of DESIGN.md §4. All generators are
//! deterministic functions of their parameter struct (including the seed),
//! so every experiment row is exactly reproducible.
//!
//! The families mirror the applications the paper's introduction motivates:
//! *production systems* (changeover/cleaning/calibration times — few
//! classes, heavy setups) and *computer systems* (data transfer before
//! execution — many classes, lighter setups), plus adversarial families for
//! stress-testing the guarantees.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance};

pub mod dynamic;
pub mod families;
pub mod scenarios;

pub use dynamic::{dynamic_queue, DynamicBase, DynamicInstance, DynamicQueueParams, TraceStep};
pub use families::{correlated_unrelated, splittable_stress, uniform_zipf, ZipfParams};

/// Machine speed profile for uniform instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedProfile {
    /// All speeds 1 (identical machines).
    Identical,
    /// Speeds drawn uniformly from `[lo, hi]`.
    UniformRandom {
        /// Slowest possible speed (≥ 1).
        lo: u64,
        /// Fastest possible speed.
        hi: u64,
    },
    /// Speeds `base^0, base^1, …` cycling across machines — exercises the
    /// speed-group machinery with genuinely spread speeds.
    GeometricSpread {
        /// Ratio between consecutive tiers (≥ 2).
        base: u64,
        /// Number of tiers before cycling.
        tiers: u32,
    },
    /// A slow majority and a fast minority.
    Bimodal {
        /// Slow-machine speed.
        slow: u64,
        /// Fast-machine speed.
        fast: u64,
        /// How many machines (out of each 8) are fast.
        fast_per_8: u32,
    },
}

/// How heavy setup sizes are relative to job sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupWeight {
    /// Setups ≈ 10% of the mean job size.
    Light,
    /// Setups on the order of the mean job size.
    Moderate,
    /// Setups ≈ 10× the mean job size — batching decides everything.
    Heavy,
}

impl SetupWeight {
    fn range(self, mean_size: u64) -> (u64, u64) {
        let m = mean_size.max(1);
        match self {
            SetupWeight::Light => (1.max(m / 10), 1.max(m / 5)),
            SetupWeight::Moderate => (1.max(m / 2), 2 * m),
            SetupWeight::Heavy => (5 * m, 20 * m),
        }
    }
}

/// Parameters of the uniform-machine family.
#[derive(Debug, Clone)]
pub struct UniformParams {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Number of setup classes.
    pub k: usize,
    /// Job sizes drawn uniformly from this inclusive range.
    pub size_range: (u64, u64),
    /// Machine speed profile.
    pub speeds: SpeedProfile,
    /// Setup weight relative to job sizes.
    pub setups: SetupWeight,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniformParams {
    fn default() -> Self {
        UniformParams {
            n: 50,
            m: 5,
            k: 8,
            size_range: (1, 100),
            speeds: SpeedProfile::UniformRandom { lo: 1, hi: 8 },
            setups: SetupWeight::Moderate,
            seed: 1,
        }
    }
}

fn speeds_for(profile: SpeedProfile, m: usize, rng: &mut StdRng) -> Vec<u64> {
    match profile {
        SpeedProfile::Identical => vec![1; m],
        SpeedProfile::UniformRandom { lo, hi } => {
            (0..m).map(|_| rng.gen_range(lo.max(1)..=hi.max(lo.max(1)))).collect()
        }
        SpeedProfile::GeometricSpread { base, tiers } => {
            (0..m).map(|i| base.max(2).pow(i as u32 % tiers.max(1))).collect()
        }
        SpeedProfile::Bimodal { slow, fast, fast_per_8 } => {
            (0..m).map(|i| if (i % 8) < fast_per_8 as usize { fast } else { slow.max(1) }).collect()
        }
    }
}

/// Generates a uniform-machines instance.
pub fn uniform(params: &UniformParams) -> UniformInstance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let speeds = speeds_for(params.speeds, params.m, &mut rng);
    let (lo, hi) = params.size_range;
    let mean = (lo + hi) / 2;
    let (slo, shi) = params.setups.range(mean);
    let setups: Vec<u64> = (0..params.k).map(|_| rng.gen_range(slo..=shi)).collect();
    let jobs: Vec<Job> = (0..params.n)
        .map(|_| Job::new(rng.gen_range(0..params.k.max(1)), rng.gen_range(lo..=hi)))
        .collect();
    UniformInstance::new(speeds, setups, jobs).expect("generator produces valid instances")
}

/// Parameters of the unrelated-machine family. Processing times follow a
/// machine-effect × job-effect model with multiplicative noise — the
/// standard "correlated unrelated machines" benchmark shape.
#[derive(Debug, Clone)]
pub struct UnrelatedParams {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Number of setup classes.
    pub k: usize,
    /// Base job-effect range.
    pub size_range: (u64, u64),
    /// Machine effect: each machine scales times by a factor in this range
    /// (divided by 4, so `(4, 4)` means "identical").
    pub machine_effect_quarters: (u64, u64),
    /// Relative noise in percent applied per (job, machine) cell.
    pub noise_pct: u32,
    /// Setup weight relative to job sizes.
    pub setups: SetupWeight,
    /// Fraction (in percent) of cells made infinite (restricted-assignment
    /// flavour); 0 for dense instances.
    pub inf_pct: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnrelatedParams {
    fn default() -> Self {
        UnrelatedParams {
            n: 40,
            m: 5,
            k: 6,
            size_range: (1, 50),
            machine_effect_quarters: (2, 12),
            noise_pct: 25,
            setups: SetupWeight::Moderate,
            inf_pct: 0,
            seed: 1,
        }
    }
}

/// Generates an unrelated-machines instance.
pub fn unrelated(params: &UnrelatedParams) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let (lo, hi) = params.size_range;
    let mean = (lo + hi) / 2;
    let job_effect: Vec<u64> = (0..params.n).map(|_| rng.gen_range(lo..=hi)).collect();
    let (melo, mehi) = params.machine_effect_quarters;
    let machine_effect: Vec<u64> = (0..params.m).map(|_| rng.gen_range(melo..=mehi)).collect();
    let cell = |rng: &mut StdRng, base: u64, eff: u64| -> u64 {
        let raw = base.saturating_mul(eff).max(4) / 4;
        let noise = if params.noise_pct == 0 {
            100
        } else {
            rng.gen_range(100 - params.noise_pct.min(99)..=100 + params.noise_pct)
        };
        (raw.saturating_mul(noise as u64) / 100).max(1)
    };
    let mut ptimes: Vec<Vec<u64>> = Vec::with_capacity(params.n);
    for j in 0..params.n {
        let mut row: Vec<u64> = (0..params.m)
            .map(|i| {
                if params.inf_pct > 0 && rng.gen_range(0..100) < params.inf_pct {
                    sst_core::instance::INF
                } else {
                    cell(&mut rng, job_effect[j], machine_effect[i])
                }
            })
            .collect();
        // Keep every job runnable somewhere.
        if row.iter().all(|&p| p == sst_core::instance::INF) {
            let i = rng.gen_range(0..params.m);
            row[i] = cell(&mut rng, job_effect[j], machine_effect[i]);
        }
        ptimes.push(row);
    }
    let (slo, shi) = params.setups.range(mean);
    let setups: Vec<Vec<u64>> = (0..params.k)
        .map(|_| {
            let base = rng.gen_range(slo..=shi);
            (0..params.m).map(|i| cell(&mut rng, base, machine_effect[i])).collect()
        })
        .collect();
    let job_class: Vec<usize> = (0..params.n).map(|_| rng.gen_range(0..params.k.max(1))).collect();
    UnrelatedInstance::new(params.m, job_class, ptimes, setups)
        .expect("generator keeps every job runnable")
}

/// Generates a restricted-assignment instance with **class-uniform
/// restrictions** (the Section 3.3.1 model): each class gets a random
/// eligible machine set of size `eligible_per_class`, shared by all its
/// jobs.
pub fn ra_class_uniform(
    n: usize,
    m: usize,
    k: usize,
    eligible_per_class: usize,
    size_range: (u64, u64),
    setups: SetupWeight,
    seed: u64,
) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = size_range;
    let mean = (lo + hi) / 2;
    let e = eligible_per_class.clamp(1, m);
    let class_machines: Vec<Vec<usize>> = (0..k)
        .map(|_| {
            let mut ms: Vec<usize> = (0..m).collect();
            for i in (1..ms.len()).rev() {
                ms.swap(i, rng.gen_range(0..=i));
            }
            ms.truncate(e);
            ms.sort_unstable();
            ms
        })
        .collect();
    let (slo, shi) = setups.range(mean);
    let class_setups: Vec<u64> = (0..k).map(|_| rng.gen_range(slo..=shi)).collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k.max(1))).collect();
    let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    let eligible: Vec<Vec<usize>> =
        job_class.iter().map(|&kj| class_machines[kj].clone()).collect();
    UnrelatedInstance::restricted_assignment(
        m,
        job_class,
        sizes,
        eligible,
        class_setups,
        Some(class_machines),
    )
    .expect("generator produces valid instances")
}

/// Generates an unrelated instance with **class-uniform processing times**
/// (the Section 3.3.2 model): all jobs of a class share one row of the
/// time matrix.
pub fn class_uniform_ptimes(
    n: usize,
    m: usize,
    k: usize,
    size_range: (u64, u64),
    setups: SetupWeight,
    seed: u64,
) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = size_range;
    let mean = (lo + hi) / 2;
    let class_rows: Vec<Vec<u64>> =
        (0..k).map(|_| (0..m).map(|_| rng.gen_range(lo..=hi)).collect()).collect();
    let (slo, shi) = setups.range(mean);
    let class_setups: Vec<Vec<u64>> =
        (0..k).map(|_| (0..m).map(|_| rng.gen_range(slo..=shi)).collect()).collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k.max(1))).collect();
    let ptimes: Vec<Vec<u64>> = job_class.iter().map(|&kj| class_rows[kj].clone()).collect();
    UnrelatedInstance::new(m, job_class, ptimes, class_setups)
        .expect("generator produces valid instances")
}

/// An adversarial family for LPT (experiment E1): many classes whose jobs
/// are just below their setup size, forcing the Lemma 2.1 transform to
/// round workloads up, on machines that are nearly-but-not-quite balanced.
pub fn lpt_adversarial(m: usize, seed: u64) -> UniformInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 2 * m;
    let setups: Vec<u64> = (0..k).map(|_| 60 + rng.gen_range(0..5)).collect();
    let mut jobs = Vec::new();
    for (kk, &s) in setups.iter().enumerate() {
        // Σ small jobs slightly above s ⇒ two placeholders of size s each.
        let unit = s - 1;
        jobs.push(Job::new(kk, unit));
        jobs.push(Job::new(kk, 3));
    }
    // A couple of large loners to unbalance LPT's tie-breaking.
    jobs.push(Job::new(0, 2 * setups[0]));
    UniformInstance::new(vec![1; m], setups, jobs).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let p = UniformParams::default();
        let a = uniform(&p);
        let b = uniform(&p);
        assert_eq!(a, b);
        assert_eq!(a.n(), p.n);
        assert_eq!(a.m(), p.m);
        assert_eq!(a.num_classes(), p.k);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(&UniformParams { seed: 1, ..Default::default() });
        let b = uniform(&UniformParams { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn speed_profiles() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(speeds_for(SpeedProfile::Identical, 3, &mut rng), vec![1, 1, 1]);
        let g = speeds_for(SpeedProfile::GeometricSpread { base: 4, tiers: 3 }, 5, &mut rng);
        assert_eq!(g, vec![1, 4, 16, 1, 4]);
        let b =
            speeds_for(SpeedProfile::Bimodal { slow: 1, fast: 10, fast_per_8: 2 }, 10, &mut rng);
        assert_eq!(b.iter().filter(|&&v| v == 10).count(), 4); // idx 0,1,8,9
    }

    #[test]
    fn setup_weights_scale() {
        let (l1, l2) = SetupWeight::Light.range(100);
        let (h1, h2) = SetupWeight::Heavy.range(100);
        assert!(l2 < h1, "light {l1}..{l2} must sit below heavy {h1}..{h2}");
    }

    #[test]
    fn unrelated_has_no_dead_jobs() {
        let p = UnrelatedParams { inf_pct: 60, seed: 3, ..Default::default() };
        let inst = unrelated(&p);
        for j in 0..inst.n() {
            assert!(!inst.eligible_machines(j).is_empty(), "job {j} unschedulable");
        }
    }

    #[test]
    fn ra_generator_satisfies_model_checks() {
        let inst = ra_class_uniform(30, 6, 5, 3, (1, 40), SetupWeight::Moderate, 7);
        assert!(inst.is_restricted_assignment());
        assert!(inst.has_class_uniform_restrictions());
    }

    #[test]
    fn cupt_generator_satisfies_model_checks() {
        let inst = class_uniform_ptimes(30, 5, 4, (1, 30), SetupWeight::Light, 9);
        assert!(inst.has_class_uniform_ptimes());
    }

    #[test]
    fn adversarial_family_shape() {
        let inst = lpt_adversarial(4, 5);
        assert_eq!(inst.m(), 4);
        assert_eq!(inst.num_classes(), 8);
        assert_eq!(inst.n(), 2 * 8 + 1);
    }
}
