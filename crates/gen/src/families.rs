//! Additional structured instance families (extension of the base
//! generators): Zipf-skewed class populations, a correlation dial between
//! identical and fully unrelated machines, and heavy-class stress inputs
//! for the splittable model.
//!
//! All families are deterministic functions of their parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance};

use crate::SetupWeight;

/// Draws a class id from a Zipf(`theta`) distribution over `k` classes
/// using the inverse-CDF on precomputed cumulative weights.
fn zipf_index(cum: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen::<f64>() * cum.last().copied().unwrap_or(1.0);
    match cum.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

fn zipf_cumulative(k: usize, theta: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(k);
    let mut acc = 0.0;
    for i in 1..=k {
        acc += 1.0 / (i as f64).powf(theta);
        cum.push(acc);
    }
    cum
}

/// Parameters of the Zipf-skewed uniform family: class populations follow a
/// Zipf law (`theta = 0` → uniform spread, `theta ≥ 1.5` → one or two giant
/// classes plus a long tail of rare classes). Production systems look like
/// this: a small number of staple products dominate the order book while
/// exotic variants each appear a handful of times — exactly the regime
/// where per-class setups and batching decisions matter most.
#[derive(Debug, Clone)]
pub struct ZipfParams {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Number of classes.
    pub k: usize,
    /// Zipf exponent (`0.0` = uniform class popularity).
    pub theta: f64,
    /// Job size range.
    pub size_range: (u64, u64),
    /// Machine speeds drawn uniformly from this range.
    pub speed_range: (u64, u64),
    /// Setup weight relative to job sizes.
    pub setups: SetupWeight,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfParams {
    fn default() -> Self {
        ZipfParams {
            n: 60,
            m: 6,
            k: 12,
            theta: 1.2,
            size_range: (1, 100),
            speed_range: (1, 4),
            setups: SetupWeight::Moderate,
            seed: 1,
        }
    }
}

/// Generates a uniform instance with Zipf-skewed class popularity.
pub fn uniform_zipf(params: &ZipfParams) -> UniformInstance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let (lo, hi) = params.size_range;
    let (vlo, vhi) = params.speed_range;
    let speeds: Vec<u64> =
        (0..params.m).map(|_| rng.gen_range(vlo.max(1)..=vhi.max(vlo.max(1)))).collect();
    let mean = (lo + hi) / 2;
    let (slo, shi) = params.setups.range(mean);
    let setups: Vec<u64> = (0..params.k).map(|_| rng.gen_range(slo..=shi)).collect();
    let cum = zipf_cumulative(params.k.max(1), params.theta);
    let jobs: Vec<Job> = (0..params.n)
        .map(|_| Job::new(zipf_index(&cum, &mut rng), rng.gen_range(lo..=hi)))
        .collect();
    UniformInstance::new(speeds, setups, jobs).expect("generator produces valid instances")
}

/// Generates an unrelated instance whose machine relatedness is dialed by
/// `correlation_pct ∈ [0, 100]`: each processing time is the blend
/// `p_ij = (ρ·b_j + (100−ρ)·u_ij)/100` of a machine-independent job effect
/// `b_j` and an independent per-cell draw `u_ij` from the same range. At
/// `ρ = 100` all machines agree on every job (identical machines written as
/// an unrelated matrix); at `ρ = 0` the matrix is fully unrelated. Setups
/// blend the same way per class. Useful for measuring *where between the
/// two machine models* an algorithm's behaviour changes.
pub fn correlated_unrelated(
    n: usize,
    m: usize,
    k: usize,
    correlation_pct: u32,
    size_range: (u64, u64),
    setups: SetupWeight,
    seed: u64,
) -> UnrelatedInstance {
    let rho = correlation_pct.min(100) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = size_range;
    let mean = (lo + hi) / 2;
    let blend = |rng: &mut StdRng, base: u64, lo: u64, hi: u64| -> u64 {
        let indep = rng.gen_range(lo..=hi);
        ((rho * base + (100 - rho) * indep) / 100).max(1)
    };
    let job_effect: Vec<u64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    let ptimes: Vec<Vec<u64>> =
        (0..n).map(|j| (0..m).map(|_| blend(&mut rng, job_effect[j], lo, hi)).collect()).collect();
    let (slo, shi) = setups.range(mean);
    let setup_effect: Vec<u64> = (0..k).map(|_| rng.gen_range(slo..=shi)).collect();
    let setup_rows: Vec<Vec<u64>> = (0..k)
        .map(|kk| (0..m).map(|_| blend(&mut rng, setup_effect[kk], slo, shi)).collect())
        .collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k.max(1))).collect();
    UnrelatedInstance::new(m, job_class, ptimes, setup_rows)
        .expect("all cells finite — every job runnable")
}

/// A stress family for the splittable model: `k` classes, each a block of
/// jobs whose combined workload is several times the per-machine fair
/// share, eligible on a random majority of the `m` machines (class-uniform
/// restrictions, so both Theorem 3.10 and the splittable 2-approximation
/// accept it). Splitting such classes is *necessary* — any unsplit class
/// overloads its machine by design.
pub fn splittable_stress(
    k: usize,
    m: usize,
    jobs_per_class: usize,
    seed: u64,
) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut job_class = Vec::new();
    let mut sizes = Vec::new();
    let mut eligible = Vec::new();
    let mut class_machines = Vec::with_capacity(k);
    let mut class_setups = Vec::with_capacity(k);
    for kk in 0..k {
        // Eligible on a random ⌈2m/3⌉-subset.
        let e = m.div_ceil(3).max(1).max(2 * m / 3);
        let mut ms: Vec<usize> = (0..m).collect();
        for i in (1..ms.len()).rev() {
            ms.swap(i, rng.gen_range(0..=i));
        }
        ms.truncate(e.min(m));
        ms.sort_unstable();
        class_machines.push(ms.clone());
        class_setups.push(rng.gen_range(2..=6));
        for _ in 0..jobs_per_class {
            job_class.push(kk);
            // Workload per class ≈ jobs_per_class·mean ≫ fair share.
            sizes.push(rng.gen_range(8..=16));
            eligible.push(ms.clone());
        }
    }
    UnrelatedInstance::restricted_assignment(
        m,
        job_class,
        sizes,
        eligible,
        class_setups,
        Some(class_machines),
    )
    .expect("valid restricted-assignment instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skews() {
        let p = ZipfParams { theta: 2.0, n: 400, k: 10, ..Default::default() };
        let a = uniform_zipf(&p);
        let b = uniform_zipf(&p);
        assert_eq!(a, b);
        // Heavy skew: the most popular class holds a clear plurality.
        let mut counts = vec![0usize; a.num_classes()];
        for j in 0..a.n() {
            counts[a.job(j).class] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min_nonzero = counts.iter().copied().filter(|&c| c > 0).min().unwrap();
        assert!(max >= 5 * min_nonzero.max(1), "theta=2 should skew populations: {counts:?}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let p = ZipfParams { theta: 0.0, n: 1000, k: 5, ..Default::default() };
        let inst = uniform_zipf(&p);
        let mut counts = vec![0usize; 5];
        for j in 0..inst.n() {
            counts[inst.job(j).class] += 1;
        }
        for &c in &counts {
            assert!((120..=280).contains(&c), "uniform spread expected: {counts:?}");
        }
    }

    #[test]
    fn correlation_extremes() {
        // ρ = 100: every row of the matrix is constant (identical machines).
        let ident = correlated_unrelated(20, 4, 3, 100, (1, 50), SetupWeight::Light, 3);
        for j in 0..ident.n() {
            let p0 = ident.ptime(0, j);
            assert!((0..4).all(|i| ident.ptime(i, j) == p0), "rows must be constant");
        }
        // ρ = 0: rows genuinely vary (overwhelmingly likely at this size).
        let unrel = correlated_unrelated(20, 4, 3, 0, (1, 50), SetupWeight::Light, 3);
        let varies = (0..unrel.n()).any(|j| (1..4).any(|i| unrel.ptime(i, j) != unrel.ptime(0, j)));
        assert!(varies);
    }

    #[test]
    fn correlation_is_deterministic() {
        let a = correlated_unrelated(15, 3, 4, 50, (1, 30), SetupWeight::Moderate, 9);
        let b = correlated_unrelated(15, 3, 4, 50, (1, 30), SetupWeight::Moderate, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn splittable_stress_satisfies_model_checks() {
        let inst = splittable_stress(4, 6, 10, 11);
        assert!(inst.is_restricted_assignment());
        assert!(inst.has_class_uniform_restrictions());
        assert_eq!(inst.n(), 40);
        // Class workloads really exceed the fair share m⁻¹·total.
        let i0 = inst.eligible_machines(0)[0];
        assert!(inst.class_workload(i0, 0) >= 8 * 10);
    }
}
