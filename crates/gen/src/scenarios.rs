//! Scenario generators mirroring the paper's motivating applications
//! (Section 1: production systems with changeover times; computer systems
//! with data-transfer setups).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sst_core::instance::{Job, UniformInstance, UnrelatedInstance};

/// A production line: a few product families (classes) with **heavy
/// changeover times** (cleaning, recalibration) on machines of mixed
/// generations (uniform speeds). Typical shape: `K ≪ n`, setups ≈ 5–20×
/// the mean job, a handful of speed tiers.
pub fn production_line(n: usize, m: usize, families: usize, seed: u64) -> UniformInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Machine generations: old (1×), mainstream (2×), new (4×).
    let speeds: Vec<u64> = (0..m).map(|i| 1u64 << (i % 3)).collect();
    // Changeovers: heavy, family-dependent.
    let setups: Vec<u64> = (0..families).map(|_| rng.gen_range(200..=800)).collect();
    // Lot sizes: clustered around a family-typical size.
    let family_size: Vec<u64> = (0..families).map(|_| rng.gen_range(20..=60)).collect();
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            let f = rng.gen_range(0..families.max(1));
            let wobble = rng.gen_range(80..=120);
            Job::new(f, (family_size[f] * wobble / 100).max(1))
        })
        .collect();
    UniformInstance::new(speeds, setups, jobs).expect("valid scenario")
}

/// A compute cluster where a job's class is the **dataset** it needs: the
/// setup is the transfer time of the dataset to the node, which depends on
/// the node's network attachment (unrelated setups), while compute times
/// depend on node hardware (unrelated processing). Many classes, light to
/// moderate setups.
pub fn compute_cluster(n: usize, m: usize, datasets: usize, seed: u64) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Node compute tiers and network tiers are independent.
    let cpu: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
    let net: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=3)).collect();
    let dataset_mb: Vec<u64> = (0..datasets).map(|_| rng.gen_range(5..=50)).collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..datasets.max(1))).collect();
    let base: Vec<u64> = (0..n).map(|_| rng.gen_range(10..=80)).collect();
    // Per-cell noise (cache behaviour, co-location effects) makes the
    // matrix genuinely unrelated rather than separable.
    let ptimes: Vec<Vec<u64>> = (0..n)
        .map(|j| {
            (0..m)
                .map(|i| {
                    let noise = rng.gen_range(80..=120);
                    (base[j] * cpu[i] * noise / 100).max(1)
                })
                .collect()
        })
        .collect();
    let setups: Vec<Vec<u64>> =
        (0..datasets).map(|d| (0..m).map(|i| (dataset_mb[d] * net[i]).max(1)).collect()).collect();
    UnrelatedInstance::new(m, job_class, ptimes, setups).expect("valid scenario")
}

/// A print shop (restricted assignment with class-uniform restrictions):
/// each paper stock (class) can only run on the presses that support it,
/// and mounting a stock takes a stock-dependent setup.
pub fn print_shop(n: usize, presses: usize, stocks: usize, seed: u64) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let class_machines: Vec<Vec<usize>> = (0..stocks)
        .map(|_| {
            let cnt = rng.gen_range(1..=presses.max(1));
            let mut ms: Vec<usize> = (0..presses).collect();
            for i in (1..ms.len()).rev() {
                ms.swap(i, rng.gen_range(0..=i));
            }
            ms.truncate(cnt);
            ms.sort_unstable();
            ms
        })
        .collect();
    let class_setups: Vec<u64> = (0..stocks).map(|_| rng.gen_range(15..=60)).collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..stocks.max(1))).collect();
    let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=30)).collect();
    let eligible: Vec<Vec<usize>> = job_class.iter().map(|&k| class_machines[k].clone()).collect();
    UnrelatedInstance::restricted_assignment(
        presses,
        job_class,
        sizes,
        eligible,
        class_setups,
        Some(class_machines),
    )
    .expect("valid scenario")
}

/// A CI build farm: a job's class is the **container image** its build
/// needs. Nodes with the image already in their local cache pay **zero
/// setup**; cold nodes pay the image pull, scaled by their network tier —
/// the machine-dependent setup structure (`s_ik` with genuine zeros) that
/// separates the unrelated model from the uniform one. Build times are
/// near-uniform across nodes (same CPU generation) with small noise, so the
/// instances sit close to — but not inside — the class-uniform-times
/// special case of Theorem 3.11.
pub fn ci_build_farm(n: usize, nodes: usize, images: usize, seed: u64) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let net: Vec<u64> = (0..nodes).map(|_| rng.gen_range(1..=3)).collect();
    let image_mb: Vec<u64> = (0..images).map(|_| rng.gen_range(20..=120)).collect();
    // Each node has a warm cache of a random ~third of the images.
    let warm: Vec<Vec<bool>> =
        (0..nodes).map(|_| (0..images).map(|_| rng.gen_range(0..3) == 0).collect()).collect();
    let setups: Vec<Vec<u64>> = (0..images)
        .map(|d| {
            (0..nodes).map(|i| if warm[i][d] { 0 } else { image_mb[d] * net[i] / 10 }).collect()
        })
        .collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..images.max(1))).collect();
    let ptimes: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            let base = rng.gen_range(10..=90);
            (0..nodes).map(|_| base * rng.gen_range(95..=105) / 100).collect()
        })
        .collect();
    UnrelatedInstance::new(nodes, job_class, ptimes, setups).expect("valid scenario")
}

/// A CDN transcode farm — the **splittable** model's native scenario
/// (serve it with `instance.kind: "splittable"`): each video asset
/// (class) is a pile of equal-length chunks whose transcode work can be
/// divided across edge servers, but every server touching an asset must
/// first fetch it — the full per-asset setup, paid once per server
/// regardless of how small its share is (exactly the split model of
/// Correa et al., Section 3.3's substrate). Chunk times are
/// class-uniform per server tier (`p_ij` depends on the asset's codec and
/// the server, not the chunk), so the instance satisfies the Theorem 3.11
/// / splittable 3-approximation structure, and every class is hostable
/// whole (all cells finite).
pub fn cdn_transcode(n: usize, servers: usize, assets: usize, seed: u64) -> UnrelatedInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cpu: Vec<u64> = (0..servers).map(|_| rng.gen_range(1..=4)).collect();
    let net: Vec<u64> = (0..servers).map(|_| rng.gen_range(1..=3)).collect();
    let asset_mb: Vec<u64> = (0..assets).map(|_| rng.gen_range(30..=150)).collect();
    // Chunk transcode cost per asset: codec complexity × server tier.
    let codec: Vec<u64> = (0..assets).map(|_| rng.gen_range(2..=9)).collect();
    let class_rows: Vec<Vec<u64>> =
        (0..assets).map(|a| (0..servers).map(|i| (codec[a] * cpu[i]).max(1)).collect()).collect();
    let setups: Vec<Vec<u64>> = (0..assets)
        .map(|a| (0..servers).map(|i| (asset_mb[a] * net[i] / 10).max(1)).collect())
        .collect();
    let job_class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..assets.max(1))).collect();
    let ptimes: Vec<Vec<u64>> = job_class.iter().map(|&a| class_rows[a].clone()).collect();
    UnrelatedInstance::new(servers, job_class, ptimes, setups).expect("valid scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdn_transcode_fits_the_splittable_model() {
        let inst = cdn_transcode(48, 6, 8, 13);
        assert_eq!(inst.n(), 48);
        assert_eq!(inst.m(), 6);
        // Class-uniform processing times: the splittable 3-approximation
        // and cupt3 both accept it.
        assert!(inst.has_class_uniform_ptimes());
        // Every class hostable whole (all-finite cells).
        for k in 0..inst.num_classes() {
            assert!((0..inst.m()).any(|i| {
                inst.class_workload(i, k) != sst_core::instance::INF
                    && inst.setup(i, k) != sst_core::instance::INF
            }));
        }
        // Asset fetches are heavy relative to single chunks: splitting an
        // asset across servers is a real trade-off.
        let min_setup = (0..inst.num_classes())
            .flat_map(|k| (0..inst.m()).map(move |i| (i, k)))
            .map(|(i, k)| inst.setup(i, k))
            .min()
            .unwrap();
        assert!(min_setup >= 3, "fetches must cost something: {min_setup}");
        // Deterministic.
        assert_eq!(cdn_transcode(48, 6, 8, 13), inst);
    }

    #[test]
    fn ci_build_farm_has_zero_setup_cells_and_stays_valid() {
        let inst = ci_build_farm(40, 6, 9, 13);
        assert_eq!(inst.n(), 40);
        let mut zeros = 0usize;
        let mut positives = 0usize;
        for k in 0..inst.num_classes() {
            for i in 0..inst.m() {
                if inst.setup(i, k) == 0 {
                    zeros += 1;
                } else {
                    positives += 1;
                }
            }
        }
        assert!(zeros > 0, "warm caches must produce zero setups");
        assert!(positives > 0, "cold pulls must cost something");
        // Deterministic.
        assert_eq!(ci_build_farm(40, 6, 9, 13), inst);
    }

    #[test]
    fn production_line_is_setup_heavy() {
        let inst = production_line(60, 6, 4, 11);
        let mean_size = inst.total_job_size() / inst.n() as u64;
        let min_setup = (0..inst.num_classes()).map(|k| inst.setup(k)).min().unwrap();
        assert!(min_setup >= 3 * mean_size, "changeovers should dominate lots");
    }

    #[test]
    fn compute_cluster_valid_and_unrelated() {
        let inst = compute_cluster(50, 8, 12, 3);
        assert_eq!(inst.n(), 50);
        assert_eq!(inst.m(), 8);
        // Cross-machine times genuinely differ (unrelated, not uniform).
        let mut differs = false;
        for j in 0..inst.n() {
            let r0 = inst.ptime(0, j) as f64 / inst.ptime(1, j) as f64;
            let r1 =
                inst.ptime(0, (j + 1) % inst.n()) as f64 / inst.ptime(1, (j + 1) % inst.n()) as f64;
            if (r0 - r1).abs() > 1e-12 {
                differs = true;
            }
        }
        assert!(differs, "per-cell noise must break separability");
    }

    #[test]
    fn print_shop_matches_theorem_3_10_model() {
        let inst = print_shop(40, 5, 7, 17);
        assert!(inst.is_restricted_assignment());
        assert!(inst.has_class_uniform_restrictions());
    }
}
