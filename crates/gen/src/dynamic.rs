//! The `dynamic-queue` family: a base instance plus a **timed delta
//! trace** — the workload shape of a scheduling session (see
//! `sst_core::delta` and the portfolio's session protocol), where traffic
//! is dominated by small changes to a known instance: jobs arriving and
//! finishing, sizes being re-estimated, setups re-measured, occasionally a
//! whole new class appearing.
//!
//! Every trace is a deterministic function of its parameters. Steps carry
//! a millisecond timestamp (for replay harnesses that pace requests) and a
//! small delta batch whose job/class ids are valid *at that point of the
//! trace* (the generator tracks the evolving shape, including swap-remove
//! renumbering — it only needs the job/class counts for that).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sst_core::delta::InstanceDelta;
use sst_core::instance::{UniformInstance, UnrelatedInstance};

use crate::{uniform, unrelated, SetupWeight, UniformParams, UnrelatedParams};

/// Which machine model the base instance (and the delta payloads) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicBase {
    /// Uniform base instance, machine-independent delta payloads.
    Uniform,
    /// Unrelated base instance, per-machine row payloads.
    Unrelated,
}

/// Parameters of the `dynamic-queue` family.
#[derive(Debug, Clone)]
pub struct DynamicQueueParams {
    /// Base machine model.
    pub base: DynamicBase,
    /// Initial number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
    /// Initial number of setup classes.
    pub k: usize,
    /// Number of trace steps.
    pub steps: usize,
    /// Deltas per step (a "small change" batch; keep it well below `n` to
    /// stay in the warm-start regime).
    pub deltas_per_step: usize,
    /// Setup weight of the base instance.
    pub setups: SetupWeight,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynamicQueueParams {
    fn default() -> Self {
        DynamicQueueParams {
            base: DynamicBase::Unrelated,
            n: 40,
            m: 5,
            k: 6,
            steps: 8,
            deltas_per_step: 4,
            setups: SetupWeight::Moderate,
            seed: 1,
        }
    }
}

/// A base instance of either model.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicInstance {
    /// Uniform base.
    Uniform(UniformInstance),
    /// Unrelated base.
    Unrelated(UnrelatedInstance),
}

/// One step of a delta trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Timestamp of the step relative to trace start.
    pub at_ms: u64,
    /// The edits of this step, applied in order.
    pub deltas: Vec<InstanceDelta>,
}

fn job_times(base: DynamicBase, m: usize, rng: &mut StdRng) -> Vec<u64> {
    match base {
        DynamicBase::Uniform => vec![rng.gen_range(1..=100)],
        DynamicBase::Unrelated => (0..m).map(|_| rng.gen_range(1..=100)).collect(),
    }
}

fn setup_times(base: DynamicBase, m: usize, rng: &mut StdRng, weight: SetupWeight) -> Vec<u64> {
    let (lo, hi) = match weight {
        SetupWeight::Light => (5, 10),
        SetupWeight::Moderate => (25, 100),
        SetupWeight::Heavy => (250, 1000),
    };
    match base {
        DynamicBase::Uniform => vec![rng.gen_range(lo..=hi)],
        DynamicBase::Unrelated => (0..m).map(|_| rng.gen_range(lo..=hi)).collect(),
    }
}

/// Generates a base instance plus its timed delta trace. The delta mix is
/// arrival-leaning (45% add, 30% remove, 15% resize job, 8% resize setup,
/// 2% add class), so the instance slowly grows — the regime where warm
/// re-solves pay off most.
pub fn dynamic_queue(params: &DynamicQueueParams) -> (DynamicInstance, Vec<TraceStep>) {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xD15C0);
    let base = match params.base {
        DynamicBase::Uniform => DynamicInstance::Uniform(uniform(&UniformParams {
            n: params.n,
            m: params.m,
            k: params.k,
            setups: params.setups,
            seed: params.seed,
            ..Default::default()
        })),
        DynamicBase::Unrelated => DynamicInstance::Unrelated(unrelated(&UnrelatedParams {
            n: params.n,
            m: params.m,
            k: params.k,
            setups: params.setups,
            seed: params.seed,
            // Dense cells: deltas then cannot strand a job (the session
            // protocol rejects stranding edits, which a generator should
            // not produce).
            inf_pct: 0,
            ..Default::default()
        })),
    };
    let mut n_cur = params.n;
    let mut k_cur = params.k.max(1);
    let mut at_ms = 0u64;
    let mut trace = Vec::with_capacity(params.steps);
    for _ in 0..params.steps {
        at_ms += rng.gen_range(50..=250);
        let mut deltas = Vec::with_capacity(params.deltas_per_step);
        for _ in 0..params.deltas_per_step {
            let roll = rng.gen_range(0..100);
            let delta = if roll < 45 {
                n_cur += 1;
                InstanceDelta::AddJob {
                    class: rng.gen_range(0..k_cur),
                    times: job_times(params.base, params.m, &mut rng),
                }
            } else if roll < 75 && n_cur > 2 {
                n_cur -= 1;
                InstanceDelta::RemoveJob { job: rng.gen_range(0..n_cur + 1) }
            } else if roll < 90 && n_cur > 0 {
                InstanceDelta::ResizeJob {
                    job: rng.gen_range(0..n_cur),
                    times: job_times(params.base, params.m, &mut rng),
                }
            } else if roll < 98 {
                InstanceDelta::ResizeSetup {
                    class: rng.gen_range(0..k_cur),
                    times: setup_times(params.base, params.m, &mut rng, params.setups),
                }
            } else {
                k_cur += 1;
                InstanceDelta::AddClass {
                    times: setup_times(params.base, params.m, &mut rng, params.setups),
                }
            };
            deltas.push(delta);
        }
        trace.push(TraceStep { at_ms, deltas });
    }
    (base, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::model::{MachineModel, Uniform, Unrelated};

    #[test]
    fn traces_are_deterministic_and_apply_cleanly() {
        for base in [DynamicBase::Uniform, DynamicBase::Unrelated] {
            let params = DynamicQueueParams {
                base,
                steps: 12,
                deltas_per_step: 5,
                seed: 7,
                ..Default::default()
            };
            let (inst, trace) = dynamic_queue(&params);
            assert_eq!(dynamic_queue(&params), (inst.clone(), trace.clone()));
            assert_eq!(trace.len(), 12);
            // Timestamps strictly increase.
            assert!(trace.windows(2).all(|w| w[0].at_ms < w[1].at_ms));
            // Every delta of the trace applies without error, in order.
            match inst {
                DynamicInstance::Uniform(mut u) => {
                    for step in &trace {
                        for d in &step.deltas {
                            u = Uniform::apply_delta(&u, d).expect("trace deltas stay valid");
                        }
                    }
                }
                DynamicInstance::Unrelated(mut r) => {
                    for step in &trace {
                        for d in &step.deltas {
                            r = Unrelated::apply_delta(&r, d).expect("trace deltas stay valid");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn arrival_leaning_mix_grows_the_instance() {
        let params =
            DynamicQueueParams { steps: 40, deltas_per_step: 6, seed: 3, ..Default::default() };
        let (_, trace) = dynamic_queue(&params);
        let adds = trace
            .iter()
            .flat_map(|s| &s.deltas)
            .filter(|d| matches!(d, InstanceDelta::AddJob { .. }))
            .count();
        let removes = trace
            .iter()
            .flat_map(|s| &s.deltas)
            .filter(|d| matches!(d, InstanceDelta::RemoveJob { .. }))
            .count();
        assert!(adds > removes, "arrivals must outnumber departures: {adds} vs {removes}");
    }
}
