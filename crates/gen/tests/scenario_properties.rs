//! Shape contracts of the scenario generators: each scenario promises the
//! structural properties its docstring advertises, across sizes and seeds.

use proptest::prelude::*;
use sst_gen::scenarios::{ci_build_farm, compute_cluster, print_shop, production_line};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn production_line_shape(
        n in 4usize..80,
        m in 1usize..10,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let inst = production_line(n, m, k, seed);
        prop_assert_eq!(inst.n(), n);
        prop_assert_eq!(inst.m(), m);
        prop_assert_eq!(inst.num_classes(), k);
        // Speeds come from the three-generation ladder {1, 2, 4}.
        for &v in inst.speeds() {
            prop_assert!(v == 1 || v == 2 || v == 4);
        }
        // Changeover-heavy: every setup dwarfs the mean lot size.
        let mean = (inst.total_job_size() / n.max(1) as u64).max(1);
        for kk in 0..k {
            prop_assert!(inst.setup(kk) >= 2 * mean, "setups must be heavy");
        }
    }

    #[test]
    fn compute_cluster_shape(
        n in 4usize..60,
        m in 2usize..8,
        d in 1usize..10,
        seed in 0u64..1000,
    ) {
        let inst = compute_cluster(n, m, d, seed);
        prop_assert_eq!(inst.n(), n);
        // Fully dense: every job runs anywhere (transfers, not exclusions).
        for j in 0..inst.n() {
            prop_assert_eq!(inst.eligible_machines(j).len(), m);
        }
    }

    #[test]
    fn print_shop_always_matches_theorem_3_10(
        n in 4usize..60,
        presses in 1usize..8,
        stocks in 1usize..8,
        seed in 0u64..1000,
    ) {
        let inst = print_shop(n, presses, stocks, seed);
        prop_assert!(inst.is_restricted_assignment());
        prop_assert!(inst.has_class_uniform_restrictions());
        // Every job is schedulable despite the restrictions.
        for j in 0..inst.n() {
            prop_assert!(!inst.eligible_machines(j).is_empty());
        }
    }

    #[test]
    fn ci_build_farm_setups_machine_dependent(
        n in 4usize..60,
        nodes in 2usize..8,
        images in 2usize..10,
        seed in 0u64..1000,
    ) {
        let inst = ci_build_farm(n, nodes, images, seed);
        prop_assert_eq!(inst.n(), n);
        // Processing times near-uniform: within ±10% across nodes per job.
        for j in 0..inst.n() {
            let times: Vec<u64> = (0..nodes).map(|i| inst.ptime(i, j)).collect();
            let max = *times.iter().max().unwrap() as f64;
            let min = *times.iter().min().unwrap() as f64;
            prop_assert!(max <= 1.25 * min, "ptime spread too wide: {:?}", times);
        }
    }
}
