//! # setup-scheduling
//!
//! A Rust implementation of the approximation algorithms of
//! *Jansen, Maack, Mäcker — "Scheduling on (Un-)Related Machines with Setup
//! Times"* (IPPS 2019): `n` jobs partitioned into `K` setup classes run on
//! `m` parallel machines; a machine pays a setup whenever it processes a
//! class, and the makespan is minimized.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`core`] (`sst-core`) — instances, schedules, exact arithmetic,
//!   bounds, dual approximation, simplification, speed groups;
//! * [`algos`] (`sst-algos`) — LPT (Lemma 2.1), the PTAS (Section 2),
//!   randomized rounding (Theorem 3.3), the 2-/3-approximations of
//!   Sections 3.3.1/3.3.2, exact branch-and-bound, greedy baselines;
//! * [`lp`] (`sst-lp`) — the dense simplex solver;
//! * [`setcover`] (`sst-setcover`) — the hardness substrate (Theorem 3.5);
//! * [`gen`] (`sst-gen`) — seeded workload generators and scenarios;
//! * [`portfolio`] (`sst-portfolio`) — the solver-portfolio service:
//!   feature-based algorithm selection, deadline racing with cross-seeded
//!   incumbents, and the NDJSON protocol behind `sst serve`.
//!
//! ## Quickstart
//!
//! ```
//! use setup_scheduling::prelude::*;
//!
//! // Two machines (speeds 2 and 1), two classes with setup sizes 3 and 5.
//! let inst = UniformInstance::new(
//!     vec![2, 1],
//!     vec![3, 5],
//!     vec![Job::new(0, 4), Job::new(1, 6), Job::new(0, 2)],
//! )
//! .unwrap();
//!
//! // Lemma 2.1: the ~4.74-approximation.
//! let (schedule, makespan) = lpt_with_setups_makespan(&inst);
//! assert_eq!(schedule.n(), 3);
//!
//! // The PTAS does at least as well for small ε.
//! let ptas = ptas_uniform(&inst, &PtasConfig::default());
//! assert!(ptas.makespan <= makespan);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sst_algos as algos;
pub use sst_core as core;
pub use sst_gen as gen;
pub use sst_lp as lp;
pub use sst_portfolio as portfolio;
pub use sst_setcover as setcover;

/// The most common imports in one place.
pub mod prelude {
    pub use sst_algos::annealing::{anneal_uniform, anneal_unrelated, AnnealConfig};
    pub use sst_algos::configlp::{config_lp_lower_bound, ConfigLpLimits};
    pub use sst_algos::cupt::solve_class_uniform_ptimes;
    pub use sst_algos::exact::{exact_uniform, exact_unrelated, exact_unrelated_parallel};
    pub use sst_algos::identical::{batch_lpt_identical, wrap_identical};
    pub use sst_algos::lpt::{lpt_with_setups, lpt_with_setups_makespan, LPT_FACTOR};
    pub use sst_algos::ptas::{ptas_uniform, PtasConfig};
    pub use sst_algos::ra::solve_ra_class_uniform;
    pub use sst_algos::rounding::{solve_unrelated_randomized, RoundingConfig};
    pub use sst_algos::splittable::{
        solve_splittable_class_uniform_ptimes, solve_splittable_ra_class_uniform, SplitSchedule,
        SplitShare,
    };
    pub use sst_core::bounds::{uniform_lower_bound, unrelated_lower_bound};
    pub use sst_core::instance::{Job, UniformInstance, UnrelatedInstance, INF};
    pub use sst_core::ratio::Ratio;
    pub use sst_core::schedule::{
        uniform_loads, uniform_makespan, unrelated_loads, unrelated_makespan, Schedule,
    };
    pub use sst_core::timeline::{render_gantt, render_gantt_svg, Timeline};
    pub use sst_portfolio::{race, ProblemInstance, RaceConfig};
}
