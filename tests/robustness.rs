//! Failure injection: degenerate and adversarially malformed inputs must
//! produce typed errors or valid schedules — never panics (other than the
//! documented precondition panics) and never silently wrong loads.

use setup_scheduling::core::error::ScheduleError;
use setup_scheduling::core::timeline::TimelineError;
use setup_scheduling::gen::{SetupWeight, UnrelatedParams};
use setup_scheduling::prelude::*;

#[test]
fn zero_size_jobs_everywhere() {
    // All-zero jobs still pay setups; every algorithm must keep loads exact.
    let inst = UniformInstance::identical(
        3,
        vec![7, 3],
        vec![Job::new(0, 0), Job::new(0, 0), Job::new(1, 0)],
    )
    .unwrap();
    let sched = lpt_with_setups(&inst);
    let ms = uniform_makespan(&inst, &sched).unwrap();
    assert!(ms >= Ratio::new(3, 1), "setups must be paid: {ms}");
    let tl = Timeline::from_uniform(&inst, &sched).unwrap();
    tl.validate().unwrap();
}

#[test]
fn zero_setup_classes_behave_like_classic_scheduling() {
    let inst = UniformInstance::identical(
        2,
        vec![0],
        vec![Job::new(0, 5), Job::new(0, 5), Job::new(0, 5), Job::new(0, 5)],
    )
    .unwrap();
    let exact = exact_uniform(&inst, 1 << 20);
    assert_eq!(exact.makespan, Ratio::new(10, 1));
    let (_, lpt) = lpt_with_setups_makespan(&inst);
    assert_eq!(lpt, Ratio::new(10, 1));
}

#[test]
fn empty_classes_cost_nothing() {
    // Classes 1 and 2 have no jobs: no algorithm may pay their setups.
    let inst = UniformInstance::identical(
        2,
        vec![1, 1_000_000, 1_000_000],
        vec![Job::new(0, 4), Job::new(0, 4)],
    )
    .unwrap();
    let (_, ms) = lpt_with_setups_makespan(&inst);
    assert!(ms <= Ratio::new(10, 1), "phantom setup paid: {ms}");
    let w = wrap_identical(&inst);
    assert!(uniform_makespan(&inst, &w).unwrap() <= Ratio::new(10, 1));
}

#[test]
fn inf_heavy_unrelated_instances_stay_schedulable() {
    // 70% infinite cells: generators guarantee feasibility; the rounding
    // pipeline must return a valid schedule and certified T*.
    let inst = setup_scheduling::gen::unrelated(&UnrelatedParams {
        n: 30,
        m: 5,
        k: 6,
        inf_pct: 70,
        setups: SetupWeight::Moderate,
        seed: 13,
        ..Default::default()
    });
    let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 1 });
    let ms = unrelated_makespan(&inst, &res.schedule).expect("must be valid despite INF maze");
    assert_eq!(ms, res.makespan);
    let tl = Timeline::from_unrelated(&inst, &res.schedule).unwrap();
    tl.validate().unwrap();
}

#[test]
fn schedule_evaluator_rejects_all_malformed_shapes() {
    let inst = UniformInstance::identical(2, vec![1], vec![Job::new(0, 3)]).unwrap();
    assert!(matches!(
        uniform_loads(&inst, &Schedule::new(vec![])),
        Err(ScheduleError::WrongLength { .. })
    ));
    assert!(matches!(
        uniform_loads(&inst, &Schedule::new(vec![9])),
        Err(ScheduleError::MachineOutOfRange { .. })
    ));
    // Timeline propagates the same failures instead of laying out garbage.
    assert!(Timeline::from_uniform(&inst, &Schedule::new(vec![9])).is_err());
}

#[test]
fn unrelated_inf_assignment_is_a_typed_error_not_a_big_number() {
    let inst = UnrelatedInstance::new(2, vec![0], vec![vec![INF, 3]], vec![vec![1, 1]]).unwrap();
    let bad = Schedule::new(vec![0]);
    assert!(matches!(
        unrelated_loads(&inst, &bad),
        Err(ScheduleError::InfiniteProcessingTime { job: 0, machine: 0 })
    ));
    assert!(Timeline::from_unrelated(&inst, &bad).is_err());
}

#[test]
fn timeline_error_messages_name_the_culprit() {
    // A timeline built by the constructors always validates…
    let tl = Timeline::from_unrelated(
        &UnrelatedInstance::new(1, vec![0], vec![vec![2]], vec![vec![1]]).unwrap(),
        &Schedule::new(vec![0]),
    )
    .unwrap();
    assert_eq!(tl.validate(), Ok(()));
    // …and the error variants (reachable only through in-crate tampering,
    // covered by sst-core's unit tests) carry actionable positions.
    let err = TimelineError::SplitBatch { machine: 3, class: 7 };
    assert!(err.to_string().contains("machine 3"));
    assert!(err.to_string().contains("class 7"));
    let err = TimelineError::JobBeforeSetup { machine: 1, job: 9 };
    assert!(err.to_string().contains("job 9"));
}

#[test]
fn annealer_survives_hostile_configs() {
    let inst = UniformInstance::identical(2, vec![1], vec![Job::new(0, 4)]).unwrap();
    let start = Schedule::new(vec![0]);
    for cfg in [
        AnnealConfig { iterations: 1, initial_temp_fraction: 0.0, ..Default::default() },
        AnnealConfig { iterations: 100, cooling: 0.0, ..Default::default() },
        AnnealConfig { iterations: 100, class_move_prob: 1.0, ..Default::default() },
    ] {
        let res = anneal_uniform(&inst, &start, &cfg);
        uniform_makespan(&inst, &res.schedule).expect("always valid");
    }
}

#[test]
fn splittable_solver_handles_degenerate_classes() {
    // A class whose every job has size zero still needs a setup share.
    let inst = UnrelatedInstance::restricted_assignment(
        2,
        vec![0, 1],
        vec![0, 9],
        vec![vec![0, 1], vec![0, 1]],
        vec![4, 1],
        None,
    )
    .unwrap();
    let res = solve_splittable_ra_class_uniform(&inst);
    res.schedule.validate(&inst).unwrap();
    assert!(res.makespan >= 4.0 - 1e-9, "zero-size class still pays setup somewhere");
}

#[test]
fn single_machine_everything_collapses_gracefully() {
    let inst =
        UniformInstance::new(vec![3], vec![2, 5], vec![Job::new(0, 6), Job::new(1, 9)]).unwrap();
    let (s1, m1) = lpt_with_setups_makespan(&inst);
    let exact = exact_uniform(&inst, 1 << 16);
    assert_eq!(m1, exact.makespan, "single machine: every algorithm is exact");
    assert_eq!(s1.assignment(), &[0, 0]);
    assert_eq!(m1, Ratio::new(22, 3));
}
