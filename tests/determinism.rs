//! Determinism contract: every randomized or parallel component in the
//! workspace is a pure function of (input, seed/config). This is what makes
//! EXPERIMENTS.md's "same seeds → same rows" promise true.

use setup_scheduling::gen::{
    correlated_unrelated, splittable_stress, uniform_zipf, SetupWeight, UniformParams,
    UnrelatedParams, ZipfParams,
};
use setup_scheduling::prelude::*;
use setup_scheduling::setcover::{gf2_gap_instance, randomized_rounding_cover, reduce};

#[test]
fn generators_are_pure_functions_of_their_seeds() {
    let up = UniformParams { seed: 77, ..Default::default() };
    assert_eq!(setup_scheduling::gen::uniform(&up), setup_scheduling::gen::uniform(&up));
    let rp = UnrelatedParams { seed: 77, inf_pct: 30, ..Default::default() };
    assert_eq!(setup_scheduling::gen::unrelated(&rp), setup_scheduling::gen::unrelated(&rp));
    let zp = ZipfParams { seed: 77, ..Default::default() };
    assert_eq!(uniform_zipf(&zp), uniform_zipf(&zp));
    assert_eq!(
        correlated_unrelated(20, 4, 3, 40, (1, 30), SetupWeight::Light, 5),
        correlated_unrelated(20, 4, 3, 40, (1, 30), SetupWeight::Light, 5)
    );
    assert_eq!(splittable_stress(3, 5, 8, 5), splittable_stress(3, 5, 8, 5));
}

#[test]
fn randomized_rounding_is_seed_deterministic() {
    let inst = setup_scheduling::gen::unrelated(&UnrelatedParams {
        n: 30,
        m: 5,
        seed: 9,
        ..Default::default()
    });
    let a = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 4 });
    let b = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 4 });
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.t_star, b.t_star);
}

#[test]
fn annealing_is_seed_deterministic_across_runs() {
    let inst = setup_scheduling::gen::uniform(&UniformParams { seed: 3, ..Default::default() });
    let start = lpt_with_setups(&inst);
    let cfg = AnnealConfig { iterations: 4000, seed: 11, ..AnnealConfig::default() };
    let a = anneal_uniform(&inst, &start, &cfg);
    let b = anneal_uniform(&inst, &start, &cfg);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.improvements, b.improvements);
}

#[test]
fn parallel_exact_result_value_matches_sequential_always() {
    // The parallel B&B may find *a different* optimal schedule, but the
    // optimal value is unique; run several seeds to cover thread schedules.
    let inst = setup_scheduling::gen::unrelated(&UnrelatedParams {
        n: 9,
        m: 3,
        k: 3,
        seed: 21,
        ..Default::default()
    });
    let seq = exact_unrelated(&inst, 1 << 24);
    assert!(seq.complete);
    for threads in [2usize, 3, 4] {
        let par = exact_unrelated_parallel(&inst, 1 << 24, threads);
        assert!(par.complete);
        assert_eq!(par.makespan, seq.makespan, "threads = {threads}");
    }
}

#[test]
fn setcover_reduction_is_rng_deterministic() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let sc = gf2_gap_instance(3);
    let mut r1 = StdRng::seed_from_u64(5);
    let mut r2 = StdRng::seed_from_u64(5);
    let a = reduce(&sc, 2, &mut r1);
    let b = reduce(&sc, 2, &mut r2);
    assert_eq!(a.instance, b.instance);
    // Rounding covers too.
    assert_eq!(randomized_rounding_cover(&sc, 2.0, 8), randomized_rounding_cover(&sc, 2.0, 8));
}

#[test]
fn splittable_solver_is_deterministic() {
    let inst = splittable_stress(4, 6, 10, 2);
    let a = solve_splittable_ra_class_uniform(&inst);
    let b = solve_splittable_ra_class_uniform(&inst);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.t_star, b.t_star);
}

#[test]
fn config_lp_bound_is_deterministic() {
    let inst = setup_scheduling::gen::unrelated(&UnrelatedParams {
        n: 9,
        m: 3,
        k: 3,
        seed: 33,
        ..Default::default()
    });
    let l = ConfigLpLimits::default();
    assert_eq!(config_lp_lower_bound(&inst, &l), config_lp_lower_bound(&inst, &l));
}
