//! Cross-crate integration tests for the extension modules: timelines,
//! splittable schedules, identical-machine algorithms, annealing, and the
//! set cover LP — exercised together through the façade crate the way a
//! downstream user would.

use setup_scheduling::algos::identical::wrap_capacity;
use setup_scheduling::algos::local_search::improve_uniform;
use setup_scheduling::gen::scenarios::production_line;
use setup_scheduling::gen::{
    correlated_unrelated, splittable_stress, uniform_zipf, SetupWeight, ZipfParams,
};
use setup_scheduling::prelude::*;
use setup_scheduling::setcover::{
    greedy_cover, lp_cover, randomized_rounding_cover, SetCoverInstance,
};

#[test]
fn every_uniform_algorithm_agrees_with_its_timeline() {
    // One instance, four algorithms: the timeline layer must agree with
    // the evaluator for each of them.
    let inst = uniform_zipf(&ZipfParams {
        n: 30,
        m: 4,
        k: 6,
        theta: 1.0,
        speed_range: (1, 1),
        ..Default::default()
    });
    let schedules = vec![
        lpt_with_setups(&inst),
        wrap_identical(&inst),
        batch_lpt_identical(&inst),
        anneal_uniform(&inst, &lpt_with_setups(&inst), &AnnealConfig::default()).schedule,
    ];
    for sched in schedules {
        let tl = Timeline::from_uniform(&inst, &sched).expect("valid schedule");
        tl.validate().expect("batching invariants");
        assert_eq!(tl.makespan(), uniform_makespan(&inst, &sched).expect("valid"));
    }
}

#[test]
fn split_vs_unsplit_vs_exact_sandwich() {
    // T*(split LP) ≤ split optimum ≤ integral optimum ≤ unsplit rounding,
    // and the measured split makespan sits within 2·T*.
    let inst = splittable_stress(3, 4, 6, 42);
    let split = solve_splittable_ra_class_uniform(&inst);
    let unsplit = solve_ra_class_uniform(&inst);
    let exact = exact_unrelated(&inst, 1 << 24);
    assert!(exact.complete, "exact reference must finish at this size");
    assert!(split.t_star as f64 <= exact.makespan as f64 + 1e-9);
    assert!(split.makespan <= 2.0 * split.t_star as f64 + 1e-6);
    assert!(unsplit.makespan <= 2 * unsplit.t_star);
    assert!(unsplit.t_star <= exact.makespan);
}

#[test]
fn annealing_as_post_optimizer_never_hurts_any_start() {
    let inst = production_line(40, 5, 8, 3);
    for (name, start) in [
        ("lpt", lpt_with_setups(&inst)),
        ("greedy", setup_scheduling::algos::list::greedy_uniform(&inst)),
    ] {
        let before = uniform_makespan(&inst, &start).unwrap();
        let res = anneal_uniform(
            &inst,
            &start,
            &AnnealConfig { iterations: 8_000, seed: 1, ..AnnealConfig::default() },
        );
        let after = uniform_makespan(&inst, &res.schedule).unwrap();
        assert!(after <= before, "{name}: annealing worsened {before} → {after}");
    }
}

#[test]
fn annealing_and_descent_agree_on_validity() {
    let inst = production_line(30, 4, 6, 9);
    let start = setup_scheduling::algos::list::greedy_uniform(&inst);
    let descended = improve_uniform(&inst, &start, 200).schedule;
    let annealed = anneal_uniform(&inst, &descended, &AnnealConfig::default()).schedule;
    let tl = Timeline::from_uniform(&inst, &annealed).expect("valid");
    tl.validate().expect("still a batched schedule");
}

#[test]
fn wrap_capacity_bound_holds_across_zipf_skews() {
    for theta in [0.0, 0.8, 1.6] {
        for seed in 0..4u64 {
            let inst = uniform_zipf(&ZipfParams {
                n: 60,
                m: 6,
                k: 10,
                theta,
                speed_range: (1, 1),
                setups: SetupWeight::Heavy,
                seed,
                ..Default::default()
            });
            let sched = wrap_identical(&inst);
            let ms = uniform_makespan(&inst, &sched).unwrap();
            assert!(
                ms <= Ratio::from_int(wrap_capacity(&inst)),
                "theta {theta} seed {seed}: {ms} > {}",
                wrap_capacity(&inst)
            );
        }
    }
}

#[test]
fn correlation_dial_interpolates_algorithm_choice() {
    // At ρ = 100 the unrelated matrix is secretly identical machines: the
    // randomized rounding and the greedy should both behave; at ρ = 0 the
    // rounding's certified bound still holds. This is a smoke test that
    // the dial produces valid instances across its range.
    for rho in [0u32, 50, 100] {
        let inst = correlated_unrelated(24, 4, 5, rho, (1, 30), SetupWeight::Moderate, 4);
        let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 9 });
        let env = (inst.n() as f64).ln() + (inst.m() as f64).ln();
        assert!(
            (res.makespan as f64) <= res.t_star as f64 * (2.0 * env + 4.0),
            "rho {rho}: makespan {} far above envelope (T*={})",
            res.makespan,
            res.t_star
        );
    }
}

#[test]
fn setcover_lp_chain_greedy_vs_rounding_vs_fractional() {
    // Fractional ≤ exact ≤ greedy ≤ H_N · exact, rounding covers.
    let inst = SetCoverInstance::new(
        8,
        vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![5, 6], vec![6, 7, 0], vec![1, 4, 7]],
    );
    let frac = lp_cover(&inst).expect("coverable");
    let greedy = greedy_cover(&inst).expect("coverable");
    assert!(frac.value <= greedy.len() as f64 + 1e-9);
    let rounded = randomized_rounding_cover(&inst, 2.0, 11).expect("coverable");
    assert!(inst.is_cover(&rounded));
    let h8: f64 = (1..=8).map(|i| 1.0 / i as f64).sum();
    assert!(greedy.len() as f64 <= h8 * frac.value + 1.0);
}

#[test]
fn splittable_shares_render_consistent_machine_loads() {
    let inst = splittable_stress(4, 6, 10, 7);
    let res = solve_splittable_ra_class_uniform(&inst);
    let loads = res.schedule.machine_loads(&inst);
    let max = loads.iter().copied().fold(0.0, f64::max);
    assert!((max - res.makespan).abs() < 1e-9);
    // Every share's machine is eligible for its class.
    for (k, row) in res.schedule.shares().iter().enumerate() {
        for share in row {
            assert!(
                inst.class_workload(share.machine, k) != INF,
                "class {k} share on ineligible machine {}",
                share.machine
            );
        }
    }
}

#[test]
fn ci_build_farm_zero_setups_favor_warm_nodes() {
    // The scenario's point: warm caches (s_ik = 0) make machine choice
    // matter beyond processing times. The rounding pipeline must exploit
    // them and still certify against T*.
    let inst = setup_scheduling::gen::scenarios::ci_build_farm(30, 5, 8, 21);
    let stats = setup_scheduling::core::stats::unrelated_stats(&inst);
    assert_eq!(stats.n, 30);
    assert!(stats.density > 0.999, "farm matrices are dense");
    let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 2 });
    let ms = unrelated_makespan(&inst, &res.schedule).unwrap();
    assert_eq!(ms, res.makespan);
    assert!(res.t_star <= res.makespan);
}

#[test]
fn stats_predict_the_e8_story() {
    // Heavy-setup instances must show a larger setup-to-work ratio than
    // light ones — the statistic the E8/E10 ablations pivot on.
    use setup_scheduling::core::stats::uniform_stats;
    use setup_scheduling::gen::{SetupWeight, UniformParams};
    let light = uniform_stats(&setup_scheduling::gen::uniform(&UniformParams {
        setups: SetupWeight::Light,
        seed: 8,
        ..Default::default()
    }));
    let heavy = uniform_stats(&setup_scheduling::gen::uniform(&UniformParams {
        setups: SetupWeight::Heavy,
        seed: 8,
        ..Default::default()
    }));
    assert!(
        heavy.setup_to_work > 4.0 * light.setup_to_work,
        "heavy {} vs light {}",
        heavy.setup_to_work,
        light.setup_to_work
    );
}
