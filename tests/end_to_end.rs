//! End-to-end pipelines across crates: generators → algorithms → exact
//! evaluation, asserting each paper guarantee on concrete seeds.

use setup_scheduling::algos::cupt::solve_class_uniform_ptimes;
use setup_scheduling::algos::exact::{exact_uniform, exact_unrelated};
use setup_scheduling::algos::lpt::{lpt_with_setups_makespan, LPT_FACTOR};
use setup_scheduling::algos::ptas::{ptas_uniform, PtasConfig};
use setup_scheduling::algos::ra::solve_ra_class_uniform;
use setup_scheduling::algos::rounding::{solve_unrelated_randomized, RoundingConfig};
use setup_scheduling::gen::{self, SetupWeight, SpeedProfile, UniformParams, UnrelatedParams};
use setup_scheduling::prelude::*;

#[test]
fn uniform_pipeline_lpt_vs_exact() {
    for seed in 0..5u64 {
        let inst = gen::uniform(&UniformParams {
            n: 10,
            m: 3,
            k: 3,
            size_range: (1, 30),
            speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
            setups: SetupWeight::Moderate,
            seed,
        });
        let (sched, ms) = lpt_with_setups_makespan(&inst);
        assert_eq!(uniform_makespan(&inst, &sched).unwrap(), ms);
        let exact = exact_uniform(&inst, 1 << 24);
        assert!(exact.complete, "seed {seed}: exact search must finish");
        assert!(exact.makespan <= ms, "exact beats any approximation");
        let ratio = ms.to_f64() / exact.makespan.to_f64();
        assert!(ratio <= LPT_FACTOR + 1e-9, "seed {seed}: LPT ratio {ratio}");
    }
}

#[test]
fn uniform_pipeline_ptas_beats_lemma_bound() {
    for seed in 0..3u64 {
        let inst = gen::uniform(&UniformParams {
            n: 9,
            m: 3,
            k: 3,
            size_range: (1, 20),
            speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
            setups: SetupWeight::Light,
            seed: 40 + seed,
        });
        let res = ptas_uniform(&inst, &PtasConfig { q: 4, node_limit: 20_000_000 });
        let exact = exact_uniform(&inst, 1 << 24);
        assert!(exact.complete);
        let ratio = res.makespan.to_f64() / exact.makespan.to_f64();
        // ε = 1/4 with the lemmas' constants: comfortably under 1.75 in
        // practice on these sizes.
        assert!(ratio <= 1.75, "seed {seed}: PTAS ratio {ratio}");
    }
}

#[test]
fn unrelated_pipeline_rounding_certified() {
    for seed in 0..3u64 {
        let inst = gen::unrelated(&UnrelatedParams {
            n: 24,
            m: 4,
            k: 5,
            seed: 60 + seed,
            ..Default::default()
        });
        let res = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed });
        // Schedule must be valid and match its reported makespan.
        assert_eq!(unrelated_makespan(&inst, &res.schedule).unwrap(), res.makespan);
        // T* certifies a lower bound: verify against exact on this size.
        let exact = exact_unrelated(&inst, 1 << 26);
        if exact.complete {
            assert!(res.t_star <= exact.makespan, "seed {seed}: T* not a lower bound");
        }
        // The log-envelope with a generous constant.
        let envelope = ((inst.n() as f64).ln() + (inst.m() as f64).ln()) * 8.0;
        assert!(
            (res.makespan as f64) <= envelope * res.t_star as f64,
            "seed {seed}: ratio {} vs envelope {envelope}",
            res.makespan as f64 / res.t_star as f64
        );
    }
}

#[test]
fn ra_pipeline_two_approx() {
    for seed in 0..4u64 {
        let inst = gen::ra_class_uniform(30, 5, 6, 3, (1, 30), SetupWeight::Moderate, 80 + seed);
        let res = solve_ra_class_uniform(&inst);
        assert_eq!(unrelated_makespan(&inst, &res.schedule).unwrap(), res.makespan);
        assert!(res.makespan <= 2 * res.t_star, "seed {seed}: {} > 2·{}", res.makespan, res.t_star);
    }
}

#[test]
fn cupt_pipeline_three_approx() {
    for seed in 0..4u64 {
        let inst = gen::class_uniform_ptimes(30, 5, 5, (1, 25), SetupWeight::Moderate, 90 + seed);
        let res = solve_class_uniform_ptimes(&inst);
        assert_eq!(unrelated_makespan(&inst, &res.schedule).unwrap(), res.makespan);
        assert!(res.makespan <= 3 * res.t_star, "seed {seed}: {} > 3·{}", res.makespan, res.t_star);
    }
}

#[test]
fn scenarios_run_through_their_algorithms() {
    let line = gen::scenarios::production_line(40, 6, 4, 1);
    let (s, ms) = lpt_with_setups_makespan(&line);
    assert_eq!(s.n(), 40);
    assert!(ms > Ratio::ZERO);

    let cluster = gen::scenarios::compute_cluster(24, 4, 6, 1);
    let res = solve_unrelated_randomized(&cluster, &RoundingConfig::default());
    assert!(res.makespan >= res.t_star);

    let shop = gen::scenarios::print_shop(24, 4, 5, 1);
    let res = solve_ra_class_uniform(&shop);
    assert!(res.makespan <= 2 * res.t_star);
}

#[test]
fn cross_algorithm_consistency_on_shared_instance() {
    // One RA-with-class-uniform-restrictions instance is ALSO a valid
    // unrelated instance: the Theorem 3.3 pipeline must apply too, and both
    // must respect the same exact optimum.
    let inst = gen::ra_class_uniform(14, 3, 3, 2, (1, 15), SetupWeight::Moderate, 123);
    let ra = solve_ra_class_uniform(&inst);
    let rr = solve_unrelated_randomized(&inst, &RoundingConfig::default());
    let exact = exact_unrelated(&inst, 1 << 26);
    assert!(exact.complete);
    assert!(exact.makespan <= ra.makespan);
    assert!(exact.makespan <= rr.makespan);
    assert!(ra.t_star <= exact.makespan);
    assert!(rr.t_star <= exact.makespan);
}
