//! Algorithm-vs-algorithm consistency matrix: on shared instances, every
//! algorithm's output is valid, ordered sensibly against the exact optimum,
//! and the extensions (MULTIFIT, local search) never violate their
//! contracts.

use setup_scheduling::algos::exact::exact_uniform;
use setup_scheduling::algos::list::greedy_uniform;
use setup_scheduling::algos::local_search::improve_uniform;
use setup_scheduling::algos::lpt::lpt_with_setups_makespan;
use setup_scheduling::algos::multifit::multifit_uniform;
use setup_scheduling::algos::ptas::{ptas_uniform, PtasConfig};
use setup_scheduling::gen::{self, SetupWeight, SpeedProfile, UniformParams};
use setup_scheduling::prelude::*;

fn family(seed: u64, setups: SetupWeight) -> UniformInstance {
    gen::uniform(&UniformParams {
        n: 11,
        m: 3,
        k: 4,
        size_range: (1, 25),
        speeds: SpeedProfile::UniformRandom { lo: 1, hi: 4 },
        setups,
        seed,
    })
}

#[test]
fn all_uniform_algorithms_dominate_exact_and_respect_bounds() {
    for (seed, setups) in
        [(1u64, SetupWeight::Light), (2, SetupWeight::Moderate), (3, SetupWeight::Heavy)]
    {
        let inst = family(seed, setups);
        let exact = exact_uniform(&inst, 1 << 25);
        assert!(exact.complete, "reference optimum must certify");
        let opt = exact.makespan;

        let (_, lpt) = lpt_with_setups_makespan(&inst);
        let grd = uniform_makespan(&inst, &greedy_uniform(&inst)).unwrap();
        let mf = multifit_uniform(&inst, 8).makespan;
        let ptas = ptas_uniform(&inst, &PtasConfig { q: 4, node_limit: 20_000_000 }).makespan;

        for (name, ms) in [("lpt", lpt), ("greedy", grd), ("multifit", mf), ("ptas", ptas)] {
            assert!(ms >= opt, "{name} beat the certified optimum on seed {seed}: {ms} < {opt}");
        }
        // Guaranteed algorithms respect their factors vs the true optimum.
        assert!(lpt.to_f64() <= 4.7321 * opt.to_f64() * (1.0 + 1e-12));
        assert!(ptas.to_f64() <= 1.75 * opt.to_f64() * (1.0 + 1e-12));
    }
}

#[test]
fn local_search_only_improves_every_start() {
    let inst = family(9, SetupWeight::Moderate);
    for start in
        [Schedule::new(vec![0; inst.n()]), greedy_uniform(&inst), lpt_with_setups_makespan(&inst).0]
    {
        let before = uniform_makespan(&inst, &start).unwrap();
        let res = improve_uniform(&inst, &start, 200);
        let after = uniform_makespan(&inst, &res.schedule).unwrap();
        assert!(after <= before);
    }
}

#[test]
fn multifit_is_competitive_with_lpt_on_batching_instances() {
    // Heavy setups: MULTIFIT's batch-first phase should match or beat the
    // placeholder transform on most seeds; assert it's never catastrophic
    // (within 2× of LPT across the sweep).
    for seed in 0..6u64 {
        let inst = family(100 + seed, SetupWeight::Heavy);
        let (_, lpt) = lpt_with_setups_makespan(&inst);
        let mf = multifit_uniform(&inst, 8).makespan;
        assert!(mf.to_f64() <= 2.0 * lpt.to_f64(), "seed {seed}: multifit {mf} vs lpt {lpt}");
    }
}

#[test]
fn identical_algorithms_join_the_matrix() {
    // On identical machines every uniform algorithm plus the [24]-lineage
    // pair must dominate the certified optimum and respect factor 4.
    for seed in [5u64, 6, 7] {
        let inst = gen::uniform(&UniformParams {
            n: 10,
            m: 3,
            k: 4,
            size_range: (1, 25),
            speeds: SpeedProfile::Identical,
            setups: SetupWeight::Moderate,
            seed,
        });
        let exact = exact_uniform(&inst, 1 << 25);
        assert!(exact.complete);
        let opt = exact.makespan;
        let wrap = uniform_makespan(&inst, &wrap_identical(&inst)).unwrap();
        let blpt = uniform_makespan(&inst, &batch_lpt_identical(&inst)).unwrap();
        for (name, ms) in [("wrap", wrap), ("batch-lpt", blpt)] {
            assert!(ms >= opt, "{name} beat the optimum on seed {seed}");
            assert!(
                ms.to_f64() <= 4.0 * opt.to_f64() * (1.0 + 1e-12),
                "{name} broke factor 4 on seed {seed}: {ms} vs opt {opt}"
            );
        }
        // Annealing started from the better of the two only improves.
        let start = if wrap <= blpt { wrap_identical(&inst) } else { batch_lpt_identical(&inst) };
        let sa = anneal_uniform(&inst, &start, &AnnealConfig::default());
        let after = uniform_makespan(&inst, &sa.schedule).unwrap();
        assert!(after >= opt && after <= wrap.min(blpt));
    }
}

#[test]
fn unrelated_matrix_with_config_lp_floor() {
    // Every unrelated algorithm sits between the configuration-LP bound
    // and its own guarantee envelope.
    let inst = gen::class_uniform_ptimes(10, 3, 3, (1, 15), SetupWeight::Moderate, 31);
    let exact = exact_unrelated(&inst, 1 << 25);
    assert!(exact.complete);
    let opt = exact.makespan;
    let floor = config_lp_lower_bound(&inst, &ConfigLpLimits::default());
    assert!(floor <= opt);
    let rr = solve_unrelated_randomized(&inst, &RoundingConfig { c: 2.0, seed: 1 });
    let cupt = solve_class_uniform_ptimes(&inst);
    assert!(rr.makespan >= opt && cupt.makespan >= opt);
    assert!(cupt.makespan <= 3 * cupt.t_star);
    assert!(rr.t_star <= opt && cupt.t_star <= opt);
}

#[test]
fn ptas_inflation_ablation_tighter_is_not_worse() {
    use setup_scheduling::algos::ptas::decide_uniform_with_inflation;
    use setup_scheduling::core::dual::Decision;
    let inst = family(42, SetupWeight::Moderate);
    let lb = setup_scheduling::core::bounds::uniform_lower_bound(&inst);
    let t = lb.mul_int(2);
    let cfg = PtasConfig { q: 2, node_limit: 10_000_000 };
    let mut results = Vec::new();
    for e in [1u32, 3, 5] {
        if let Decision::Feasible(s) = decide_uniform_with_inflation(&inst, t, &cfg, e) {
            results.push((e, uniform_makespan(&inst, &s).unwrap()));
        }
    }
    // e = 5 must accept wherever e = 1 accepts (capacity only grows).
    assert!(
        results.iter().any(|&(e, _)| e == 5) || results.is_empty(),
        "full inflation rejected while a tighter level accepted"
    );
    // Where the tightest level succeeds, its schedule respects the smaller
    // capacity, so its makespan cannot exceed the loosest level's envelope.
    if results.len() >= 2 {
        let first = results.first().unwrap().1;
        let last = results.last().unwrap().1;
        assert!(first.to_f64() <= last.to_f64() * (1.5f64).powi(4) + 1e-9);
    }
}
