//! Integration tests for the hardness pipeline (Section 3.2): GF(2) gap
//! family → Theorem 3.5 reduction → scheduling instance, with the gap
//! shape asserted end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use setup_scheduling::prelude::*;
use setup_scheduling::setcover::{
    exact_cover, gf2_basis_cover, gf2_fractional_optimum, gf2_gap_instance, gf2_integral_optimum,
    greedy_cover, reduce, reduction_makespan_lower_bound, schedule_from_cover,
};

#[test]
fn gap_grows_with_k_end_to_end() {
    let mut last_gap = 0.0f64;
    for k in [2u32, 3, 4, 5] {
        let sc = gf2_gap_instance(k);
        let t = gf2_fractional_optimum(k).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(k as u64);
        let red = reduce(&sc, t, &mut rng);
        let lb = reduction_makespan_lower_bound(&red, gf2_integral_optimum(k));
        let frac = red.num_classes as f64 * gf2_fractional_optimum(k) / red.instance.m() as f64;
        let gap = lb as f64 / frac;
        assert!(gap >= last_gap - 0.35, "k={k}: gap {gap} fell well below previous {last_gap}");
        last_gap = gap;
    }
    // Across the sweep the gap must have grown substantially (Θ(log N)).
    assert!(last_gap >= 2.0, "final gap {last_gap} too small for k=5");
}

#[test]
fn yes_certificate_is_valid_and_respects_lower_bound() {
    for k in [3u32, 4] {
        let sc = gf2_gap_instance(k);
        let cover = gf2_basis_cover(k);
        let mut rng = StdRng::seed_from_u64(100 + k as u64);
        let red = reduce(&sc, 2, &mut rng);
        let sched = schedule_from_cover(&sc, &red, &cover);
        let ms = unrelated_makespan(&red.instance, &sched).expect("valid schedule");
        let lb = reduction_makespan_lower_bound(&red, gf2_integral_optimum(k));
        assert!(ms >= lb);
        // Concentration: the proof gives O((K/m)·|cover| + log m) whp; allow
        // a wide constant for these small m.
        let expect = red.num_classes as f64 * cover.len() as f64 / red.instance.m() as f64;
        let bound = 2.0 * expect + 2.0 * (red.instance.m() as f64).log2() + 2.0;
        assert!((ms as f64) <= bound, "k={k}: yes-schedule {ms} above concentration bound {bound}");
    }
}

#[test]
fn greedy_cover_is_logarithmically_close_on_gap_family() {
    for k in [2u32, 3, 4] {
        let sc = gf2_gap_instance(k);
        let g = greedy_cover(&sc).expect("coverable");
        let opt = gf2_integral_optimum(k);
        assert!(sc.is_cover(&g));
        // H_N bound, checked concretely.
        let hn: f64 = (1..=sc.n_elements()).map(|i| 1.0 / i as f64).sum();
        assert!(g.len() as f64 <= hn * opt as f64 + 1e-9);
    }
}

#[test]
fn exact_cover_certifies_the_family() {
    for k in [2u32, 3] {
        let sc = gf2_gap_instance(k);
        assert_eq!(exact_cover(&sc).expect("coverable").len(), k as usize);
    }
}

#[test]
fn reduced_instances_feed_the_unrelated_algorithms() {
    // The reduction output is a legal restricted-assignment instance; the
    // Theorem 3.3 pipeline runs on it unchanged.
    use setup_scheduling::algos::rounding::{solve_unrelated_randomized, RoundingConfig};
    let sc = gf2_gap_instance(3);
    let mut rng = StdRng::seed_from_u64(5);
    let red = reduce(&sc, 2, &mut rng);
    let res = solve_unrelated_randomized(&red.instance, &RoundingConfig { c: 2.0, seed: 1 });
    assert_eq!(unrelated_makespan(&red.instance, &res.schedule).unwrap(), res.makespan);
    // All sizes are 0 and setups 1, so the makespan counts setups: at least
    // the averaging bound must show up in any schedule we produce.
    let lb = reduction_makespan_lower_bound(&red, gf2_integral_optimum(3));
    assert!(res.makespan >= lb);
}
