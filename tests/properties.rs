//! Property-based tests on cross-crate invariants (proptest).

use proptest::collection::vec;
use proptest::prelude::*;
use setup_scheduling::algos::exact::exact_uniform;
use setup_scheduling::algos::list::greedy_uniform;
use setup_scheduling::algos::lpt::{lpt_with_setups, LPT_FACTOR};
use setup_scheduling::core::batch::{map_schedule_back, replace_small_jobs};
use setup_scheduling::core::bounds::{uniform_lower_bound, uniform_upper_bound};
use setup_scheduling::core::simplify::{galvez_round, simplify};
use setup_scheduling::prelude::*;

/// Strategy: a small but structurally varied uniform instance.
fn uniform_instance() -> impl Strategy<Value = UniformInstance> {
    (
        vec(1u64..=8, 1..=4),                // speeds
        vec(0u64..=30, 1..=4),               // setups (zero allowed)
        vec((0usize..4, 0u64..=40), 1..=12), // (class idx raw, size)
    )
        .prop_map(|(speeds, setups, raw_jobs)| {
            let k = setups.len();
            let jobs: Vec<Job> = raw_jobs.into_iter().map(|(c, p)| Job::new(c % k, p)).collect();
            UniformInstance::new(speeds, setups, jobs).expect("strategy builds valid instances")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lpt_schedule_is_valid_and_bounded(inst in uniform_instance()) {
        let sched = lpt_with_setups(&inst);
        let ms = uniform_makespan(&inst, &sched).expect("valid schedule");
        let lb = uniform_lower_bound(&inst);
        let ub = uniform_upper_bound(&inst);
        prop_assert!(ms >= lb);
        // Lemma 2.1 against the lower bound (a valid certification because
        // lb ≤ Opt).
        if !lb.is_zero() {
            prop_assert!(
                ms.to_f64() <= LPT_FACTOR * lb.to_f64() * (1.0 + 1e-12),
                "ratio {} exceeds Lemma 2.1", ms.to_f64() / lb.to_f64()
            );
        }
        // LPT never does worse than serializing everything on the fastest
        // machine… up to one placeholder rounding per class. Check the safe
        // direction only: ms is finite and ≥ lb, ub is ≥ lb.
        prop_assert!(ub >= lb);
    }

    #[test]
    fn bounds_sandwich_exact_optimum(inst in uniform_instance()) {
        prop_assume!(inst.n() <= 9); // keep B&B fast
        let exact = exact_uniform(&inst, 1 << 22);
        prop_assume!(exact.complete);
        let lb = uniform_lower_bound(&inst);
        let ub = uniform_upper_bound(&inst);
        prop_assert!(lb <= exact.makespan, "lb {lb} > opt {}", exact.makespan);
        prop_assert!(exact.makespan <= ub, "opt {} > ub {ub}", exact.makespan);
        // Greedy is an upper bound on the optimum.
        let grd = uniform_makespan(&inst, &greedy_uniform(&inst)).expect("valid");
        prop_assert!(exact.makespan <= grd);
    }

    #[test]
    fn placeholder_roundtrip_covers_all_jobs(inst in uniform_instance()) {
        let (t, map) = replace_small_jobs(&inst, |k| inst.setup(k), |k| inst.setup(k).max(1));
        // Round-trip any schedule of the transformed instance.
        let sched_t = Schedule::new((0..t.n()).map(|j| j % inst.m()).collect());
        let back = map_schedule_back(&map, &t, &sched_t, &inst);
        prop_assert_eq!(back.n(), inst.n());
        // Every job lands on a real machine and the schedule evaluates.
        let ms = uniform_makespan(&inst, &back);
        prop_assert!(ms.is_ok());
    }

    #[test]
    fn galvez_round_is_monotone_bounded_idempotent(t in 0u64..100_000, q in 1u32..4) {
        let q = 2u64.pow(q); // 2, 4, 8
        let r = galvez_round(t, q);
        prop_assert!(r >= t);
        prop_assert!(r as u128 * q as u128 <= t.max(1) as u128 * (q + 1) as u128);
        prop_assert_eq!(galvez_round(r, q), r);
        if t > 0 {
            prop_assert!(galvez_round(t - 1, q) <= r);
        }
    }

    #[test]
    fn simplification_preserves_schedulability(inst in uniform_instance()) {
        prop_assume!(inst.n() >= 1);
        let lb = uniform_lower_bound(&inst);
        prop_assume!(!lb.is_zero());
        let t = lb.mul_int(3);
        let s = simplify(&inst, t, 2);
        // The simplified instance is well-formed and its sizes are scaled.
        prop_assert_eq!(s.scale, 4);
        prop_assert!(s.instance.m() >= 1);
        // Any schedule of the simplified instance lifts to a valid schedule
        // of the original.
        let trivial = Schedule::new(vec![0; s.instance.n()]);
        let lifted = s.lift_schedule(&trivial, &inst);
        prop_assert!(uniform_makespan(&inst, &lifted).is_ok());
    }

    #[test]
    fn schedule_evaluation_matches_manual_account(inst in uniform_instance()) {
        // Independent re-computation of the load definition of Section 1.1.
        let sched = Schedule::new((0..inst.n()).map(|j| j % inst.m()).collect());
        let loads = uniform_loads(&inst, &sched).expect("valid");
        for i in 0..inst.m() {
            let mut work = 0u64;
            let mut classes: Vec<usize> = Vec::new();
            for j in 0..inst.n() {
                if j % inst.m() == i {
                    work += inst.job(j).size;
                    if !classes.contains(&inst.job(j).class) {
                        classes.push(inst.job(j).class);
                    }
                }
            }
            let setups: u64 = classes.iter().map(|&k| inst.setup(k)).sum();
            prop_assert_eq!(loads[i], work + setups);
        }
    }
}
